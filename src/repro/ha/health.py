"""Replica health tracking: active probes, passive reports, ejection.

A replica is judged on two HTTP endpoints, mirroring the liveness /
readiness split: ``/v2/`` (the registry answers at all) and ``/healthz``
(it *wants* traffic — a draining or saturated server says no here first).
Evidence arrives two ways:

* **actively** — :meth:`HealthMonitor.probe_all` hits both endpoints with
  a short timeout (call it from a loop, a background thread via
  :meth:`start`, or deterministically from a test);
* **passively** — the frontend reports every forwarding success/failure,
  so a replica that drops connections gets ejected between probe ticks.

``eject_after`` consecutive failures mark a replica EJECTED; the frontend
stops routing to it. While ejected only *active probe* successes count
toward reinstatement (``reinstate_after`` in a row) — passive successes
can't happen since no traffic is routed, and a single lucky probe
shouldn't reinstate a flapping replica.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable

from repro.obs import MetricsRegistry

LIVE = "live"
EJECTED = "ejected"


@dataclass
class ReplicaHealth:
    """Evidence and verdict for one replica endpoint."""

    url: str
    state: str = LIVE
    consecutive_failures: int = 0
    consecutive_probe_successes: int = 0
    ejections: int = 0
    reinstatements: int = 0
    last_error: str = ""

    def to_dict(self) -> dict:
        return {
            "url": self.url,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "ejections": self.ejections,
            "reinstatements": self.reinstatements,
            "last_error": self.last_error,
        }


def http_probe(url: str, timeout_s: float) -> tuple[bool, str]:
    """One liveness+readiness check against a replica base URL.

    Healthy means ``/v2/`` answers 200 AND ``/healthz`` reports ready.
    Returns ``(ok, detail)``.
    """
    for path, what in (("/v2/", "liveness"), ("/healthz", "readiness")):
        try:
            with urllib.request.urlopen(url + path, timeout=timeout_s) as response:
                if response.status != 200:
                    return False, f"{what} returned {response.status}"
        except urllib.error.HTTPError as exc:
            return False, f"{what} returned {exc.code}"
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            return False, f"{what} unreachable: {exc}"
    return True, "ok"


class HealthMonitor:
    """Per-replica ejection and reinstatement over any probe function."""

    def __init__(
        self,
        endpoints: list[str],
        *,
        eject_after: int = 3,
        reinstate_after: int = 2,
        probe_timeout_s: float = 0.5,
        probe: Callable[[str, float], tuple[bool, str]] = http_probe,
        metrics: MetricsRegistry | None = None,
    ):
        if eject_after < 1:
            raise ValueError(f"eject_after must be >= 1, got {eject_after}")
        if reinstate_after < 1:
            raise ValueError(f"reinstate_after must be >= 1, got {reinstate_after}")
        self.eject_after = eject_after
        self.reinstate_after = reinstate_after
        self.probe_timeout_s = probe_timeout_s
        self._probe = probe
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._replicas: dict[str, ReplicaHealth] = {
            url: ReplicaHealth(url=url) for url in endpoints
        }
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    # -- verdicts ---------------------------------------------------------------

    def live(self) -> list[str]:
        """Replica URLs currently routable, in declaration order."""
        with self._lock:
            return [r.url for r in self._replicas.values() if r.state == LIVE]

    def all_endpoints(self) -> list[str]:
        with self._lock:
            return list(self._replicas)

    def health(self, url: str) -> ReplicaHealth:
        with self._lock:
            return self._replicas[url]

    def snapshot(self) -> list[dict]:
        with self._lock:
            return [r.to_dict() for r in self._replicas.values()]

    # -- membership --------------------------------------------------------------

    def track(self, url: str) -> None:
        """Start watching a replica that joined after construction."""
        with self._lock:
            if url not in self._replicas:
                self._replicas[url] = ReplicaHealth(url=url)

    def untrack(self, url: str) -> None:
        """Forget a replica that left the cluster."""
        with self._lock:
            self._replicas.pop(url, None)

    # -- evidence ---------------------------------------------------------------

    def _gauge(self, replica: ReplicaHealth) -> None:
        """Caller holds the lock."""
        self.metrics.gauge(
            "replica_live", "1 when routable, 0 when ejected", replica=replica.url
        ).set(1.0 if replica.state == LIVE else 0.0)

    def record_failure(self, url: str, detail: str = "") -> None:
        """Passive evidence from the data path (a forward failed)."""
        with self._lock:
            replica = self._replicas.get(url)
            if replica is None:
                return  # not tracked (e.g. routed to by name before join registered)
            replica.consecutive_failures += 1
            replica.consecutive_probe_successes = 0
            replica.last_error = detail
            if replica.state == LIVE and replica.consecutive_failures >= self.eject_after:
                replica.state = EJECTED
                replica.ejections += 1
                self.metrics.counter(
                    "replica_ejections_total", "replicas ejected", replica=url
                ).inc()
            self._gauge(replica)

    def record_success(self, url: str) -> None:
        """Passive evidence from the data path (a forward succeeded)."""
        with self._lock:
            replica = self._replicas.get(url)
            if replica is None:
                # a successful forward proves a real replica: adopt it
                replica = self._replicas[url] = ReplicaHealth(url=url)
            replica.consecutive_failures = 0
            if replica.state == LIVE:
                replica.last_error = ""
            self._gauge(replica)

    def _record_probe(self, url: str, ok: bool, detail: str) -> None:
        with self._lock:
            replica = self._replicas[url]
            if ok:
                replica.consecutive_failures = 0
                replica.consecutive_probe_successes += 1
                if (
                    replica.state == EJECTED
                    and replica.consecutive_probe_successes >= self.reinstate_after
                ):
                    replica.state = LIVE
                    replica.reinstatements += 1
                    replica.last_error = ""
                    self.metrics.counter(
                        "replica_reinstatements_total",
                        "ejected replicas brought back",
                        replica=url,
                    ).inc()
            else:
                replica.consecutive_probe_successes = 0
                replica.consecutive_failures += 1
                replica.last_error = detail
                if replica.state == LIVE and replica.consecutive_failures >= self.eject_after:
                    replica.state = EJECTED
                    replica.ejections += 1
                    self.metrics.counter(
                        "replica_ejections_total", "replicas ejected", replica=url
                    ).inc()
            self._gauge(replica)

    def probe_all(self) -> dict[str, bool]:
        """One active check of every replica; returns url -> healthy."""
        results: dict[str, bool] = {}
        for url in self.all_endpoints():
            ok, detail = self._probe(url, self.probe_timeout_s)
            self._record_probe(url, ok, detail)
            results[url] = ok
        return results

    def probe_until_live(self, url: str, *, attempts: int = 10) -> bool:
        """Actively probe one replica until it reinstates (or give up) —
        what an operator does right after restarting a replica."""
        for _ in range(attempts):
            ok, detail = self._probe(url, self.probe_timeout_s)
            self._record_probe(url, ok, detail)
            if self.health(url).state == LIVE:
                return True
            if not ok:
                return False
        return self.health(url).state == LIVE

    # -- background probing ------------------------------------------------------

    def start(self, interval_s: float = 0.25) -> "HealthMonitor":
        if self._thread is not None:
            raise RuntimeError("monitor already started")
        self._stop_event.clear()

        def loop() -> None:
            while not self._stop_event.wait(interval_s):
                self.probe_all()

        self._thread = threading.Thread(target=loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join()
            self._thread = None
