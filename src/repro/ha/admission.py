"""Server-side admission control: bounded concurrency, bounded queueing,
per-client rate limiting.

An unprotected ``ThreadingHTTPServer`` accepts every connection and spawns
a thread for it; under open-loop overload (arrivals > capacity) the
backlog — and every request's latency — grows without bound until the
process dies. The cure is the classic admission gate:

* at most ``max_concurrent`` requests execute at once;
* at most ``max_queue`` more may *wait*, and only up to
  ``queue_timeout_s`` (a request's queueing deadline) — everything else is
  shed immediately with 503 + ``Retry-After``, so accepted requests keep a
  bounded p99 and shed clients know when to come back;
* a per-client token bucket (keyed by client id) throttles any single
  client before it can starve the shared gate.

Everything takes an injectable clock/sleep so tests run in virtual time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.obs import MetricsRegistry

#: admission outcomes
ADMITTED = "admitted"
SHED_QUEUE_FULL = "queue_full"
SHED_TIMEOUT = "queue_timeout"
SHED_DRAINING = "draining"
SHED_RATE_LIMITED = "rate_limited"


@dataclass(frozen=True)
class AdmissionResult:
    """What the gate decided for one request."""

    outcome: str
    #: how long the request waited in the queue before the verdict
    waited_s: float = 0.0
    #: the Retry-After hint to send when shed (0 when admitted)
    retry_after_s: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.outcome == ADMITTED


class AdmissionGate:
    """A concurrency-limited gate with a bounded, deadline-bounded queue.

    ``try_acquire`` blocks up to ``queue_timeout_s`` for an execution slot
    and returns an :class:`AdmissionResult`; the caller must ``release()``
    after an admitted request finishes. The queue itself is bounded: a
    request arriving when ``max_queue`` others are already waiting is shed
    without waiting at all (better to say no fast than to say maybe
    slowly).
    """

    def __init__(
        self,
        *,
        max_concurrent: int = 32,
        max_queue: int = 64,
        queue_timeout_s: float = 0.5,
        retry_after_s: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ):
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if queue_timeout_s < 0 or retry_after_s < 0:
            raise ValueError("timeouts must be non-negative")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_s = retry_after_s
        self._clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self.shed: dict[str, int] = {}

    # -- introspection ---------------------------------------------------------

    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    @property
    def waiting(self) -> int:
        with self._cond:
            return self._waiting

    def stats(self) -> dict[str, int]:
        with self._cond:
            out = {"active": self._active, "waiting": self._waiting}
            out.update({f"shed_{k}": v for k, v in sorted(self.shed.items())})
            return out

    # -- the gate ---------------------------------------------------------------

    def _shed(self, reason: str) -> AdmissionResult:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        self.metrics.counter(
            "admission_shed_total", "requests shed by the gate", reason=reason
        ).inc()
        return AdmissionResult(outcome=reason, retry_after_s=self.retry_after_s)

    def try_acquire(self, *, timeout_s: float | None = None) -> AdmissionResult:
        """Wait (bounded) for an execution slot.

        *timeout_s* overrides the gate's queue timeout — a request carrying
        its own deadline passes the remaining budget here.
        """
        budget = self.queue_timeout_s if timeout_s is None else timeout_s
        start = self._clock()
        with self._cond:
            if self._active < self.max_concurrent:
                self._active += 1
                self._observe_depth()
                return AdmissionResult(outcome=ADMITTED)
            if self._waiting >= self.max_queue:
                return self._shed(SHED_QUEUE_FULL)
            self._waiting += 1
            self._observe_depth()
            try:
                while self._active >= self.max_concurrent:
                    remaining = budget - (self._clock() - start)
                    if remaining <= 0:
                        return self._shed(SHED_TIMEOUT)
                    self._cond.wait(remaining)
                self._active += 1
                return AdmissionResult(
                    outcome=ADMITTED, waited_s=self._clock() - start
                )
            finally:
                self._waiting -= 1
                self._observe_depth()

    def release(self) -> None:
        with self._cond:
            if self._active <= 0:
                raise RuntimeError("release() without a matching acquire")
            self._active -= 1
            self._cond.notify()
            self._observe_depth()

    def drain(self, *, timeout_s: float, sleep: Callable[[float], None] = time.sleep) -> bool:
        """Wait until no request is executing (for graceful shutdown).

        Returns True when fully drained, False when *timeout_s* elapsed
        with requests still in flight.
        """
        deadline = self._clock() + timeout_s
        while True:
            with self._cond:
                if self._active == 0:
                    return True
            if self._clock() >= deadline:
                return False
            sleep(0.005)

    def _observe_depth(self) -> None:
        """Caller holds the lock."""
        self.metrics.gauge("admission_active", "requests executing").set(self._active)
        self.metrics.gauge("admission_waiting", "requests queued").set(self._waiting)


class TokenBucketLimiter:
    """Per-client token buckets: ``rate_per_s`` sustained, ``burst`` peak.

    ``allow(client)`` spends one token from *client*'s bucket (created full
    on first sight) and reports whether the request may proceed; when
    denied, :meth:`retry_after` says how long until a token accrues —
    the honest ``Retry-After`` for a 429.
    """

    def __init__(
        self,
        *,
        rate_per_s: float = 50.0,
        burst: int = 20,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        max_clients: int = 10_000,
    ):
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        #: client id -> (tokens, last refill time)
        self._buckets: dict[str, tuple[float, float]] = {}
        self.denied = 0

    def _refill(self, client: str, now: float) -> float:
        tokens, last = self._buckets.get(client, (float(self.burst), now))
        tokens = min(float(self.burst), tokens + (now - last) * self.rate_per_s)
        return tokens

    def allow(self, client: str) -> bool:
        now = self._clock()
        with self._lock:
            if client not in self._buckets and len(self._buckets) >= self.max_clients:
                # cap the table; forget the stalest bucket (full ones first
                # would be ideal, but oldest-refilled is close and O(n) only
                # at the cap)
                stalest = min(self._buckets, key=lambda c: self._buckets[c][1])
                del self._buckets[stalest]
            tokens = self._refill(client, now)
            if tokens >= 1.0:
                self._buckets[client] = (tokens - 1.0, now)
                return True
            self._buckets[client] = (tokens, now)
            self.denied += 1
        self.metrics.counter(
            "ratelimit_denied_total", "requests denied by the per-client limiter"
        ).inc()
        return False

    def retry_after(self, client: str) -> float:
        """Seconds until *client* accrues one token (0 when it has one)."""
        now = self._clock()
        with self._lock:
            tokens = self._refill(client, now)
        if tokens >= 1.0:
            return 0.0
        return (1.0 - tokens) / self.rate_per_s


@dataclass
class ServerLimits:
    """Everything :class:`~repro.registry.http.RegistryHTTPServer` needs to
    protect itself; bundle so callers configure one object.

    ``None`` members disable that protection. ``request_deadline_s`` bounds
    a request's total queueing budget (the gate wait never exceeds the
    remaining deadline); ``max_body_bytes`` caps upload bodies (413 past
    it); ``upload_ttl_s`` expires abandoned upload sessions.
    """

    gate: AdmissionGate | None = None
    limiter: TokenBucketLimiter | None = None
    request_deadline_s: float | None = None
    max_body_bytes: int = 64 * 1024 * 1024
    upload_ttl_s: float = 300.0
    drain_timeout_s: float = 5.0

    @classmethod
    def default(cls, **overrides) -> "ServerLimits":
        """A sane protective default: gate + limiter with test-fast knobs."""
        fields = {
            "gate": AdmissionGate(),
            "limiter": TokenBucketLimiter(),
        }
        fields.update(overrides)
        return cls(**fields)
