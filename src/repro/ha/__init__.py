"""repro.ha — server-side robustness: replicated serving with failover,
overload protection, and self-healing storage.

The paper's dataset exists only because Docker Hub kept answering 355k
pulls through overload and partial failure. This package gives the
reproduction's registry the same serving-side resilience:

* :mod:`repro.ha.admission` — concurrency-limited admission gate with a
  bounded queue, per-client token-bucket rate limiting, and load-shedding
  accounting (wired into :class:`~repro.registry.http.RegistryHTTPServer`);
* :mod:`repro.ha.health` — active liveness/readiness probing with
  per-replica ejection and reinstatement;
* :mod:`repro.ha.replica` — :class:`RegistryReplicaSet`: N registries over
  independent blob stores with write fan-out and anti-entropy sync;
* :mod:`repro.ha.frontend` — :class:`FailoverFrontend`: an HTTP load
  balancer doing health-checked routing, retry-on-next-replica for
  idempotent reads, and at-the-edge digest verification so a rotting
  replica can never serve corrupt bytes;
* :mod:`repro.ha.scrub` — :class:`BlobScrubber`: at-rest digest
  re-verification with quarantine and peer repair;
* :mod:`repro.ha.ring` — :class:`HashRing` and the bounded k-owner
  placement: seeded consistent hashing over the digest space, so N
  replicas hold ~N/k replicas' worth of *unique* bytes instead of 1x;
* :mod:`repro.ha.sharded` — :class:`ShardedReplicaSet`: quorum writes
  with hinted handoff, shard-aware anti-entropy, and live join/leave
  rebalancing that moves only the blobs whose owner set changed;
* :mod:`repro.ha.cluster` — the end-to-end harness behind
  ``repro cluster``: replicated serving under loadgen traffic with
  replica kills and at-rest corruption, checked against invariants;
* :mod:`repro.ha.shardcluster` — the same discipline for the sharded
  cluster (``repro cluster --sharded``), adding availability-under-
  partial-ownership and placement-matches-ring invariants;
* :mod:`repro.ha.churn` — the ``repro churn`` harness: seeded temporal
  churn over the cluster with journaled crash-resumable garbage
  collection, checked against the no-resurrection / no-live-deletion /
  byte-identical-resume invariants.
"""

from repro.ha.admission import (
    AdmissionGate,
    AdmissionResult,
    ServerLimits,
    TokenBucketLimiter,
)
from repro.ha.churn import ChurnReport, ReplicaSetWriter, VirtualClock, run_churn
from repro.ha.cluster import ClusterReport, run_cluster, run_overload
from repro.ha.frontend import FailoverFrontend
from repro.ha.health import EJECTED, LIVE, HealthMonitor, ReplicaHealth
from repro.ha.replica import RegistryReplicaSet, Replica
from repro.ha.ring import (
    HashRing,
    PlacementDiff,
    compute_placement,
    placement_diff,
)
from repro.ha.scrub import BlobScrubber, ScrubReport
from repro.ha.sharded import HandoffHint, RebalanceReport, ShardedReplicaSet
from repro.ha.shardcluster import ShardedClusterReport, run_sharded_cluster

__all__ = [
    "AdmissionGate",
    "AdmissionResult",
    "ServerLimits",
    "TokenBucketLimiter",
    "HealthMonitor",
    "ReplicaHealth",
    "LIVE",
    "EJECTED",
    "RegistryReplicaSet",
    "Replica",
    "FailoverFrontend",
    "BlobScrubber",
    "ScrubReport",
    "ChurnReport",
    "ClusterReport",
    "ReplicaSetWriter",
    "VirtualClock",
    "HashRing",
    "PlacementDiff",
    "compute_placement",
    "placement_diff",
    "HandoffHint",
    "RebalanceReport",
    "ShardedReplicaSet",
    "ShardedClusterReport",
    "run_churn",
    "run_cluster",
    "run_overload",
    "run_sharded_cluster",
]
