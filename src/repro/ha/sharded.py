"""Sharded registry serving: each blob lives on its k ring owners only.

:class:`~repro.ha.replica.RegistryReplicaSet` fans every write to every
replica — N full copies, so aggregate capacity never grows with N and a
partial failure degrades the whole keyspace uniformly. This module turns
the same replicas into a *sharded* cluster:

* **placement** — a :class:`~repro.ha.ring.HashRing` plus
  :func:`~repro.ha.ring.compute_placement` assign every blob digest to
  exactly k of the N replicas (k < N), so aggregate unique capacity is
  ~N/k of one replica's disk instead of 1×. Registry *metadata*
  (repositories, tags, manifests) still replicates everywhere — it is
  tiny, and any replica must be able to answer a manifest request;
* **quorum writes with hinted handoff** — :meth:`ShardedReplicaSet.put_blob`
  writes to the blob's live owners; when an owner is down the bytes park
  on the next ring successor with a hint (Dynamo-style sloppy quorum),
  and the write succeeds only when a majority of k copies are durable
  somewhere. :meth:`deliver_hints` repatriates parked copies when the
  owner returns;
* **shard-aware anti-entropy** — :meth:`sync` repairs each blob across its
  *owner set* (digest-verified donors, like the replicated set) and
  garbage-collects stray copies that survived handoff or rebalancing;
* **live rebalancing** — :meth:`join` and :meth:`leave` recompute the
  placement for the new membership and move *only* the blobs whose owner
  set changed (every arrival re-verified by digest), returning a
  :class:`RebalanceReport` whose ``touched`` set the cluster exercise
  asserts against the placement diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ha.replica import Replica, RegistryReplicaSet
from repro.ha.ring import (
    DEFAULT_HEAVY_SHARE,
    DEFAULT_VNODES,
    HashRing,
    compute_placement,
    place_one,
    placement_diff,
)
from repro.obs import MetricsRegistry
from repro.registry.blobstore import BlobStore, MemoryBlobStore
from repro.registry.registry import Registry
from repro.util.digest import sha256_bytes


@dataclass(frozen=True)
class HandoffHint:
    """A write parked on *holder* until *owed* (a down owner) returns."""

    owed: str
    holder: str
    digest: str

    def to_dict(self) -> dict:
        return {"owed": self.owed, "holder": self.holder, "digest": self.digest}


@dataclass
class RebalanceReport:
    """What one membership change actually moved."""

    kind: str  # "join" | "leave"
    node: str
    #: digests whose owner set changed between the old and new placement
    moved: tuple[str, ...] = ()
    #: digests physically touched (copied to a new owner / removed from an
    #: old one) — rebalancing is minimal iff touched ⊆ moved
    touched: tuple[str, ...] = ()
    unchanged: int = 0
    copies_written: int = 0
    bytes_moved: int = 0
    copies_removed: int = 0

    @property
    def minimal(self) -> bool:
        """True when only owner-set-changed blobs were touched."""
        return set(self.touched) <= set(self.moved)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "node": self.node,
            "moved": len(self.moved),
            "touched": len(self.touched),
            "unchanged": self.unchanged,
            "copies_written": self.copies_written,
            "bytes_moved": self.bytes_moved,
            "copies_removed": self.copies_removed,
            "minimal": self.minimal,
        }


class ShardedReplicaSet(RegistryReplicaSet):
    """N replicas, each holding only the shards the ring assigns it.

    Lifecycle (start/stop/kill/restart) and metadata fan-out come from
    :class:`RegistryReplicaSet`; blob placement, quorum writes, hinted
    handoff, shard-aware sync, and rebalancing live here.
    """

    def __init__(
        self,
        replicas: list[Replica],
        *,
        k: int = 2,
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
        heavy_share: float = DEFAULT_HEAVY_SHARE,
        store_factory: Callable[[int], BlobStore] | None = None,
        server_factory=None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
    ):
        super().__init__(replicas, metrics=metrics)
        names = [replica.name for replica in replicas]
        self.ring = HashRing(names, k=k, vnodes=vnodes, seed=seed)
        self.heavy_share = heavy_share
        self._store_factory = store_factory or (lambda i: MemoryBlobStore())
        self._server_factory = server_factory
        self._clock = clock
        #: digest -> byte size, for every blob the cluster has ever accepted
        self._sizes: dict[str, int] = {}
        #: the placement authority: digest -> owner names
        self._placement: dict[str, tuple[str, ...]] = {}
        self._hints: list[HandoffHint] = []
        self._next_index = len(replicas)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        source: Registry,
        n: int,
        *,
        k: int = 2,
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
        heavy_share: float = DEFAULT_HEAVY_SHARE,
        store_factory: Callable[[int], BlobStore] | None = None,
        server_factory=None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
    ) -> "ShardedReplicaSet":
        """Shard *source* over *n* replicas with replication factor *k*.

        Metadata is cloned everywhere; each blob lands on its k owners
        only. Requires k <= n (the HashRing enforces it).
        """
        if n < 1:
            raise ValueError(f"need >= 1 replica, got {n}")
        factory = store_factory or (lambda i: MemoryBlobStore())
        replicas = []
        for i in range(n):
            registry = Registry(blobstore=factory(i), clock=clock)
            source.copy_into(registry, blobs=False)
            replicas.append(
                Replica(f"replica-{i}", registry, server_factory=server_factory)
            )
        sharded = cls(
            replicas,
            k=k,
            vnodes=vnodes,
            seed=seed,
            heavy_share=heavy_share,
            store_factory=store_factory,
            server_factory=server_factory,
            metrics=metrics,
            clock=clock,
        )
        sharded._sizes = {
            digest: source.blobs.size(digest) for digest in source.blobs.digests()
        }
        sharded._placement = compute_placement(
            sharded.ring, sharded._sizes, heavy_share=heavy_share
        )
        by_name = {replica.name: replica for replica in replicas}
        for digest, owners in sharded._placement.items():
            data = source.blobs.get(digest)
            for owner in owners:
                by_name[owner].registry.blobs.put_at(digest, data)
        return sharded

    # -- lookups -----------------------------------------------------------------

    def replica(self, name: str) -> Replica:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise KeyError(f"no replica named {name!r}")

    def placement(self) -> dict[str, tuple[str, ...]]:
        return dict(self._placement)

    def owner_names(self, digest: str) -> tuple[str, ...]:
        """The blob's owners per the placement map (ring walk for an
        unknown digest — what a read router should assume)."""
        owners = self._placement.get(digest)
        return owners if owners is not None else self.ring.owners(digest)

    def hints(self) -> list[HandoffHint]:
        return list(self._hints)

    def route(self, digest: str) -> tuple[list[str], list[str]]:
        """(owner URLs in ring order, spare URLs) for a blob read.

        Spares are the next ring successor plus any current hint holder —
        where the bytes can be while an owner is down. Replicas that were
        never started have no URL and are skipped.
        """
        owners = self.owner_names(digest)
        spare_names = list(self.ring.successors(digest, owners, limit=1))
        for hint in self._hints:
            if hint.digest == digest and hint.holder not in spare_names:
                spare_names.append(hint.holder)

        def urls(names) -> list[str]:
            out = []
            for name in names:
                try:
                    out.append(self.replica(name).base_url)
                except (KeyError, RuntimeError):
                    continue
            return out

        return urls(owners), urls(spare_names)

    # -- writes ------------------------------------------------------------------

    def put_blob(self, data: bytes, *, quorum: int | None = None) -> str:
        """Store a blob on its k owners; sloppy quorum with hinted handoff.

        Live owners take the write directly. For each dead owner the bytes
        park on the next live ring successor with a :class:`HandoffHint`.
        The write succeeds when at least *quorum* (default: majority of k)
        distinct replicas hold a durable copy; otherwise RuntimeError.
        """
        digest = sha256_bytes(data)
        owners = self._placement.get(digest)
        if owners is None:
            load = self._owned_bytes()
            owners = place_one(
                self.ring,
                digest,
                len(data),
                load=load,
                total_bytes=sum(self._sizes.values()),
                heavy_share=self.heavy_share,
            )
            self._placement[digest] = owners
        self._sizes[digest] = len(data)
        need = quorum if quorum is not None else self.ring.k // 2 + 1
        durable: list[str] = []
        down: list[str] = []
        for owner in owners:
            replica = self.replica(owner)
            if replica.alive:
                replica.registry.push_blob(data)
                durable.append(owner)
            else:
                down.append(owner)
        for owner in down:
            successor = self._live_successor(digest, exclude=owners + tuple(durable))
            if successor is None:
                continue
            successor_replica = self.replica(successor)
            successor_replica.registry.blobs.put_at(digest, data)
            self._hints.append(
                HandoffHint(owed=owner, holder=successor, digest=digest)
            )
            durable.append(successor)
            self.metrics.counter(
                "sharded_hinted_handoffs_total", "writes parked on a successor"
            ).inc()
        if len(durable) < need:
            raise RuntimeError(
                f"write quorum not met for {digest}: {len(durable)} durable "
                f"copies < {need} required"
            )
        self.metrics.counter(
            "sharded_blob_writes_total", "quorum blob writes accepted"
        ).inc()
        return digest

    def _live_successor(self, digest: str, *, exclude: tuple[str, ...]) -> str | None:
        for name in self.ring.walk(digest):
            if name in exclude:
                continue
            if self.replica(name).alive:
                return name
        return None

    # -- hinted handoff ----------------------------------------------------------

    def deliver_hints(self) -> dict[str, int]:
        """Repatriate parked writes to owners that came back.

        A delivered copy is re-verified against its digest before the
        owner accepts it; the parked copy is then dropped unless the
        holder happens to own the blob too. Corrupt parked copies are
        discarded (the co-owners are the durable source of truth)."""
        delivered = corrupt = pending = 0
        remaining: list[HandoffHint] = []
        for hint in self._hints:
            try:
                owed = self.replica(hint.owed)
                holder = self.replica(hint.holder)
            except KeyError:
                continue  # a party left the cluster; rebalancing re-placed it
            if not owed.alive or not holder.alive:
                pending += 1
                remaining.append(hint)
                continue
            data = holder.registry.blobs.get(hint.digest)
            if sha256_bytes(data) != hint.digest:
                corrupt += 1
            else:
                owed.registry.blobs.put_at(hint.digest, data)
                delivered += 1
            if hint.holder not in self.owner_names(hint.digest):
                if holder.registry.blobs.has(hint.digest):
                    holder.registry.blobs.delete(hint.digest)
        self._hints = remaining
        self.metrics.counter(
            "sharded_hints_delivered_total", "parked writes repatriated"
        ).inc(delivered)
        return {"delivered": delivered, "pending": pending, "corrupt_dropped": corrupt}

    # -- shard-aware anti-entropy ------------------------------------------------

    def sync(self) -> dict[str, int]:
        """Reconcile metadata everywhere and every blob onto its owner set.

        Hints are delivered first; then each digest is repaired across its
        owners from a digest-verified donor (a rotted copy is never a
        donor), and stray copies on non-owners — leftovers of handoff or
        rebalancing — are garbage-collected.
        """
        with self._lock:
            registries = [replica.registry for replica in self.replicas]
            hints = self.deliver_hints()
            meta = self._sync_metadata(registries)
            meta.update(self._enforce_tombstones(registries))
            # swept digests leave the placement map *before* shard repair,
            # or the owner walk would adopt and re-place the dead digest
            if registries:
                reference = registries[0]
                for digest in list(self._placement):
                    if reference.blob_deleted(digest):
                        self.forget_blob(digest)
            placed, strays, bad_donors = self._sync_shards()
        self.metrics.counter(
            "replicaset_sync_blob_copies_total", "blobs moved by anti-entropy"
        ).inc(placed)
        return {
            **meta,
            "blobs": placed,
            "strays_removed": strays,
            "corrupt_donors_skipped": bad_donors,
            "hints_delivered": hints["delivered"],
            "hints_pending": hints["pending"],
        }

    def forget_blob(self, digest: str) -> None:
        """Drop a swept digest from placement, size, and hint accounting.

        The owner-set-aware half of deletion: once the garbage collector
        sweeps a digest, the ring must stop claiming owners for it or
        anti-entropy would faithfully re-place the corpse."""
        self._placement.pop(digest, None)
        self._sizes.pop(digest, None)
        self._hints = [hint for hint in self._hints if hint.digest != digest]

    def _union_digests(self) -> set[str]:
        union: set[str] = set(self._placement)
        for replica in self.replicas:
            union.update(replica.registry.blobs.digests())
        return union

    def _sync_shards(self) -> tuple[int, int, int]:
        placed = strays = bad_donors = 0
        hint_holds = {(hint.digest, hint.holder) for hint in self._hints}
        for digest in sorted(self._union_digests()):
            owners = self._placement.get(digest)
            if owners is None:
                # a blob that appeared outside put_blob (direct store write):
                # adopt it at its observed size
                holder = next(
                    (r for r in self.replicas if r.registry.blobs.has(digest)), None
                )
                if holder is None:
                    continue
                self._sizes[digest] = holder.registry.blobs.size(digest)
                owners = place_one(
                    self.ring,
                    digest,
                    self._sizes[digest],
                    load=self._owned_bytes(),
                    total_bytes=sum(self._sizes.values()),
                    heavy_share=self.heavy_share,
                )
                self._placement[digest] = owners
            donor: bytes | None = None
            holders: list[Replica] = []
            # owners first: repair should come from inside the shard
            ordered = [self.replica(name) for name in owners] + [
                replica for replica in self.replicas if replica.name not in owners
            ]
            for replica in ordered:
                if not replica.registry.blobs.has(digest):
                    continue
                holders.append(replica)
                if donor is None:
                    data = replica.registry.blobs.get(digest)
                    if sha256_bytes(data) == digest:
                        donor = data
                    else:
                        bad_donors += 1
            holder_names = {replica.name for replica in holders}
            if donor is not None:
                for name in owners:
                    if name not in holder_names:
                        self.replica(name).registry.blobs.put_at(digest, donor)
                        placed += 1
            for replica in holders:
                if replica.name in owners:
                    continue
                if (digest, replica.name) in hint_holds:
                    continue  # parked for a still-down owner; not a stray
                replica.registry.blobs.delete(digest)
                strays += 1
        return placed, strays, bad_donors

    # -- rebalancing -------------------------------------------------------------

    def join(
        self, name: str | None = None, *, replica: Replica | None = None
    ) -> tuple[Replica, RebalanceReport]:
        """Add a replica and move exactly the blobs whose owners changed.

        The joiner gets a metadata clone from a live replica, starts
        serving, enters the ring, and receives its shards (each arrival
        re-verified by digest). Existing replicas drop the copies the new
        placement takes away from them.
        """
        if replica is None:
            name = name or f"replica-{self._next_index}"
            registry = Registry(
                blobstore=self._store_factory(self._next_index), clock=self._clock
            )
            replica = Replica(name, registry, server_factory=self._server_factory)
        donors = self.live_replicas()
        if donors:
            donors[0].registry.copy_into(replica.registry, blobs=False)
        self._next_index += 1
        self.replicas.append(replica)
        if not replica.alive:
            replica.start()
        self.ring.add(replica.name)
        report = self._apply_placement(kind="join", node=replica.name)
        return replica, report

    def leave(self, name: str, *, graceful: bool = True) -> RebalanceReport:
        """Retire a replica, handing its shards to the new owners first.

        Graceful: the leaver keeps serving while it donates, then stops.
        Ungraceful (``graceful=False``, or the leaver is already dead):
        the surviving owners are the donors — exactly the k-1 redundancy
        sharding promises.
        """
        leaver = self.replica(name)  # raises KeyError on unknown names
        self.ring.remove(name)
        # hints held by the leaver move with it: deliver or re-park
        for hint in list(self._hints):
            if hint.holder != name:
                continue
            self._hints.remove(hint)
            if not (graceful and leaver.alive):
                continue
            data = leaver.registry.blobs.get(hint.digest)
            if sha256_bytes(data) != hint.digest:
                continue
            owed = self.replica(hint.owed)
            if owed.alive:
                owed.registry.blobs.put_at(hint.digest, data)
            else:
                successor = self._live_successor(
                    hint.digest, exclude=(name, hint.owed)
                )
                if successor is not None:
                    self.replica(successor).registry.blobs.put_at(hint.digest, data)
                    self._hints.append(
                        HandoffHint(
                            owed=hint.owed, holder=successor, digest=hint.digest
                        )
                    )
        report = self._apply_placement(
            kind="leave", node=name, exclude_donor=None if graceful else name
        )
        if leaver.alive:
            leaver.stop()
        self.replicas.remove(leaver)
        return report

    def _apply_placement(
        self, *, kind: str, node: str, exclude_donor: str | None = None
    ) -> RebalanceReport:
        """Recompute placement for current membership and migrate the diff."""
        new_placement = compute_placement(
            self.ring, self._sizes, heavy_share=self.heavy_share
        )
        diff = placement_diff(self._placement, new_placement)
        report = RebalanceReport(
            kind=kind, node=node, moved=diff.moved, unchanged=diff.unchanged
        )
        touched: set[str] = set()
        for digest in diff.moved:
            old_owners, new_owners = diff.changed[digest]
            donor: bytes | None = None
            # old owners donate first (a leaver still donates gracefully);
            # any other holder — a hint holder, say — is the fallback
            candidates = list(old_owners) + [
                replica.name
                for replica in self.replicas
                if replica.name not in old_owners
            ]
            for donor_name in candidates:
                if donor_name == exclude_donor:
                    continue
                try:
                    donor_replica = self.replica(donor_name)
                except KeyError:
                    continue
                # a dead node's disk is unreachable from the data path; a
                # later sync() repairs anything rebalancing couldn't reach
                if not donor_replica.alive:
                    continue
                if not donor_replica.registry.blobs.has(digest):
                    continue
                data = donor_replica.registry.blobs.get(digest)
                if sha256_bytes(data) == digest:  # verified before it travels
                    donor = data
                    break
            for name in new_owners:
                target = self.replica(name)
                if not target.alive:
                    continue
                if target.registry.blobs.has(digest) or donor is None:
                    continue
                target.registry.blobs.put_at(digest, donor)
                report.copies_written += 1
                report.bytes_moved += len(donor)
                touched.add(digest)
            for name in old_owners:
                if name in new_owners:
                    continue
                try:
                    old_replica = self.replica(name)
                except KeyError:
                    continue
                if not old_replica.alive:
                    continue
                if old_replica.registry.blobs.has(digest):
                    old_replica.registry.blobs.delete(digest)
                    report.copies_removed += 1
                    touched.add(digest)
        report.touched = tuple(sorted(touched))
        self._placement = new_placement
        self.metrics.counter(
            "sharded_rebalance_bytes_total", "bytes moved by rebalancing", kind=kind
        ).inc(report.bytes_moved)
        return report

    # -- introspection -----------------------------------------------------------

    def _owned_bytes(self) -> dict[str, int]:
        load = {name: 0 for name in self.ring.nodes}
        for digest, owners in self._placement.items():
            for name in owners:
                if name in load:
                    load[name] += self._sizes.get(digest, 0)
        return load

    def divergence(self) -> dict[str, int]:
        """Placement conformance (0/0 == converged): owner copies missing,
        and stray copies parked on non-owners (pending hints excluded)."""
        hint_holds = {(hint.digest, hint.holder) for hint in self._hints}
        missing = strays = 0
        union = self._union_digests()
        for digest in union:
            owners = set(self.owner_names(digest))
            for replica in self.replicas:
                holds = replica.registry.blobs.has(digest)
                if replica.name in owners:
                    missing += 0 if holds else 1
                elif holds and (digest, replica.name) not in hint_holds:
                    strays += 1
        return {
            "union_blobs": len(union),
            "owners_missing": missing,
            "strays": strays,
        }

    def audit_placement(self) -> dict:
        """Physical truth vs the ring: does every store hold exactly what
        a from-scratch placement computation says it should?"""
        expected = compute_placement(
            self.ring, self._sizes, heavy_share=self.heavy_share
        )
        hint_holds = {(hint.digest, hint.holder) for hint in self._hints}
        missing: list[str] = []
        strays: list[str] = []
        for digest in sorted(self._union_digests()):
            owners = set(expected.get(digest, ()))
            for replica in self.replicas:
                holds = replica.registry.blobs.has(digest)
                if replica.name in owners and not holds:
                    missing.append(f"{digest}@{replica.name}")
                elif (
                    replica.name not in owners
                    and holds
                    and (digest, replica.name) not in hint_holds
                ):
                    strays.append(f"{digest}@{replica.name}")
        return {
            "blobs": len(expected),
            "missing": missing,
            "strays": strays,
            "matches_ring": not missing and not strays,
        }

    def placement_report(self) -> dict:
        """Per-replica shard load and the capacity story sharding buys.

        ``capacity_ratio`` is unique bytes over the largest per-replica
        byte footprint: how many times more *distinct* data this cluster
        holds than full replication could at equal per-replica disk.
        """
        per_replica = {}
        for replica in sorted(self.replicas, key=lambda r: r.name):
            store = replica.registry.blobs
            per_replica[replica.name] = {
                "blobs": store.count(),
                "bytes": store.total_bytes(),
            }
        unique = sum(self._sizes.get(digest, 0) for digest in self._union_digests())
        loads = [entry["bytes"] for entry in per_replica.values()]
        max_bytes = max(loads) if loads else 0
        mean_bytes = sum(loads) / len(loads) if loads else 0
        return {
            "replicas": len(self.replicas),
            "k": self.ring.k,
            "vnodes": self.ring.vnodes,
            "per_replica": per_replica,
            "unique_bytes": unique,
            "max_replica_bytes": max_bytes,
            "imbalance": max_bytes / mean_bytes if mean_bytes else 0.0,
            "capacity_ratio": unique / max_bytes if max_bytes else 0.0,
        }
