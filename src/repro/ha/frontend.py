"""The failover frontend: one stable address over N flaky replicas.

A load-balancing HTTP proxy for the Docker Registry v2 API:

* **routing** — idempotent reads (GET/HEAD) spread over the replicas the
  :class:`~repro.ha.health.HealthMonitor` calls live, each request
  starting at a *seeded* offset (``derive_seed(seed, "read", n)``) so the
  load is uniform without any replica being a permanent first choice;
  writes pin to the first live replica (the v2 upload protocol is a
  stateful session in one server's memory — bouncing a PATCH to a
  different replica would orphan it), with anti-entropy propagating the
  result later;
* **shard awareness** — given a ``route`` callable (digest → owner URLs +
  spare URLs, from a :class:`~repro.ha.sharded.ShardedReplicaSet`), blob
  GETs go to the blob's owners in ring order, then to spares (the hinted-
  handoff successor). In that mode a 404 from one candidate is *not* the
  keyspace's answer — the next owner may hold the shard — so it fails
  over too, and only becomes the response when every candidate misses;
* **failover** — a connection error, timeout, or 5xx on a read moves to
  the next replica within the same client request, so a replica dying
  mid-run costs clients nothing; failures feed the monitor as passive
  health evidence;
* **edge integrity** — blob GET responses are re-hashed against the digest
  in the URL *before* a byte is forwarded; a mismatch (a rotted replica
  the scrubber has not reached yet) is treated exactly like a failed
  replica: blocked, counted, next candidate tried. Zero corrupt bytes are
  ever served through the frontend — the invariant ``repro cluster``
  asserts;
* **honest refusal** — when every candidate is down or shedding, clients
  get 503 + ``Retry-After`` (backpressure they can act on), not a hang.

Error responses that are *answers* (404, 401, 400…) forward as-is; only
infrastructure failures (connection refused, timeout, 5xx, 429) fail over.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.ha.health import HealthMonitor
from repro.obs import MetricsRegistry
from repro.util.digest import sha256_bytes
from repro.util.rng import derive_seed

_BLOB_PATH_RE = re.compile(r"^/v2/.+/blobs/(?P<digest>sha256:[0-9a-f]+)$")

#: request headers forwarded upstream
_FORWARD_REQUEST_HEADERS = ("Authorization", "Content-Type", "X-Client-Id")
#: response headers forwarded back to the client
_FORWARD_RESPONSE_HEADERS = (
    "Content-Type",
    "Docker-Content-Digest",
    "Location",
    "Range",
    "Retry-After",
)


class _UpstreamAnswer:
    """A response (success or authoritative error) from one replica."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: dict, body: bytes):
        self.status = status
        self.headers = headers
        self.body = body


class _FrontendHandler(BaseHTTPRequestHandler):
    server: ThreadingHTTPServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # -- plumbing ---------------------------------------------------------------

    @property
    def frontend(self) -> "FailoverFrontend":
        return self.server.frontend  # type: ignore[attr-defined]

    def _respond(self, answer: _UpstreamAnswer, *, head: bool = False) -> None:
        self.send_response(answer.status)
        self.send_header("Content-Length", str(len(answer.body)))
        for key, value in answer.headers.items():
            self.send_header(key, value)
        self.end_headers()
        if not head:
            self.wfile.write(answer.body)

    def _refuse(self, message: str, *, retry_after_s: float) -> None:
        body = json.dumps(
            {"errors": [{"code": "UNAVAILABLE", "message": message}]}
        ).encode()
        self._respond(
            _UpstreamAnswer(
                503,
                {
                    "Content-Type": "application/json",
                    "Retry-After": f"{retry_after_s:.3f}",
                },
                body,
            )
        )

    def _request_headers(self) -> dict[str, str]:
        out = {}
        for name in _FORWARD_REQUEST_HEADERS:
            value = self.headers.get(name)
            if value is not None:
                out[name] = value
        return out

    # -- verbs -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        self.frontend._handle_read(self, head=False)

    def do_HEAD(self) -> None:  # noqa: N802
        self.frontend._handle_read(self, head=True)

    def do_POST(self) -> None:  # noqa: N802
        self.frontend._handle_write(self, "POST")

    def do_PATCH(self) -> None:  # noqa: N802
        self.frontend._handle_write(self, "PATCH")

    def do_PUT(self) -> None:  # noqa: N802
        self.frontend._handle_write(self, "PUT")


class FailoverFrontend:
    """Health-checked, digest-verifying load balancer over registry replicas."""

    def __init__(
        self,
        endpoints: list[str],
        *,
        monitor: HealthMonitor | None = None,
        port: int = 0,
        timeout_s: float = 2.0,
        retry_after_s: float = 0.25,
        seed: int = 0,
        route: Callable[[str], tuple[list[str], list[str]]] | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if not endpoints:
            raise ValueError("frontend needs at least one replica endpoint")
        self.endpoints = list(endpoints)
        self.monitor = monitor if monitor is not None else HealthMonitor(endpoints)
        self.timeout_s = timeout_s
        self.retry_after_s = retry_after_s
        self.seed = seed
        #: optional shard router: digest -> (owner URLs in ring order, spares)
        self.route = route
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), _FrontendHandler)
        self._httpd.frontend = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._read_lock = threading.Lock()
        self._read_count = 0
        self.stats = {
            "reads": 0,
            "writes": 0,
            "failovers": 0,
            "corrupt_blocked": 0,
            "refused": 0,
        }
        self._stats_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> "FailoverFrontend":
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "FailoverFrontend":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- accounting --------------------------------------------------------------

    def _bump(self, key: str, n: int = 1) -> None:
        with self._stats_lock:
            self.stats[key] += n

    # -- candidate selection -----------------------------------------------------

    def _read_candidates(self) -> list[str]:
        """Live replicas rotated by a seeded per-request offset; all of
        them as a last gasp when the monitor has ejected everything (stale
        verdicts beat a guaranteed refusal).

        The offset is ``derive_seed(seed, "read", n)`` for the n-th read —
        uniform over the pool however its size shifts. A plain incrementing
        cursor is *not*: every ejection/reinstatement changes ``len(pool)``
        under the cursor, and the modulo can re-synchronize so one replica
        ends up permanently first in line (a hot spot that lasts until the
        next membership change)."""
        live = self.monitor.live()
        pool = live if live else list(self.endpoints)
        with self._read_lock:
            count = self._read_count
            self._read_count += 1
        start = derive_seed(self.seed, "read", count) % len(pool)
        return pool[start:] + pool[:start]

    def _blob_candidates(self, digest: str) -> list[str]:
        """Shard-routed candidates: owners in ring order, then spares.

        Monitor-ejected candidates sink to the back rather than drop out —
        for a sharded blob they are still the only places the bytes can
        be, so trying them last beats refusing outright."""
        owners, spares = self.route(digest)
        ordered = owners + [url for url in spares if url not in owners]
        if not ordered:
            return self._read_candidates()
        live = set(self.monitor.live())
        return [u for u in ordered if u in live] + [
            u for u in ordered if u not in live
        ]

    def _write_primary(self) -> str:
        live = self.monitor.live()
        return live[0] if live else self.endpoints[0]

    # -- the forwarding core -----------------------------------------------------

    def _attempt(
        self,
        base: str,
        path: str,
        *,
        method: str,
        headers: dict[str, str],
        body: bytes | None = None,
    ) -> _UpstreamAnswer:
        """One upstream try. Raises OSError-ish on infrastructure failure;
        returns an answer (which may be an authoritative error or a shed)."""
        request = urllib.request.Request(base + path, data=body, method=method)
        for key, value in headers.items():
            request.add_header(key, value)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return _UpstreamAnswer(
                    response.status,
                    self._pick_headers(response.headers),
                    response.read(),
                )
        except urllib.error.HTTPError as exc:
            return _UpstreamAnswer(
                exc.code, self._pick_headers(exc.headers), exc.read()
            )

    @staticmethod
    def _pick_headers(headers) -> dict[str, str]:
        out = {}
        for name in _FORWARD_RESPONSE_HEADERS:
            value = headers.get(name) if headers is not None else None
            if value is not None:
                out[name] = value
        return out

    @staticmethod
    def _failover_worthy(status: int) -> bool:
        """5xx and 429 mean *this replica* can't answer right now — another
        replica might. Everything else is the registry's actual answer."""
        return status >= 500 or status == 429

    def _handle_read(self, handler: _FrontendHandler, *, head: bool) -> None:
        self._bump("reads")
        path = handler.path
        headers = handler._request_headers()
        blob_match = _BLOB_PATH_RE.match(path.split("?")[0])
        routed = blob_match is not None and self.route is not None
        if routed:
            candidates = self._blob_candidates(blob_match["digest"])
        else:
            candidates = self._read_candidates()
        shed_answer: _UpstreamAnswer | None = None
        miss_answer: _UpstreamAnswer | None = None
        for i, base in enumerate(candidates):
            if i > 0:
                self._bump("failovers")
                self.metrics.counter(
                    "frontend_failovers_total", "reads retried on another replica"
                ).inc()
            try:
                answer = self._attempt(
                    base, path, method="HEAD" if head else "GET", headers=headers
                )
            except (urllib.error.URLError, TimeoutError, OSError) as exc:
                self.monitor.record_failure(base, f"forward failed: {exc}")
                continue
            if self._failover_worthy(answer.status):
                shed_answer = answer
                # shedding is not sickness: don't count it toward ejection,
                # but a hard 5xx without Retry-After is
                if answer.status >= 500 and "Retry-After" not in answer.headers:
                    self.monitor.record_failure(base, f"upstream {answer.status}")
                continue
            if routed and answer.status == 404:
                # under sharding, one candidate not holding the blob is
                # normal (it may have handed it off, or rebalancing is in
                # flight) — not replica sickness, and not the final answer
                # until every owner and spare has missed
                miss_answer = answer
                self.monitor.record_success(base)
                continue
            if (
                blob_match is not None
                and not head
                and answer.status == 200
                and sha256_bytes(answer.body) != blob_match["digest"]
            ):
                self._bump("corrupt_blocked")
                self.metrics.counter(
                    "frontend_corrupt_blocked_total",
                    "corrupt blob responses blocked at the edge",
                ).inc()
                self.monitor.record_failure(base, "served corrupt blob")
                continue
            self.monitor.record_success(base)
            self._count_outcome("forwarded")
            handler._respond(answer, head=head)
            return
        if shed_answer is not None:
            # every replica is shedding: relay the backpressure honestly
            # (preferred over a 404 fallback — a shedder might hold the blob)
            if "Retry-After" not in shed_answer.headers:
                shed_answer.headers["Retry-After"] = f"{self.retry_after_s:.3f}"
            self._bump("refused")
            self._count_outcome("all_shedding")
            handler._respond(shed_answer, head=head)
            return
        if miss_answer is not None:
            # every owner and spare answered 404: the keyspace's real answer
            self._count_outcome("forwarded")
            handler._respond(miss_answer, head=head)
            return
        self._bump("refused")
        self._count_outcome("no_replica")
        handler._refuse("no replica available", retry_after_s=self.retry_after_s)

    def _handle_write(self, handler: _FrontendHandler, method: str) -> None:
        self._bump("writes")
        length_header = handler.headers.get("Content-Length")
        if length_header is None:
            handler._respond(
                _UpstreamAnswer(
                    411,
                    {"Content-Type": "application/json"},
                    json.dumps(
                        {"errors": [{"code": "LENGTH_REQUIRED",
                                     "message": "Content-Length required"}]}
                    ).encode(),
                )
            )
            return
        body = handler.rfile.read(int(length_header))
        headers = handler._request_headers()
        base = self._write_primary()
        try:
            answer = self._attempt(
                base, handler.path, method=method, headers=headers, body=body
            )
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            self.monitor.record_failure(base, f"write forward failed: {exc}")
            self._bump("refused")
            self._count_outcome("write_failed")
            handler._refuse(
                "write primary unavailable", retry_after_s=self.retry_after_s
            )
            return
        self.monitor.record_success(base)
        self._count_outcome("forwarded")
        handler._respond(answer)

    def _count_outcome(self, outcome: str) -> None:
        self.metrics.counter(
            "frontend_requests_total", "requests by outcome", outcome=outcome
        ).inc()
