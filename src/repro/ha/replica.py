"""A set of registry replicas over independent blob stores.

Each :class:`Replica` is a full :class:`~repro.registry.Registry` (its own
repositories, manifests, and blob store) plus the
:class:`~repro.registry.http.RegistryHTTPServer` serving it. The set
provides the three things replication is for:

* **stamp-out** — :meth:`RegistryReplicaSet.from_source` clones one
  materialized registry N ways (independent stores, so one replica's disk
  rot cannot touch another's bytes);
* **write fan-out** — :meth:`put_blob` / :meth:`push_manifest` apply a
  write to every replica that is up, and remember what the down ones
  missed;
* **anti-entropy** — :meth:`sync` reconciles divergence after crashes and
  repairs: every repository, tag, manifest, and blob ends up everywhere,
  with blob content digest-verified before it is copied (a corrupt source
  copy must not propagate).

Replica processes are modeled as servers that can be *killed* (ungraceful,
connections die) and *restarted* on the same port with the same storage —
the in-memory upload sessions are lost, exactly like a real crash.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.obs import MetricsRegistry
from repro.registry.blobstore import BlobStore, MemoryBlobStore
from repro.registry.registry import Registry
from repro.util.digest import sha256_bytes


class Replica:
    """One registry replica and its (restartable) HTTP server."""

    def __init__(self, name: str, registry: Registry, *, server_factory=None):
        self.name = name
        self.registry = registry
        #: called as ``server_factory(registry, port)`` -> RegistryHTTPServer
        self._server_factory = server_factory or self._default_factory
        self.server = None
        self._port = 0  # pinned after the first start so restarts reuse it
        self.kills = 0

    @staticmethod
    def _default_factory(registry: Registry, port: int):
        from repro.registry.http import RegistryHTTPServer

        return RegistryHTTPServer(registry, port=port)

    @property
    def alive(self) -> bool:
        return self.server is not None

    @property
    def base_url(self) -> str:
        if self._port == 0:
            raise RuntimeError(f"replica {self.name} was never started")
        return f"http://127.0.0.1:{self._port}"

    def start(self):
        if self.server is not None:
            raise RuntimeError(f"replica {self.name} already running")
        self.server = self._server_factory(self.registry, self._port).start()
        self._port = self.server.port
        return self

    def stop(self) -> None:
        """Graceful: drain in-flight requests, then close."""
        if self.server is not None:
            self.server.stop()
            self.server = None

    def kill(self) -> None:
        """Crash: no drain, in-flight requests die, upload sessions vanish."""
        if self.server is not None:
            kill = getattr(self.server, "kill", None)
            (kill or self.server.stop)()
            self.server = None
            self.kills += 1

    def restart(self):
        """Bring a killed/stopped replica back on its original port."""
        return self.start()


class RegistryReplicaSet:
    """N replicas plus the write fan-out and anti-entropy between them."""

    def __init__(self, replicas: list[Replica], *, metrics: MetricsRegistry | None = None):
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self.replicas = list(replicas)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()

    @classmethod
    def from_source(
        cls,
        source: Registry,
        n: int,
        *,
        store_factory: Callable[[int], BlobStore] | None = None,
        server_factory=None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
    ) -> "RegistryReplicaSet":
        """Clone *source* into *n* replicas over independent blob stores.

        ``store_factory(i)`` supplies replica *i*'s store (default: a fresh
        :class:`MemoryBlobStore` each — fully independent failure domains).
        ``clock`` is shared by every replica registry — the churn exercise
        injects one virtual clock so write stamps and tombstones agree
        across the fleet.
        """
        if n < 1:
            raise ValueError(f"need >= 1 replica, got {n}")
        factory = store_factory or (lambda i: MemoryBlobStore())
        replicas = []
        for i in range(n):
            registry = Registry(blobstore=factory(i), clock=clock)
            source.copy_into(registry)
            replicas.append(
                Replica(f"replica-{i}", registry, server_factory=server_factory)
            )
        return cls(replicas, metrics=metrics)

    # -- lifecycle ---------------------------------------------------------------

    def start_all(self) -> "RegistryReplicaSet":
        for replica in self.replicas:
            if not replica.alive:
                replica.start()
        return self

    def stop_all(self) -> None:
        for replica in self.replicas:
            replica.stop()

    def kill(self, index: int) -> Replica:
        replica = self.replicas[index]
        replica.kill()
        return replica

    def restart(self, index: int) -> Replica:
        replica = self.replicas[index]
        if not replica.alive:
            replica.restart()
        return replica

    def endpoints(self) -> list[str]:
        """Base URLs of every replica (started at least once), in order."""
        return [replica.base_url for replica in self.replicas]

    def live_replicas(self) -> list[Replica]:
        return [replica for replica in self.replicas if replica.alive]

    # -- write fan-out -----------------------------------------------------------

    def put_blob(self, data: bytes) -> str:
        """Store a blob on every live replica; returns its digest.

        Down replicas miss the write — that is what :meth:`sync` repairs
        when they return.
        """
        digest = ""
        for replica in self.live_replicas():
            digest = replica.registry.push_blob(data)
        if not digest:
            raise RuntimeError("no live replica to accept the write")
        self.metrics.counter(
            "replicaset_blob_writes_total", "blob writes fanned out"
        ).inc()
        return digest

    def push_manifest(self, repo: str, tag: str, manifest) -> str:
        """Fan a manifest (and the repo, on first sight) to live replicas."""
        digest = ""
        for replica in self.live_replicas():
            registry = replica.registry
            if repo not in registry.catalog():
                registry.create_repository(repo)
            digest = registry.push_manifest(repo, tag, manifest)
        if not digest:
            raise RuntimeError("no live replica to accept the write")
        self.metrics.counter(
            "replicaset_manifest_writes_total", "manifest writes fanned out"
        ).inc()
        return digest

    # -- anti-entropy -------------------------------------------------------------

    def sync(self) -> dict[str, int]:
        """Reconcile every replica to the union of all replicas' contents.

        Registry metadata (repositories, tags, manifests) is merged via
        :meth:`Registry.copy_into` pairwise — last-writer-wins against the
        tombstones every deletion leaves, so a replica that slept through a
        `delete_tag` or a GC sweep converges to the deletion instead of
        resurrecting it; blobs are copied only after the source copy
        re-hashes to its digest, so a rotted replica can never infect a
        healthy one — its bad copy is simply not a donor, and (if some
        replica holds a good copy) gets overwritten.
        """
        with self._lock:
            registries = [replica.registry for replica in self.replicas]
            meta = self._sync_metadata(registries)
            meta.update(self._enforce_tombstones(registries))
            meta["blobs"] = 0
            blob_copies, bad_donors = self._sync_blobs(registries)
            meta["blobs"] = blob_copies
            meta["corrupt_donors_skipped"] = bad_donors
        self.metrics.counter(
            "replicaset_sync_blob_copies_total", "blobs moved by anti-entropy"
        ).inc(blob_copies)
        return meta

    def _enforce_tombstones(self, registries: list[Registry]) -> dict[str, int]:
        """Apply merged deletion markers on every replica; deletion wins.

        Returns removal accounting; ``resurrections_prevented`` counts the
        blob copies a union sync would have brought back from the dead.
        """
        removed = {
            "repositories_removed": 0,
            "tags_removed": 0,
            "manifests_removed": 0,
            "resurrections_prevented": 0,
        }
        for registry in registries:
            local = registry.apply_tombstones()
            removed["repositories_removed"] += local["repositories_removed"]
            removed["tags_removed"] += local["tags_removed"]
            removed["manifests_removed"] += local["manifests_removed"]
            removed["resurrections_prevented"] += local["blobs_removed"]
            registry.expire_tombstones()
        if removed["resurrections_prevented"]:
            self.metrics.counter(
                "gc_resurrections_prevented_total",
                "tombstoned blobs caught before anti-entropy copy-back",
            ).inc(removed["resurrections_prevented"])
        return removed

    @staticmethod
    def _sync_metadata(registries: list[Registry]) -> dict[str, int]:
        """Union repositories, tags, and manifests pairwise (no blobs)."""
        meta = {"repositories": 0, "manifests": 0}
        for src in registries:
            for dst in registries:
                if src is dst:
                    continue
                moved = src.copy_into(dst, blobs=False)
                for key in ("repositories", "manifests"):
                    meta[key] += moved[key]
        return meta

    def _sync_blobs(self, registries: list[Registry]) -> tuple[int, int]:
        """Copy verified blob content until every store holds the union."""
        union: set[str] = set()
        for registry in registries:
            union.update(registry.blobs.digests())
        copies = 0
        bad_donors = 0
        for digest in sorted(union):
            # deletion wins over copy-back: a digest whose tombstone
            # dominates its last push is not replicated, period. (Metadata
            # sync merged the markers onto every registry already.)
            if registries and registries[0].blob_deleted(digest):
                continue
            donor: bytes | None = None
            holders = []
            for registry in registries:
                if not registry.blobs.has(digest):
                    continue
                holders.append(registry)
                if donor is None:
                    data = registry.blobs.get(digest)
                    if sha256_bytes(data) == digest:
                        donor = data
                    else:
                        bad_donors += 1
            if donor is None:
                continue  # nobody holds a good copy; the scrubber's problem
            for registry in registries:
                if not registry.blobs.has(digest):
                    registry.blobs.put_at(digest, donor)
                    copies += 1
        return copies, bad_donors

    # -- introspection -----------------------------------------------------------

    def placement_report(self) -> dict:
        """Per-replica blob footprint. Full replication means k == N:
        every replica owns every blob, so ``capacity_ratio`` (unique bytes
        over the largest per-replica footprint) converges on 1.0 — the
        number sharding exists to beat."""
        per_replica = {}
        sizes: dict[str, int] = {}
        for replica in sorted(self.replicas, key=lambda r: r.name):
            store = replica.registry.blobs
            per_replica[replica.name] = {
                "blobs": store.count(),
                "bytes": store.total_bytes(),
            }
            for digest in store.digests():
                sizes.setdefault(digest, store.size(digest))
        unique = sum(sizes.values())
        loads = [entry["bytes"] for entry in per_replica.values()]
        max_bytes = max(loads) if loads else 0
        mean_bytes = sum(loads) / len(loads) if loads else 0
        return {
            "replicas": len(self.replicas),
            "k": len(self.replicas),
            "per_replica": per_replica,
            "unique_bytes": unique,
            "max_replica_bytes": max_bytes,
            "imbalance": max_bytes / mean_bytes if mean_bytes else 0.0,
            "capacity_ratio": unique / max_bytes if max_bytes else 0.0,
        }

    def divergence(self) -> dict[str, int]:
        """How far apart the replicas are (0 everywhere == converged)."""
        digest_sets = [set(r.registry.blobs.digests()) for r in self.replicas]
        union = set().union(*digest_sets)
        intersection = set.intersection(*digest_sets) if digest_sets else set()
        return {
            "union_blobs": len(union),
            "common_blobs": len(intersection),
            "missing_somewhere": len(union - intersection),
        }
