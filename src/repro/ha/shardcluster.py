"""The sharded cluster exercise: k-of-N placement under kills, rot,
flapping, and live membership churn.

:func:`run_sharded_cluster` is the engine behind ``repro cluster
--sharded``. Where :func:`~repro.ha.cluster.run_cluster` proves the HA
layer with *full copies everywhere*, this exercise proves the same
promises hold when every blob lives on only k of N replicas — the regime
the paper's ~47 TB dataset actually requires — plus the two promises
sharding adds. One seeded run drives a pull workload through four phases:

* **phase A (healthy)** — baseline traffic through the shard-routing
  frontend; every read must find the blob's owners;
* **phase B (degraded)** — one replica is killed and another's *owned
  shards* get deterministic at-rest rot (victims are drawn with
  :func:`~repro.faults.atrest.corrupt_shard_at_rest`, excluding blobs
  co-owned by the dead replica — rotting the last live copy would break
  availability by construction, not by bug). A write lands whose owner
  set includes the dead replica, so hinted handoff parks it on the ring
  successor. An availability sweep then reads *every placed blob* through
  the frontend: nothing may be unreadable while at least one owner lives;
* **phase C (flapping)** — after scrub + restart + shard-aware sync heal
  the cluster, a third replica flaps (down, traffic, back) and must be
  passively ejected then probe-reinstated;
* **phase D (resharded)** — a replica *joins* and another *leaves* while
  serving continues. Each rebalance must move exactly the blobs whose
  owner set changed (asserted against the placement diff), and the final
  placement audit must match a from-scratch ring computation.

Who gets killed/rotted/flapped/retired comes from a seeded
:func:`~repro.faults.events.plan_shard_events` draw with pairwise-distinct
targets, so every fault's blast radius is attributable and a rerun at the
same seed replays identical weather. The report's :meth:`seeded_core` is
byte-identical across serial reruns at the same seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.faults.atrest import corrupt_shard_at_rest
from repro.faults.chaos import Invariant
from repro.faults.events import plan_shard_events
from repro.ha.cluster import _pull_phase
from repro.ha.frontend import FailoverFrontend
from repro.ha.health import LIVE, HealthMonitor
from repro.ha.ring import DEFAULT_VNODES
from repro.ha.scrub import BlobScrubber
from repro.ha.sharded import ShardedReplicaSet
from repro.obs import MetricsRegistry
from repro.util.digest import sha256_bytes

#: a sharded cluster must realize at least this fraction of the ideal
#: N/k capacity amplification (size skew + k-owner pinning cost the rest)
CAPACITY_EFFICIENCY = 0.83


@dataclass
class ShardedClusterReport:
    """What one :func:`run_sharded_cluster` exercise measured and asserted."""

    seed: int
    replicas: int
    k: int
    vnodes: int
    requests: int
    #: phase name -> {attempted, succeeded, failed, corrupt, retries}
    phases: dict[str, dict[str, int]] = field(default_factory=dict)
    #: the seeded fault/membership schedule that ran
    events: list[dict] = field(default_factory=list)
    killed: str = ""
    corrupted: list[str] = field(default_factory=list)
    flapped: str = ""
    joined: str = ""
    left: str = ""
    degraded_write: str = ""
    hints_parked: int = 0
    #: frontend sweep over every placed digest while one owner was dead
    availability: dict = field(default_factory=dict)
    scrub: dict = field(default_factory=dict)
    sync: dict = field(default_factory=dict)
    rebalance: dict = field(default_factory=dict)
    divergence: dict = field(default_factory=dict)
    audit: dict = field(default_factory=dict)
    #: initial per-replica shard load + capacity ratio (the sharding win)
    placement: dict = field(default_factory=dict)
    frontend: dict = field(default_factory=dict)
    health: list[dict] = field(default_factory=list)
    invariants: list[Invariant] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def totals(self) -> dict[str, int]:
        out = {"attempted": 0, "succeeded": 0, "failed": 0, "corrupt": 0, "retries": 0}
        for counts in self.phases.values():
            for key in out:
                out[key] += counts[key]
        return out

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "replicas": self.replicas,
            "k": self.k,
            "vnodes": self.vnodes,
            "requests": self.requests,
            "phases": self.phases,
            "totals": self.totals(),
            "events": self.events,
            "killed": self.killed,
            "corrupted": self.corrupted,
            "flapped": self.flapped,
            "joined": self.joined,
            "left": self.left,
            "degraded_write": self.degraded_write,
            "hints_parked": self.hints_parked,
            "availability": self.availability,
            "scrub": self.scrub,
            "sync": self.sync,
            "rebalance": self.rebalance,
            "divergence": self.divergence,
            "audit": {
                "blobs": self.audit.get("blobs", 0),
                "missing": len(self.audit.get("missing", [])),
                "strays": len(self.audit.get("strays", [])),
                "matches_ring": self.audit.get("matches_ring", False),
            },
            "placement": self.placement,
            "frontend": self.frontend,
            "health": self.health,
            "invariants": [inv.to_dict() for inv in self.invariants],
            "duration_s": self.duration_s,
            "ok": self.ok,
        }

    def seeded_core(self) -> dict:
        """The deterministic subset: byte-identical for identical seeds.

        Wall-clock artifacts (duration) and port-bearing state (frontend
        stats, health snapshots keyed by URL) are excluded; everything
        here is a pure function of the seed and the run parameters.
        """
        doc = self.to_dict()
        for volatile in ("duration_s", "health", "frontend"):
            doc.pop(volatile)
        return doc

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        totals = self.totals()
        ideal = self.replicas / self.k if self.k else 0
        lines = [
            f"sharded cluster exercise: seed={self.seed}, {self.replicas} "
            f"replicas, k={self.k}, vnodes={self.vnodes}, "
            f"{self.requests} pulls",
            f"  events     killed {self.killed}; rotted "
            f"{len(self.corrupted)} shard blob(s) on its neighbor; "
            f"flapped {self.flapped}; joined {self.joined}; "
            f"retired {self.left}",
        ]
        for name, counts in self.phases.items():
            lines.append(
                f"  phase {name:<11} {counts['succeeded']:>5}/{counts['attempted']} ok, "
                f"{counts['retries']} retries, {counts['corrupt']} corrupt served"
            )
        lines.append(
            f"  placement  capacity x{self.placement.get('capacity_ratio', 0):.2f} "
            f"of one replica's disk (ideal x{ideal:.2f}), imbalance "
            f"{self.placement.get('imbalance', 0):.2f}"
        )
        lines.append(
            f"  sweep      {self.availability.get('checked', 0)} blobs read "
            f"with an owner down, {self.availability.get('unreadable', 0)} "
            f"unreadable"
        )
        join = self.rebalance.get("join", {})
        leave = self.rebalance.get("leave", {})
        lines.append(
            f"  rebalance  join moved {join.get('moved', 0)} "
            f"(touched {join.get('touched', 0)}), leave moved "
            f"{leave.get('moved', 0)} (touched {leave.get('touched', 0)})"
        )
        lines.append(
            f"  scrub      {self.scrub.get('scanned', 0)} scanned, "
            f"{self.scrub.get('corrupt', 0)} corrupt, "
            f"{self.scrub.get('repaired', 0)} repaired"
        )
        lines.append(
            f"  sync       {self.sync.get('blobs', 0)} owner copies repaired, "
            f"{self.sync.get('strays_removed', 0)} strays removed, "
            f"{self.sync.get('hints_delivered', 0)} hints delivered"
        )
        lines.append(
            f"  frontend   {self.frontend.get('failovers', 0)} failovers, "
            f"{self.frontend.get('corrupt_blocked', 0)} corrupt blocked, "
            f"{self.frontend.get('refused', 0)} refused"
        )
        success = totals["succeeded"] / totals["attempted"] if totals["attempted"] else 0
        lines.append(f"  GET success {success:8.2%} after retries")
        lines.append("invariants:")
        for inv in self.invariants:
            mark = "ok " if inv.ok else "FAIL"
            lines.append(f"  [{mark}] {inv.name}: {inv.detail}")
        lines.append(
            "verdict: " + ("all invariants hold" if self.ok else "INVARIANT VIOLATED")
        )
        return "\n".join(lines)


def _availability_sweep(session, cluster: ShardedReplicaSet) -> dict:
    """Read every placed blob through the frontend; count the unreadable.

    Run while one owner is dead: the k-1 surviving owners (or the hinted
    successor) must keep every single blob servable."""
    checked = unreadable = 0
    for digest in sorted(cluster.placement()):
        checked += 1
        try:
            data = session.get_blob(digest)
        except Exception:
            unreadable += 1
            continue
        if sha256_bytes(data) != digest:
            unreadable += 1
    return {"checked": checked, "unreadable": unreadable}


def run_sharded_cluster(
    *,
    seed: int = 7,
    replicas: int = 6,
    k: int = 2,
    vnodes: int = DEFAULT_VNODES,
    scale: str = "tiny",
    requests: int = 120,
    corrupt_count: int = 2,
) -> ShardedClusterReport:
    """The full sharded kill/rot/flap/join/leave exercise; see the module
    docstring for the phase script."""
    from repro.cache import generate_trace
    from repro.loadgen import requests_from_trace
    from repro.registry.http import HTTPSession
    from repro.synth import SyntheticHubConfig, generate_dataset, materialize_registry

    if replicas < 4:
        raise ValueError(
            f"the sharded exercise needs >= 4 replicas for distinct fault "
            f"targets, got {replicas}"
        )
    if not 1 <= k < replicas:
        raise ValueError(f"need 1 <= k < replicas, got k={k}, replicas={replicas}")

    t0 = time.perf_counter()
    config = getattr(SyntheticHubConfig, scale)(seed=seed)
    dataset = generate_dataset(config)
    source, truth = materialize_registry(dataset, fail_share=0.0, seed=seed)
    trace = generate_trace(
        dataset, requests, granularity="image", locality=0.2, seed=seed
    )
    ops = requests_from_trace(trace, dataset, truth)
    quarter = len(ops) // 4
    phase_ops = {
        "A:healthy": ops[:quarter],
        "B:degraded": ops[quarter : 2 * quarter],
        "C:flapping": ops[2 * quarter : 3 * quarter],
        "D:resharded": ops[3 * quarter :],
    }

    metrics = MetricsRegistry()
    cluster = ShardedReplicaSet.from_source(
        source, replicas, k=k, vnodes=vnodes, seed=seed, metrics=metrics
    ).start_all()
    monitor = HealthMonitor(
        cluster.endpoints(), eject_after=2, reinstate_after=2, metrics=metrics
    )
    events = plan_shard_events([r.name for r in cluster.replicas], seed=seed)
    by_kind = {event.kind: event for event in events}
    kill_name = by_kind["kill"].target
    corrupt_name = by_kind["corrupt"].target
    flap_name = by_kind["flap"].target
    leave_name = by_kind["leave"].target

    report = ShardedClusterReport(
        seed=seed, replicas=replicas, k=k, vnodes=vnodes, requests=len(ops)
    )
    report.events = [event.to_dict() for event in events]
    report.placement = cluster.placement_report()

    with FailoverFrontend(
        cluster.endpoints(),
        monitor=monitor,
        seed=seed,
        route=cluster.route,
        metrics=metrics,
    ) as frontend:
        session = HTTPSession(frontend.base_url, timeout=5.0)

        report.phases["A:healthy"] = _pull_phase(session, phase_ops["A:healthy"])

        # -- phase B: kill one replica, rot another's shards -------------------
        killed = cluster.replica(kill_name)
        killed.kill()
        report.killed = kill_name
        placement = cluster.placement()
        corrupt_store = cluster.replica(corrupt_name).registry.blobs
        owned = [d for d, owners in placement.items() if corrupt_name in owners]
        # never rot a blob the dead replica co-owns: its only other copy
        # would be the one we just broke, making "readable while an owner
        # lives" false by construction instead of testing repair
        shielded = [d for d in owned if kill_name in placement[d]]
        report.corrupted = corrupt_shard_at_rest(
            corrupt_store, owned, count=corrupt_count, seed=seed, exclude=shielded
        )
        # one active sweep records a first strike against the dead replica
        # (eject_after=2); the second comes passively from a failed read
        monitor.probe_all()

        report.phases["B:degraded"] = _pull_phase(session, phase_ops["B:degraded"])

        # every placed blob must still be servable with an owner down
        report.availability = _availability_sweep(session, cluster)

        # a write whose owner set includes the dead replica: the bytes
        # must park on the ring successor under a hint (sloppy quorum)
        payload = b""
        for i in range(1000):
            candidate = f"degraded-write seed={seed} v{i}".encode()
            if kill_name in cluster.owner_names(sha256_bytes(candidate)):
                payload = candidate
                break
        report.degraded_write = cluster.put_blob(payload)
        report.hints_parked = len(cluster.hints())

        # -- heal: scrub the rot, restart, shard-aware sync --------------------
        scrubber = BlobScrubber(metrics=metrics)
        report.scrub = scrubber.scrub_sharded_set(cluster).to_dict()
        killed.restart()
        report.sync = cluster.sync()
        monitor.probe_until_live(killed.base_url)
        # the rotted replica may have been passively ejected for serving
        # corrupt bytes; reinstatement is probe-only, so probe it back
        for _ in range(monitor.reinstate_after):
            monitor.probe_all()

        # -- phase C: a third replica flaps ------------------------------------
        flapper = cluster.replica(flap_name)
        flapper.kill()
        report.flapped = flap_name
        report.phases["C:flapping"] = _pull_phase(session, phase_ops["C:flapping"])
        flapper.restart()
        monitor.probe_until_live(flapper.base_url)

        # -- phase D: membership churn under traffic ---------------------------
        joiner, join_report = cluster.join()
        report.joined = joiner.name
        monitor.track(joiner.base_url)
        leaver_url = cluster.replica(leave_name).base_url
        leave_report = cluster.leave(leave_name)
        report.left = leave_name
        monitor.untrack(leaver_url)
        report.rebalance = {
            "join": join_report.to_dict(),
            "leave": leave_report.to_dict(),
        }

        report.phases["D:resharded"] = _pull_phase(session, phase_ops["D:resharded"])
        # the degraded-era write must survive heal AND both rebalances
        healed_blob = session.get_blob(report.degraded_write)

        final_sync = cluster.sync()
        report.sync = {
            key: report.sync.get(key, 0) + final_sync.get(key, 0)
            for key in set(report.sync) | set(final_sync)
        }
        report.divergence = cluster.divergence()
        report.audit = cluster.audit_placement()
        report.frontend = dict(frontend.stats)
        report.health = monitor.snapshot()
        states = {
            name: monitor.health(cluster.replica(name).base_url).state
            for name in (kill_name, corrupt_name, flap_name)
        }

    cluster.stop_all()
    report.duration_s = time.perf_counter() - t0
    report.invariants = _sharded_invariants(
        report, states, healed_blob, join_report, leave_report
    )
    return report


def _sharded_invariants(
    report: ShardedClusterReport,
    states: dict[str, str],
    healed_blob: bytes,
    join_report,
    leave_report,
) -> list[Invariant]:
    out: list[Invariant] = []
    totals = report.totals()

    out.append(
        Invariant(
            name="zero_corrupt_served",
            ok=totals["corrupt"] == 0,
            detail=f"{totals['corrupt']} corrupt blobs reached a client "
            f"({report.frontend.get('corrupt_blocked', 0)} blocked at the edge)",
        )
    )
    success = totals["succeeded"] / totals["attempted"] if totals["attempted"] else 0.0
    out.append(
        Invariant(
            name="get_success_after_retries",
            ok=success >= 0.99,
            detail=f"{totals['succeeded']}/{totals['attempted']} = {success:.2%} "
            f"(needs >= 99%) with {totals['retries']} retries",
        )
    )
    out.append(
        Invariant(
            name="rot_detected_and_repaired",
            ok=(
                report.scrub.get("corrupt", 0) == len(report.corrupted)
                and report.scrub.get("unrepairable", 1) == 0
            ),
            detail=f"injected {len(report.corrupted)} into owned shards, "
            f"scrubber found {report.scrub.get('corrupt', 0)}, repaired "
            f"{report.scrub.get('repaired', 0)} from co-owners, unrepairable "
            f"{report.scrub.get('unrepairable', 0)}",
        )
    )
    out.append(
        Invariant(
            name="shards_converged",
            ok=(
                report.divergence.get("owners_missing", -1) == 0
                and report.divergence.get("strays", -1) == 0
            ),
            detail=f"post-sync divergence: {report.divergence}",
        )
    )
    out.append(
        Invariant(
            name="killed_replica_reinstated",
            ok=all(state == LIVE for state in states.values()),
            detail=", ".join(
                f"{name} {state}" for name, state in sorted(states.items())
            )
            + " after restarts + probes",
        )
    )
    out.append(
        Invariant(
            name="degraded_write_survived",
            ok=sha256_bytes(healed_blob) == report.degraded_write,
            detail=f"blob {report.degraded_write[:19]}… written with an owner "
            f"dead ({report.hints_parked} hint parked) pulls correctly after "
            f"heal + join + leave",
        )
    )
    out.append(
        Invariant(
            name="readable_while_owner_lives",
            ok=(
                report.availability.get("checked", 0) > 0
                and report.availability.get("unreadable", -1) == 0
            ),
            detail=f"{report.availability.get('unreadable', '?')} of "
            f"{report.availability.get('checked', '?')} placed blobs "
            f"unreadable with {report.killed} down",
        )
    )
    out.append(
        Invariant(
            name="placement_matches_ring",
            ok=report.audit.get("matches_ring", False),
            detail=f"final audit: {len(report.audit.get('missing', []))} owner "
            f"copies missing, {len(report.audit.get('strays', []))} strays vs "
            f"a from-scratch placement computation",
        )
    )
    out.append(
        Invariant(
            name="rebalance_minimal",
            ok=(
                join_report.minimal
                and leave_report.minimal
                and len(join_report.moved) > 0
                and len(leave_report.moved) > 0
            ),
            detail=f"join touched {len(join_report.touched)} of "
            f"{len(join_report.moved)} owner-set changes "
            f"({join_report.unchanged} untouched); leave touched "
            f"{len(leave_report.touched)} of {len(leave_report.moved)}",
        )
    )
    ideal = report.replicas / report.k if report.k else 0.0
    bound = CAPACITY_EFFICIENCY * ideal
    ratio = report.placement.get("capacity_ratio", 0.0)
    out.append(
        Invariant(
            name="capacity_amplified",
            ok=ratio >= bound,
            detail=f"unique bytes = x{ratio:.2f} the largest replica footprint "
            f"(needs >= x{bound:.2f}; ideal for k={report.k}/N={report.replicas} "
            f"is x{ideal:.2f}; full replication is x1.0)",
        )
    )
    return out
