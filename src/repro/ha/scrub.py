"""The blob scrubber: at-rest integrity re-verification with peer repair.

Content addressing makes corruption *detectable* — a blob either hashes to
its key or it does not — but only if somebody actually re-hashes the bytes.
Serving-path verification catches rot the moment a client asks; the
scrubber catches it *before* anyone asks, walking every store and
re-verifying every digest, so a bit flipped in January does not wait until
a June pull to surface.

On a mismatch the scrubber:

1. **quarantines** — the rotted bytes are pulled out of the store (never
   addressable again) and remembered with the digest they actually hash
   to, the same quarantine discipline the downloader applies in flight;
2. **repairs** — a healthy copy is searched for across the peer stores
   (re-verified before use — a corrupt peer is not a donor) and written
   back, making the damage invisible to clients;
3. **reports** — every count lands in the :class:`ScrubReport` and the
   metrics registry, because a scrubber that fixes things silently is a
   scrubber nobody can trust.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs import MetricsRegistry
from repro.registry.blobstore import BlobStore
from repro.util.digest import sha256_bytes


@dataclass
class ScrubReport:
    """What one scrub pass found, per store and overall."""

    scanned: int = 0
    clean: int = 0
    corrupt: int = 0
    repaired: int = 0
    unrepairable: int = 0
    #: swept blobs removed instead of repaired (deletion wins over repair)
    tombstoned_removed: int = 0
    #: digest -> actual digest of the quarantined bytes
    quarantined: dict[str, str] = field(default_factory=dict)
    #: per-store breakdown: store label -> {scanned, corrupt, repaired}
    stores: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every store verified clean after repairs."""
        return self.corrupt == self.repaired

    def merge(self, other: "ScrubReport") -> "ScrubReport":
        self.scanned += other.scanned
        self.clean += other.clean
        self.corrupt += other.corrupt
        self.repaired += other.repaired
        self.unrepairable += other.unrepairable
        self.tombstoned_removed += other.tombstoned_removed
        self.quarantined.update(other.quarantined)
        self.stores.update(other.stores)
        return self

    def to_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "clean": self.clean,
            "corrupt": self.corrupt,
            "repaired": self.repaired,
            "unrepairable": self.unrepairable,
            "tombstoned_removed": self.tombstoned_removed,
            "quarantined": dict(sorted(self.quarantined.items())),
            "ok": self.ok,
        }


class BlobScrubber:
    """Walk blob stores re-verifying digests; quarantine and repair rot."""

    def __init__(self, *, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        #: every quarantine ever made by this scrubber: digest -> actuals
        self.quarantine: dict[str, list[str]] = {}

    # -- one store ---------------------------------------------------------------

    def scrub_store(
        self,
        store: BlobStore,
        *,
        peers: list[BlobStore] | tuple[BlobStore, ...] = (),
        peer_resolver: Callable[[str], Sequence[BlobStore]] | None = None,
        tombstoned: Callable[[str], bool] | None = None,
        label: str = "store",
    ) -> ScrubReport:
        """Re-verify every blob in *store*, repairing from *peers*.

        A mismatching blob is deleted (quarantined) and, when some peer
        holds a copy that re-hashes correctly, written back verified. The
        walk snapshots the digest list up front, so repairs during the
        pass do not disturb iteration.

        ``peer_resolver(digest)`` overrides the static *peers* list per
        digest — a sharded cluster resolves each blob to its co-owners
        (plus any hint holder) instead of every store in the fleet.

        ``tombstoned(digest)`` marks digests the garbage collector swept:
        those are *removed*, never repaired — "my peer still has a copy"
        is exactly the resurrection bug tombstones exist to stop.
        """
        report = ScrubReport()
        for digest in sorted(store.digests()):
            if tombstoned is not None and tombstoned(digest):
                store.delete(digest)
                report.tombstoned_removed += 1
                self.metrics.counter(
                    "scrub_tombstoned_removed_total",
                    "swept blobs removed instead of repaired",
                    store=label,
                ).inc()
                continue
            report.scanned += 1
            data = store.get(digest)
            actual = sha256_bytes(data)
            if actual == digest:
                report.clean += 1
                continue
            report.corrupt += 1
            report.quarantined[digest] = actual
            with self._lock:
                self.quarantine.setdefault(digest, []).append(actual)
            store.delete(digest)
            self.metrics.counter(
                "scrub_corrupt_total", "at-rest digest mismatches found",
                store=label,
            ).inc()
            donor_pool = peer_resolver(digest) if peer_resolver is not None else peers
            donor = self._find_donor(digest, donor_pool)
            if donor is not None:
                store.put_at(digest, donor)
                report.repaired += 1
                self.metrics.counter(
                    "scrub_repaired_total", "corrupt blobs repaired from a peer",
                    store=label,
                ).inc()
            else:
                report.unrepairable += 1
                self.metrics.counter(
                    "scrub_unrepairable_total",
                    "corrupt blobs with no healthy copy anywhere",
                    store=label,
                ).inc()
        self.metrics.counter(
            "scrub_scanned_total", "blobs re-verified at rest", store=label
        ).inc(report.scanned)
        report.stores[label] = {
            "scanned": report.scanned,
            "corrupt": report.corrupt,
            "repaired": report.repaired,
        }
        return report

    @staticmethod
    def _find_donor(digest: str, peers) -> bytes | None:
        for peer in peers:
            if not peer.has(digest):
                continue
            data = peer.get(digest)
            if sha256_bytes(data) == digest:
                return data
        return None

    # -- a whole replica set -----------------------------------------------------

    def scrub_replica_set(self, replica_set) -> ScrubReport:
        """Scrub every replica's store, each repairing from the others.

        Each store's scrub consults its own registry's tombstones first:
        a swept blob found at rest (a replica that missed the sync) is
        removed, not lovingly repaired back to life."""
        stores = [replica.registry.blobs for replica in replica_set.replicas]
        names = [replica.name for replica in replica_set.replicas]
        registries = [replica.registry for replica in replica_set.replicas]
        total = ScrubReport()
        for i, store in enumerate(stores):
            peers = stores[:i] + stores[i + 1 :]
            total.merge(
                self.scrub_store(
                    store,
                    peers=peers,
                    tombstoned=registries[i].blob_deleted,
                    label=names[i],
                )
            )
        return total

    # -- a sharded cluster -------------------------------------------------------

    def scrub_sharded_set(self, sharded) -> ScrubReport:
        """Scrub each replica's shards, repairing from the blob's own
        owner set (a :class:`~repro.ha.sharded.ShardedReplicaSet`).

        Donors for a rotted copy are the digest's *other* owners first,
        then every remaining store (a hint holder or a not-yet-rebalanced
        copy can legitimately hold the only good bytes)."""
        total = ScrubReport()
        for replica in sharded.replicas:
            own_store = replica.registry.blobs

            def resolve(digest: str, *, _self=own_store) -> list[BlobStore]:
                owners = [
                    sharded.replica(name).registry.blobs
                    for name in sharded.owner_names(digest)
                    if name in {r.name for r in sharded.replicas}
                ]
                rest = [
                    r.registry.blobs
                    for r in sharded.replicas
                    if r.registry.blobs not in owners
                ]
                return [s for s in owners + rest if s is not _self]

            total.merge(
                self.scrub_store(
                    own_store,
                    peer_resolver=resolve,
                    tombstoned=replica.registry.blob_deleted,
                    label=replica.name,
                )
            )
        return total
