"""The cluster exercise: replicated serving under kills, rot, and overload.

:func:`run_cluster` is the ``repro cluster`` CLI's engine — one seeded,
end-to-end demonstration that the HA layer actually delivers what it
promises. It materializes a synthetic hub, stamps it out over N replicas,
puts the :class:`~repro.ha.frontend.FailoverFrontend` in front, and drives
a pull workload through three deterministic phases:

* **phase A (healthy)** — baseline traffic against the full set;
* **phase B (degraded)** — one replica is *killed* mid-run (no drain, its
  connections die) and another's store gets deterministic at-rest bit
  flips; traffic continues through the frontend, which must fail reads
  over and block every corrupt byte at the edge. A write lands while the
  set is degraded, so the dead replica misses it;
* **phase C (healed)** — the scrubber quarantines and repairs the rot,
  the killed replica restarts, anti-entropy reconciles the missed write,
  active probes reinstate the replica, and traffic confirms the set is
  whole again.

Phases run serially from one client thread, so every count in the report
is a function of the seed alone — the report is a regression artifact.
The **invariants** (zero corrupt blobs served, ≥99 % GET success after
retries, all rot detected and repaired, replicas converged, the killed
replica reinstated, the degraded-era write everywhere) gate the exit code.

:func:`run_overload` is the companion stress: one server with real
:class:`~repro.ha.admission.ServerLimits` under an open-loop arrival rate
beyond its capacity, asserting it sheds with honest 503 + ``Retry-After``
while accepted requests keep a bounded p99 — the registry bends, it does
not break.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.faults import FaultInjector, FaultRule, corrupt_at_rest, corrupt_some_at_rest
from repro.faults.chaos import Invariant
from repro.ha.admission import AdmissionGate, ServerLimits, TokenBucketLimiter
from repro.ha.frontend import FailoverFrontend
from repro.ha.health import LIVE, HealthMonitor
from repro.ha.replica import RegistryReplicaSet
from repro.ha.scrub import BlobScrubber
from repro.obs import MetricsRegistry, counter_total
from repro.util.digest import sha256_bytes


@dataclass
class ClusterReport:
    """What one :func:`run_cluster` exercise measured and asserted."""

    seed: int
    replicas: int
    requests: int
    #: phase name -> {attempted, succeeded, failed, corrupt, retries}
    phases: dict[str, dict[str, int]] = field(default_factory=dict)
    killed: str = ""
    corrupted: list[str] = field(default_factory=list)
    degraded_write: str = ""
    scrub: dict = field(default_factory=dict)
    sync: dict = field(default_factory=dict)
    divergence: dict = field(default_factory=dict)
    #: per-replica blob footprint + capacity ratio (full replication: ~1.0)
    placement: dict = field(default_factory=dict)
    frontend: dict = field(default_factory=dict)
    health: list[dict] = field(default_factory=list)
    invariants: list[Invariant] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def totals(self) -> dict[str, int]:
        out = {"attempted": 0, "succeeded": 0, "failed": 0, "corrupt": 0, "retries": 0}
        for counts in self.phases.values():
            for key in out:
                out[key] += counts[key]
        return out

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "replicas": self.replicas,
            "requests": self.requests,
            "phases": self.phases,
            "totals": self.totals(),
            "killed": self.killed,
            "corrupted": self.corrupted,
            "degraded_write": self.degraded_write,
            "scrub": self.scrub,
            "sync": self.sync,
            "divergence": self.divergence,
            "placement": self.placement,
            "frontend": self.frontend,
            "health": self.health,
            "invariants": [inv.to_dict() for inv in self.invariants],
            "duration_s": self.duration_s,
            "ok": self.ok,
        }

    def seeded_core(self) -> dict:
        """The deterministic subset: identical for identical seeds.

        Wall-clock artifacts (duration, per-replica URLs with ephemeral
        ports) are excluded; everything here is a pure function of the
        seed and the run parameters.
        """
        doc = self.to_dict()
        for volatile in ("duration_s", "health", "frontend"):
            doc.pop(volatile)
        return doc

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        totals = self.totals()
        lines = [
            f"cluster exercise: seed={self.seed}, {self.replicas} replicas, "
            f"{self.requests} pulls",
            f"  killed {self.killed} mid-run; corrupted "
            f"{len(self.corrupted)} blob(s) at rest",
        ]
        for name, counts in self.phases.items():
            lines.append(
                f"  phase {name:<9} {counts['succeeded']:>5}/{counts['attempted']} ok, "
                f"{counts['retries']} retries, {counts['corrupt']} corrupt served"
            )
        lines.append(
            f"  frontend   {self.frontend.get('failovers', 0)} failovers, "
            f"{self.frontend.get('corrupt_blocked', 0)} corrupt blocked, "
            f"{self.frontend.get('refused', 0)} refused"
        )
        lines.append(
            f"  scrub      {self.scrub.get('scanned', 0)} scanned, "
            f"{self.scrub.get('corrupt', 0)} corrupt, "
            f"{self.scrub.get('repaired', 0)} repaired"
        )
        lines.append(
            f"  sync       {self.sync.get('blobs', 0)} blobs reconciled, "
            f"{self.sync.get('corrupt_donors_skipped', 0)} corrupt donors refused"
        )
        if self.placement:
            lines.append(
                f"  placement  k={self.placement.get('k', '?')}/"
                f"{self.placement.get('replicas', '?')} replicas, "
                f"imbalance {self.placement.get('imbalance', 0):.2f}, "
                f"capacity x{self.placement.get('capacity_ratio', 0):.2f} "
                f"of one replica's disk"
            )
        success = totals["succeeded"] / totals["attempted"] if totals["attempted"] else 0
        lines.append(f"  GET success {success:8.2%} after retries")
        lines.append("invariants:")
        for inv in self.invariants:
            mark = "ok " if inv.ok else "FAIL"
            lines.append(f"  [{mark}] {inv.name}: {inv.detail}")
        lines.append(
            "verdict: " + ("all invariants hold" if self.ok else "INVARIANT VIOLATED")
        )
        return "\n".join(lines)


def _pull_phase(session, ops, *, max_attempts: int = 5) -> dict[str, int]:
    """Run one phase of pulls through *session*, verifying every blob.

    Each op is retried on transient/backpressure errors; a blob whose
    bytes do not re-hash to its digest counts as ``corrupt`` — the number
    the zero-corruption invariant is about. The frontend verifies at the
    edge too; this client-side check is the independent ground truth.
    """
    from repro.downloader.session import RateLimitedError, TransientNetworkError
    from repro.registry.errors import RegistryError

    counts = {"attempted": 0, "succeeded": 0, "failed": 0, "corrupt": 0, "retries": 0}
    for op in ops:
        counts["attempted"] += 1
        for attempt in range(max_attempts):
            try:
                if op.kind == "manifest":
                    session.get_manifest(op.repo, op.tag)
                else:
                    blob = session.get_blob(op.digest)
                    if sha256_bytes(blob) != op.digest:
                        counts["corrupt"] += 1
                counts["succeeded"] += 1
                break
            except RateLimitedError as exc:
                counts["retries"] += 1
                if attempt == max_attempts - 1:
                    counts["failed"] += 1
                else:
                    time.sleep(min(exc.retry_after_s or 0.05, 0.25))
            except (TransientNetworkError, RegistryError):
                counts["retries"] += 1
                if attempt == max_attempts - 1:
                    counts["failed"] += 1
                else:
                    time.sleep(0.02)
    return counts


def run_cluster(
    *,
    seed: int = 7,
    replicas: int = 3,
    scale: str = "tiny",
    requests: int = 120,
    kill_index: int = 1,
    corrupt_count: int = 2,
) -> ClusterReport:
    """The full kill/corrupt/heal exercise; see the module docstring."""
    from repro.cache import generate_trace
    from repro.loadgen import requests_from_trace
    from repro.registry.http import HTTPSession
    from repro.synth import SyntheticHubConfig, generate_dataset, materialize_registry

    if replicas < 2:
        raise ValueError(f"the exercise needs >= 2 replicas, got {replicas}")
    if not 0 <= kill_index < replicas:
        raise ValueError(f"kill_index {kill_index} out of range for {replicas} replicas")

    t0 = time.perf_counter()
    config = getattr(SyntheticHubConfig, scale)(seed=seed)
    dataset = generate_dataset(config)
    source, truth = materialize_registry(dataset, fail_share=0.0, seed=seed)
    trace = generate_trace(
        dataset, requests, granularity="image", locality=0.2, seed=seed
    )
    ops = requests_from_trace(trace, dataset, truth)
    third = len(ops) // 3
    phase_ops = {"A:healthy": ops[:third], "B:degraded": ops[third : 2 * third],
                 "C:healed": ops[2 * third :]}

    metrics = MetricsRegistry()
    replica_set = RegistryReplicaSet.from_source(
        source, replicas, metrics=metrics
    ).start_all()
    endpoints = replica_set.endpoints()
    monitor = HealthMonitor(
        endpoints, eject_after=2, reinstate_after=2, metrics=metrics
    )
    report = ClusterReport(seed=seed, replicas=replicas, requests=len(ops))
    # the replica that rots: any survivor of the kill
    corrupt_index = (kill_index + 1) % replicas

    with FailoverFrontend(endpoints, monitor=monitor, metrics=metrics) as frontend:
        session = HTTPSession(frontend.base_url, timeout=5.0)

        report.phases["A:healthy"] = _pull_phase(session, phase_ops["A:healthy"])

        killed = replica_set.kill(kill_index)
        report.killed = killed.name
        # rot blobs phase B is actually going to pull, so the frontend's
        # edge verification is exercised, not just the scrubber; top up
        # from arbitrary store digests if the phase is too small
        store = replica_set.replicas[corrupt_index].registry.blobs
        victims: list[str] = []
        for op in phase_ops["B:degraded"]:
            if op.kind == "blob" and op.digest not in victims and store.has(op.digest):
                victims.append(op.digest)
            if len(victims) >= corrupt_count:
                break
        for digest in victims:
            corrupt_at_rest(store, digest, seed=seed)
        if len(victims) < corrupt_count:
            extra = corrupt_some_at_rest(
                store, count=corrupt_count - len(victims), seed=seed
            )
            victims = list(dict.fromkeys(victims + extra))
        report.corrupted = victims
        # one active sweep records a first strike against the dead replica
        # (eject_after=2); the second strike — and the ejection — comes
        # passively from phase B's first failed-over read
        monitor.probe_all()

        report.phases["B:degraded"] = _pull_phase(session, phase_ops["B:degraded"])

        # a write while one replica is down: the survivors take it, the
        # dead one owes it to anti-entropy
        payload = f"written-while-degraded seed={seed}".encode()
        report.degraded_write = replica_set.put_blob(payload)

        scrubber = BlobScrubber(metrics=metrics)
        scrub_report = scrubber.scrub_replica_set(replica_set)
        report.scrub = scrub_report.to_dict()

        replica_set.restart(kill_index)
        report.sync = replica_set.sync()
        monitor.probe_until_live(killed.base_url)

        report.phases["C:healed"] = _pull_phase(session, phase_ops["C:healed"])
        # the degraded-era write must now be pullable through the frontend
        healed_blob = session.get_blob(report.degraded_write)

        report.divergence = replica_set.divergence()
        report.placement = replica_set.placement_report()
        report.frontend = dict(frontend.stats)
        report.health = monitor.snapshot()

    replica_set.stop_all()
    report.duration_s = time.perf_counter() - t0
    report.invariants = _cluster_invariants(report, monitor, killed.base_url, healed_blob)
    return report


def _cluster_invariants(
    report: ClusterReport, monitor: HealthMonitor, killed_url: str, healed_blob: bytes
) -> list[Invariant]:
    out: list[Invariant] = []
    totals = report.totals()

    out.append(
        Invariant(
            name="zero_corrupt_served",
            ok=totals["corrupt"] == 0,
            detail=f"{totals['corrupt']} corrupt blobs reached a client "
            f"({report.frontend.get('corrupt_blocked', 0)} blocked at the edge)",
        )
    )
    success = totals["succeeded"] / totals["attempted"] if totals["attempted"] else 0.0
    out.append(
        Invariant(
            name="get_success_after_retries",
            ok=success >= 0.99,
            detail=f"{totals['succeeded']}/{totals['attempted']} = {success:.2%} "
            f"(needs >= 99%) with {totals['retries']} retries",
        )
    )
    out.append(
        Invariant(
            name="rot_detected_and_repaired",
            ok=(
                report.scrub.get("corrupt", 0) == len(report.corrupted)
                and report.scrub.get("unrepairable", 1) == 0
            ),
            detail=f"injected {len(report.corrupted)}, scrubber found "
            f"{report.scrub.get('corrupt', 0)}, repaired "
            f"{report.scrub.get('repaired', 0)}, unrepairable "
            f"{report.scrub.get('unrepairable', 0)}",
        )
    )
    out.append(
        Invariant(
            name="replicas_converged",
            ok=report.divergence.get("missing_somewhere", -1) == 0,
            detail=f"divergence after sync: {report.divergence}",
        )
    )
    out.append(
        Invariant(
            name="killed_replica_reinstated",
            ok=monitor.health(killed_url).state == LIVE,
            detail=f"{report.killed} state={monitor.health(killed_url).state} "
            f"after restart + probes",
        )
    )
    out.append(
        Invariant(
            name="degraded_write_survived",
            ok=sha256_bytes(healed_blob) == report.degraded_write,
            detail=f"blob {report.degraded_write[:19]}… written during the "
            f"outage pulls correctly after heal",
        )
    )
    return out


@dataclass
class OverloadReport:
    """What :func:`run_overload` measured on a limits-protected server."""

    seed: int
    requests: int
    arrival_rate_rps: float
    max_concurrent: int
    completed: int = 0
    shed_client: int = 0
    shed_server: int = 0
    rate_limited_server: int = 0
    server_p99_s: float = 0.0
    p99_bound_s: float = 0.0
    duration_s: float = 0.0
    invariants: list[Invariant] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "arrival_rate_rps": self.arrival_rate_rps,
            "max_concurrent": self.max_concurrent,
            "completed": self.completed,
            "shed_client": self.shed_client,
            "shed_server": self.shed_server,
            "rate_limited_server": self.rate_limited_server,
            "server_p99_s": self.server_p99_s,
            "p99_bound_s": self.p99_bound_s,
            "duration_s": self.duration_s,
            "invariants": [inv.to_dict() for inv in self.invariants],
            "ok": self.ok,
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"overload exercise: seed={self.seed}, {self.requests} requests at "
            f"{self.arrival_rate_rps:.0f}/s against {self.max_concurrent} slots",
            f"  completed  {self.completed}",
            f"  shed       {self.shed_server} by the server "
            f"({self.shed_client} surfaced to clients as backpressure, "
            f"{self.rate_limited_server} per-client 429s)",
            f"  server p99 {self.server_p99_s * 1e3:.1f} ms "
            f"(bound {self.p99_bound_s * 1e3:.1f} ms)",
        ]
        lines.append("invariants:")
        for inv in self.invariants:
            mark = "ok " if inv.ok else "FAIL"
            lines.append(f"  [{mark}] {inv.name}: {inv.detail}")
        lines.append(
            "verdict: " + ("all invariants hold" if self.ok else "INVARIANT VIOLATED")
        )
        return "\n".join(lines)


def run_overload(
    *,
    seed: int = 0,
    requests: int = 400,
    arrival_rate_rps: float = 400.0,
    workers: int = 32,
    max_concurrent: int = 4,
    max_queue: int = 8,
    queue_timeout_s: float = 0.05,
    service_latency_s: float = 0.03,
) -> OverloadReport:
    """Open-loop overload against one limits-protected server.

    A latency fault rule throttles the server's capacity to roughly
    ``max_concurrent / service_latency_s`` requests per second; the
    arrival rate is set well past that, so the gate *must* shed. The
    invariants: sheds happened, they surfaced to clients as honest
    backpressure (503 + ``Retry-After`` → ``RateLimitedError``), and the
    server-side p99 across all handled requests stayed inside
    ``queue_timeout + service + slack`` — overload bent throughput, not
    latency.
    """
    from repro.cache import generate_trace
    from repro.loadgen import LoadConfig, LoadGenerator, requests_from_trace
    from repro.registry.http import HTTPSession, RegistryHTTPServer
    from repro.synth import SyntheticHubConfig, generate_dataset, materialize_registry

    t0 = time.perf_counter()
    config = SyntheticHubConfig.tiny(seed=seed)
    dataset = generate_dataset(config)
    registry, truth = materialize_registry(dataset, fail_share=0.0, seed=seed)
    trace = generate_trace(
        dataset, requests, granularity="layer", locality=0.2, seed=seed
    )
    ops = requests_from_trace(trace, dataset, truth)

    limits = ServerLimits(
        gate=AdmissionGate(
            max_concurrent=max_concurrent,
            max_queue=max_queue,
            queue_timeout_s=queue_timeout_s,
            retry_after_s=queue_timeout_s,
        ),
        # generous per-client budget: this exercise is about the shared
        # gate, not one hog (the loadgen is a single client address)
        limiter=TokenBucketLimiter(rate_per_s=10_000.0, burst=10_000),
    )
    injector = FaultInjector(
        [FaultRule(kind="latency", rate=1.0, latency_s=service_latency_s)],
        seed=seed,
    )
    server = RegistryHTTPServer(
        registry, fault_injector=injector, limits=limits
    ).start()
    try:
        load = LoadGenerator(HTTPSession(server.base_url, timeout=10.0)).run(
            ops,
            LoadConfig(
                workers=workers,
                mode="open",
                arrival_rate_rps=arrival_rate_rps,
                seed=seed,
                timing="wall",
            ),
        )
        p99 = max(
            server.metrics.histogram(
                "registry_http_request_seconds", endpoint=endpoint
            ).quantile(0.99)
            for endpoint in ("blob", "manifest")
        )
        report = OverloadReport(
            seed=seed,
            requests=len(ops),
            arrival_rate_rps=arrival_rate_rps,
            max_concurrent=max_concurrent,
            completed=load.requests,
            shed_client=load.shed,
            shed_server=int(
                counter_total(server.metrics, "registry_http_rejected_total")
            ),
            rate_limited_server=int(
                counter_total(
                    server.metrics, "registry_http_rejected_total",
                    reason="rate_limited",
                )
            ),
            server_p99_s=p99,
            # queue wait + the latency spike's peak + handling slack; the
            # histogram's log buckets overshoot by at most one growth step
            p99_bound_s=queue_timeout_s + service_latency_s + 0.25,
        )
    finally:
        server.stop()
    report.duration_s = time.perf_counter() - t0

    report.invariants = [
        Invariant(
            name="server_shed_under_overload",
            ok=report.shed_server > 0,
            detail=f"{report.shed_server} requests shed by the gate",
        ),
        Invariant(
            name="shed_is_honest_backpressure",
            ok=report.shed_client > 0,
            detail=f"{report.shed_client} sheds surfaced as RateLimitedError "
            f"(503/429 + Retry-After), not silent failures",
        ),
        Invariant(
            name="accepted_p99_bounded",
            ok=report.server_p99_s <= report.p99_bound_s,
            detail=f"server p99 {report.server_p99_s * 1e3:.1f} ms vs bound "
            f"{report.p99_bound_s * 1e3:.1f} ms",
        ),
        Invariant(
            name="work_still_completed",
            ok=report.completed > 0,
            detail=f"{report.completed} requests completed despite the storm",
        ),
        Invariant(
            name="accounting_reconciles",
            ok=report.completed + load.errors == len(ops),
            detail=f"{report.completed} completed + {load.errors} failed "
            f"== {len(ops)} issued",
        ),
    ]
    return report
