"""Content-addressable blob storage.

Registries store layer tarballs, manifests and config blobs keyed by content
digest. Two backends: an in-memory dict (tests, small materialized hubs) and
an on-disk sharded layout matching how real registries fan blobs out over
directories (``blobs/sha256/ab/abcdef.../data``).
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Iterator

from repro.registry.errors import BlobNotFoundError, DigestMismatchError
from repro.util.digest import parse_digest, sha256_bytes


class BlobStore(abc.ABC):
    """Digest-addressed byte storage."""

    @abc.abstractmethod
    def put(self, data: bytes) -> str:
        """Store *data*; returns its sha256 digest. Idempotent."""

    @abc.abstractmethod
    def get(self, digest: str) -> bytes:
        """Fetch a blob. Raises BlobNotFoundError when absent."""

    @abc.abstractmethod
    def has(self, digest: str) -> bool:
        ...

    @abc.abstractmethod
    def size(self, digest: str) -> int:
        """Byte size of a stored blob (without reading it, when possible)."""

    @abc.abstractmethod
    def digests(self) -> Iterator[str]:
        """Iterate over all stored digests."""

    @abc.abstractmethod
    def delete(self, digest: str) -> None:
        """Remove a blob (raises BlobNotFoundError when absent). Used by
        registry garbage collection."""

    @abc.abstractmethod
    def put_at(self, digest: str, data: bytes) -> None:
        """Store *data* under *digest* WITHOUT verifying the content hashes
        to it. Two legitimate users: replica repair/sync writing bytes that
        were already digest-verified in hand (no point re-hashing twice per
        hop), and fault injection planting at-rest corruption for the
        scrubber to find. Everything else should use :meth:`put`."""

    def get_verified(self, digest: str) -> bytes:
        """Fetch and re-hash; raises DigestMismatchError on corruption."""
        data = self.get(digest)
        actual = sha256_bytes(data)
        if actual != digest:
            raise DigestMismatchError(expected=digest, actual=actual)
        return data

    def total_bytes(self) -> int:
        return sum(self.size(d) for d in self.digests())

    def count(self) -> int:
        return sum(1 for _ in self.digests())


class MemoryBlobStore(BlobStore):
    """Dict-backed store for tests and small materialized datasets."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def put(self, data: bytes) -> str:
        digest = sha256_bytes(data)
        # Idempotent by construction: same content, same key.
        self._blobs.setdefault(digest, data)
        return digest

    def get(self, digest: str) -> bytes:
        parse_digest(digest)
        try:
            return self._blobs[digest]
        except KeyError:
            raise BlobNotFoundError(digest) from None

    def has(self, digest: str) -> bool:
        return digest in self._blobs

    def size(self, digest: str) -> int:
        return len(self.get(digest))

    def digests(self) -> Iterator[str]:
        return iter(list(self._blobs))

    def delete(self, digest: str) -> None:
        parse_digest(digest)
        if self._blobs.pop(digest, None) is None:
            raise BlobNotFoundError(digest)

    def put_at(self, digest: str, data: bytes) -> None:
        parse_digest(digest)
        self._blobs[digest] = data


class DiskBlobStore(BlobStore):
    """Sharded on-disk layout: ``<root>/sha256/<hex[:2]>/<hex>``.

    Writes go through a temp file + rename so a crashed write never leaves a
    truncated blob addressable.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> Path:
        algo, hexpart = parse_digest(digest)
        return self.root / algo / hexpart[:2] / hexpart

    def put(self, data: bytes) -> str:
        digest = sha256_bytes(data)
        path = self._path(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(data)
            tmp.rename(path)
        return digest

    def get(self, digest: str) -> bytes:
        path = self._path(digest)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise BlobNotFoundError(digest) from None

    def has(self, digest: str) -> bool:
        return self._path(digest).exists()

    def size(self, digest: str) -> int:
        try:
            return self._path(digest).stat().st_size
        except FileNotFoundError:
            raise BlobNotFoundError(digest) from None

    def delete(self, digest: str) -> None:
        path = self._path(digest)
        try:
            path.unlink()
        except FileNotFoundError:
            raise BlobNotFoundError(digest) from None

    def put_at(self, digest: str, data: bytes) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(data)
        tmp.rename(path)

    def digests(self) -> Iterator[str]:
        for algo_dir in sorted(self.root.iterdir()):
            if not algo_dir.is_dir():
                continue
            for shard in sorted(algo_dir.iterdir()):
                for blob in sorted(shard.iterdir()):
                    if blob.suffix != ".tmp":
                        yield f"{algo_dir.name}:{blob.name}"
