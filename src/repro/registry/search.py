"""Docker Hub's web search engine, as the paper's crawler experienced it.

Docker Hub had no API to enumerate repositories; the paper's crawler searched
for ``"/"`` (every non-official repository name contains one) and paged
through the results. Hub's indexing logic returned *duplicate entries* across
pages — the crawler got 634,412 rows for 457,627 distinct repositories, a
~1.39× duplication factor. We reproduce both behaviours: substring search
with pagination, and index-shard duplication that re-serves a fraction of
repositories on multiple pages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.registry.registry import Registry
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class SearchPage:
    """One page of search results."""

    query: str
    page: int
    results: list[str]
    has_next: bool


class HubSearchEngine:
    """Paginated substring search over a registry's repository names.

    ``duplication_factor`` controls how many extra (duplicate) rows the
    index emits, mimicking Hub's sharded indexing; duplicates are spread
    deterministically (seeded) through the result stream so they can land on
    different pages than the originals.
    """

    def __init__(
        self,
        registry: Registry,
        *,
        page_size: int = 100,
        duplication_factor: float = 1.39,
        seed: int = 0,
    ):
        if page_size <= 0:
            raise ValueError(f"page size must be positive, got {page_size}")
        if duplication_factor < 1.0:
            raise ValueError(
                f"duplication factor must be >= 1, got {duplication_factor}"
            )
        self.registry = registry
        self.page_size = page_size
        self.duplication_factor = duplication_factor
        self.seed = seed
        self._index_cache: dict[str, list[str]] = {}

    # -- index construction -----------------------------------------------------

    def _build_index(self, query: str) -> list[str]:
        """The full (duplicated) result stream for a query."""
        matches = [name for name in self.registry.catalog() if query in name]
        n_extra = int(round(len(matches) * (self.duplication_factor - 1.0)))
        if n_extra == 0 or not matches:
            return matches
        # hash(query) is PYTHONHASHSEED-salted and would shuffle differently
        # every process; fold the query in with the stable seed tree instead
        rng = np.random.default_rng(derive_seed(self.seed, "search", query))
        dup_idx = rng.integers(0, len(matches), size=n_extra)
        stream = matches + [matches[i] for i in dup_idx]
        # Shuffle so duplicates interleave across pages like a sharded index.
        rng.shuffle(stream)
        return stream

    def _index(self, query: str) -> list[str]:
        if query not in self._index_cache:
            self._index_cache[query] = self._build_index(query)
        return self._index_cache[query]

    # -- public API ------------------------------------------------------------------

    def result_count(self, query: str) -> int:
        """Total rows the index reports (includes duplicates)."""
        return len(self._index(query))

    def page_count(self, query: str) -> int:
        total = self.result_count(query)
        return max(1, -(-total // self.page_size))

    def search(self, query: str, page: int = 1) -> SearchPage:
        """Fetch one page (1-based) of results."""
        if page < 1:
            raise ValueError(f"pages are 1-based, got {page}")
        stream = self._index(query)
        start = (page - 1) * self.page_size
        results = stream[start : start + self.page_size]
        return SearchPage(
            query=query,
            page=page,
            results=results,
            has_next=start + self.page_size < len(stream),
        )

    def official_repositories(self) -> list[str]:
        """Official repositories are listed on a separate curated page (no
        crawl needed — the paper notes there are fewer than 200)."""
        return [name for name in self.registry.catalog() if "/" not in name]
