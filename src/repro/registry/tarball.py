"""Layer tarball codec: ``list[(path, bytes)]`` ⇄ gzip'd tar blobs.

Layers travel as gzip-compressed tar archives; digests are computed over the
compressed bytes (that digest is what manifests reference). Archive members
are written with zeroed timestamps and stable ordering so the same logical
content always produces the same digest — content addressing would be useless
otherwise.
"""

from __future__ import annotations

import gzip
import io
import tarfile

from repro.filetypes.catalog import TypeCatalog, default_catalog
from repro.filetypes.classifier import classify_bytes
from repro.model.file_entry import FileEntry
from repro.model.layer import Layer
from repro.util.digest import sha256_bytes

#: Fixed gzip mtime so compression is deterministic.
_GZIP_MTIME = 0


def build_layer_tarball(
    files: list[tuple[str, bytes]], *, extra_dirs: list[str] | None = None
) -> bytes:
    """Pack ``(path, content)`` pairs into a deterministic gzip'd tarball.

    Parent directories get explicit entries (as ``docker save`` produces),
    ordered so every directory precedes its children. ``extra_dirs`` adds
    bare directory entries with no files — this is how two layers with zero
    files can still have distinct digests (the paper found 7 % of layers
    file-less, yet only one *canonical* empty layer shared en masse).
    """
    seen_dirs: set[str] = set()
    buf = io.BytesIO()
    with tarfile.open(fileobj=buf, mode="w") as tar:
        for dirname in sorted(extra_dirs or []):
            if dirname.startswith("/") or ".." in dirname.split("/"):
                raise ValueError(f"unsafe tar path: {dirname!r}")
            if dirname not in seen_dirs:
                seen_dirs.add(dirname)
                dir_info = tarfile.TarInfo(name=dirname + "/")
                dir_info.type = tarfile.DIRTYPE
                dir_info.mode = 0o755
                dir_info.mtime = 0
                tar.addfile(dir_info)
        for path, content in sorted(files, key=lambda item: item[0]):
            if path.startswith("/") or ".." in path.split("/"):
                raise ValueError(f"unsafe tar path: {path!r}")
            parts = path.split("/")[:-1]
            for i in range(len(parts)):
                dirname = "/".join(parts[: i + 1])
                if dirname not in seen_dirs:
                    seen_dirs.add(dirname)
                    dir_info = tarfile.TarInfo(name=dirname + "/")
                    dir_info.type = tarfile.DIRTYPE
                    dir_info.mode = 0o755
                    dir_info.mtime = 0
                    tar.addfile(dir_info)
            info = tarfile.TarInfo(name=path)
            info.size = len(content)
            info.mode = 0o644
            info.mtime = 0
            tar.addfile(info, io.BytesIO(content))
    raw = buf.getvalue()
    gz = io.BytesIO()
    with gzip.GzipFile(fileobj=gz, mode="wb", mtime=_GZIP_MTIME) as zf:
        zf.write(raw)
    return gz.getvalue()


def extract_layer_tarball(blob: bytes) -> list[tuple[str, bytes]]:
    """Unpack a gzip'd layer tarball back into ``(path, content)`` pairs.

    Directory entries are dropped (they are derivable from paths); unsafe
    members (absolute paths, ``..``) are rejected rather than silently
    skipped.
    """
    out: list[tuple[str, bytes]] = []
    with gzip.GzipFile(fileobj=io.BytesIO(blob), mode="rb") as zf:
        raw = zf.read()
    with tarfile.open(fileobj=io.BytesIO(raw), mode="r") as tar:
        for member in tar.getmembers():
            name = member.name
            if name.startswith("./"):
                name = name[2:]
            if name.startswith("/") or ".." in name.split("/"):
                raise ValueError(f"unsafe tar member: {member.name!r}")
            if member.isdir():
                continue
            if not member.isfile():
                continue  # devices/symlinks out of scope for the analysis
            handle = tar.extractfile(member)
            content = handle.read() if handle is not None else b""
            out.append((name, content))
    return out


def layer_from_files(
    files: list[tuple[str, bytes]],
    catalog: TypeCatalog | None = None,
    *,
    extra_dirs: list[str] | None = None,
) -> tuple[Layer, bytes]:
    """Build a :class:`Layer` (with classified entries) and its tarball blob.

    This is the producer-side path: the materializer uses it to push layers
    into a registry. The returned layer's digest/compressed_size describe the
    returned blob.
    """
    catalog = catalog or default_catalog()
    blob = build_layer_tarball(files, extra_dirs=extra_dirs)
    entries = [
        FileEntry(
            path=path,
            size=len(content),
            digest=sha256_bytes(content),
            type_code=classify_bytes(path, content, catalog).code,
        )
        for path, content in sorted(files, key=lambda item: item[0])
    ]
    layer = Layer(
        digest=sha256_bytes(blob),
        entries=entries,
        compressed_size=len(blob),
    )
    return layer, blob
