"""Docker Registry HTTP API v2 over a real socket.

The paper's downloader "calls the Docker registry API directly" — this
module provides that API as an actual HTTP service so the pipeline can run
across a genuine network boundary:

* ``RegistryHTTPServer`` — serves a :class:`Registry` (and its Hub search
  engine) on localhost: ``/v2/`` version check, manifests by tag/digest
  (GET/HEAD/PUT, with ``Docker-Content-Digest``), blobs by digest, the blob
  upload protocol (``POST /blobs/uploads/`` → ``PATCH`` chunks → ``PUT``
  finalize with digest verification), ``tags/list``, a paginated
  ``/v2/_catalog``, the Hub web search at ``/search``, a ``/healthz``
  readiness probe, and per-endpoint request counters / latency histograms
  exported in Prometheus text format at ``/metrics``;

The server protects itself under load when given a
:class:`~repro.ha.admission.ServerLimits`: a concurrency-limited admission
gate with a bounded queue sheds excess traffic with 503 + ``Retry-After``
(accepted requests keep a bounded p99 instead of queueing without limit),
a per-client token bucket 429s any one client hammering the shared gate,
request bodies are bounded (411 without ``Content-Length``, 413 past
``max_body_bytes``), abandoned upload sessions expire on a TTL, and
``stop()`` drains gracefully — in-flight requests finish while new ones
are refused. ``/metrics`` and ``/healthz`` bypass the gate so
observability and health checking survive any storm.
* ``HTTPSession`` — the downloader-facing client with the same method
  surface (and error mapping) as
  :class:`~repro.downloader.session.SimulatedSession`;
* ``HTTPSearchClient`` — the crawler-facing search client, duck-compatible
  with :class:`~repro.registry.search.HubSearchEngine`.

Auth mirrors the registry's model: repositories flagged ``requires_auth``
return 401 unless a ``Bearer`` token is presented.
"""

from __future__ import annotations

import http.client
import json
import re
import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.model.manifest import MANIFEST_MEDIA_TYPE, Manifest
from repro.obs import MetricsRegistry
from repro.registry.errors import (
    AuthRequiredError,
    BlobNotFoundError,
    ManifestNotFoundError,
    RegistryError,
    RepositoryNotFoundError,
    TagNotFoundError,
)
from repro.registry.registry import Registry
from repro.registry.search import HubSearchEngine, SearchPage

_MANIFEST_RE = re.compile(r"^/v2/(?P<name>.+)/manifests/(?P<ref>[^/]+)$")
_RANGE_RE = re.compile(r"^bytes=(?P<start>\d*)-(?P<end>\d*)$")
_BLOB_RE = re.compile(r"^/v2/(?P<name>.+)/blobs/(?P<digest>sha256:[^/]+)$")
_TAGS_RE = re.compile(r"^/v2/(?P<name>.+)/tags/list$")
_TAG_RE = re.compile(r"^/v2/(?P<name>.+)/tags/(?P<tag>[^/]+)$")
_UPLOAD_START_RE = re.compile(r"^/v2/(?P<name>.+)/blobs/uploads/$")
_UPLOAD_RE = re.compile(r"^/v2/(?P<name>.+)/blobs/uploads/(?P<uuid>[0-9a-f-]+)$")

#: registry error -> (HTTP status, v2 error code)
_ERROR_MAP: list[tuple[type, int, str]] = [
    (AuthRequiredError, 401, "UNAUTHORIZED"),
    (RepositoryNotFoundError, 404, "NAME_UNKNOWN"),
    (TagNotFoundError, 404, "MANIFEST_UNKNOWN"),
    (ManifestNotFoundError, 404, "MANIFEST_UNKNOWN"),
    (BlobNotFoundError, 404, "BLOB_UNKNOWN"),
]


#: endpoints that must answer even while shedding or draining
_UNGATED_ENDPOINTS = ("metrics", "healthz")

#: body cap applied when the server carries no ServerLimits
_DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024


def _endpoint_of(path: str) -> str:
    """Classify a request path into a bounded endpoint label (metrics must
    not explode cardinality with per-repo paths)."""
    if path in ("/v2", "/v2/"):
        return "ping"
    if path == "/healthz":
        return "healthz"
    if path == "/v2/_catalog":
        return "catalog"
    if path == "/search":
        return "search"
    if path == "/metrics":
        return "metrics"
    if _UPLOAD_START_RE.match(path) or _UPLOAD_RE.match(path):
        return "upload"
    if _MANIFEST_RE.match(path):
        return "manifest"
    if _BLOB_RE.match(path):
        return "blob"
    if _TAGS_RE.match(path) or _TAG_RE.match(path):
        return "tags"
    return "other"


class _RequestRejected(Exception):
    """A request refused before (or instead of) normal handling."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after_s: float | None = None,
        reason: str | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s
        #: bounded label for the shed metric (defaults to the error code)
        self.reason = reason if reason is not None else code.lower()


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a server carrying the registry."""

    server: "RegistryHTTPServer"
    protocol_version = "HTTP/1.1"
    _payload_faults = None

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output clean

    def _token(self) -> str | None:
        header = self.headers.get("Authorization", "")
        if header.startswith("Bearer "):
            return header[len("Bearer ") :]
        return None

    def _send(self, status: int, body: bytes, content_type: str, extra: dict | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra or {}).items():
            self.send_header(key, value)
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_json(self, status: int, doc: dict, extra: dict | None = None) -> None:
        self._send(status, json.dumps(doc).encode(), "application/json", extra)

    def _send_error(self, exc: RegistryError) -> None:
        for cls, status, code in _ERROR_MAP:
            if isinstance(exc, cls):
                self._send_json(
                    status, {"errors": [{"code": code, "message": str(exc)}]}
                )
                return
        self._send_json(
            500, {"errors": [{"code": "UNKNOWN", "message": str(exc)}]}
        )

    # -- routing ---------------------------------------------------------------

    def _inject_fault(self, endpoint: str) -> bool:
        """Consult the server's fault injector (if any) for this request.

        Returns True when a fault fully answered (or killed) the request;
        payload faults are stashed on the handler for the blob branch to
        apply. The ``/metrics`` endpoint is never faulted so observability
        survives any storm.
        """
        self._payload_faults = None
        injector = getattr(self.server, "fault_injector", None)
        if injector is None or endpoint == "metrics":
            return False
        faults = injector.plan(endpoint, urllib.parse.urlparse(self.path).path)
        if faults.latency_s:
            time.sleep(faults.latency_s)
        if faults.error_kind == "rate_limit":
            self._send_json(
                429,
                {"errors": [{"code": "TOOMANYREQUESTS", "message": "injected rate limit"}]},
                {"Retry-After": f"{faults.retry_after_s:.3f}"},
            )
            return True
        if faults.error_kind is not None and faults.error_kind != "flap":
            self._send_json(
                503,
                {"errors": [{"code": "UNAVAILABLE", "message": "injected server error"}]},
            )
            return True
        if faults.error_kind == "flap":
            # Kill the connection without a response: the client sees a
            # reset / premature EOF, like a flapping upstream.
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self.close_connection = True
            return True
        if faults.mutations:
            self._payload_faults = faults
        return False

    def _client_id(self) -> str:
        """Who is asking — an explicit ``X-Client-Id`` (loadgen's virtual
        clients) or the connection's source address."""
        return self.headers.get("X-Client-Id") or self.client_address[0]

    def _admit(self, endpoint: str):
        """Run the server's overload-protection gauntlet for this request.

        Returns the admission gate to ``release()`` afterwards (None when
        ungated); raises :class:`_RequestRejected` to shed. Order matters:
        drain refusal first (the server is going away), then the per-client
        limiter (one hog must not reach the shared gate), then the gate.
        """
        owner = getattr(self.server, "owner", None)
        if owner is None or endpoint in _UNGATED_ENDPOINTS:
            return None
        if owner.draining:
            raise _RequestRejected(
                503, "UNAVAILABLE", "server is draining",
                retry_after_s=1.0, reason="draining",
            )
        limits = owner.limits
        if limits is None:
            return None
        if limits.limiter is not None and not limits.limiter.allow(self._client_id()):
            raise _RequestRejected(
                429, "TOOMANYREQUESTS", "client over rate limit",
                retry_after_s=limits.limiter.retry_after(self._client_id()),
                reason="rate_limited",
            )
        if limits.gate is not None:
            result = limits.gate.try_acquire(timeout_s=limits.request_deadline_s)
            if not result.admitted:
                raise _RequestRejected(
                    503, "UNAVAILABLE", f"overloaded ({result.outcome})",
                    retry_after_s=result.retry_after_s, reason=result.outcome,
                )
            return limits.gate
        return None

    def _reject(self, rejected: _RequestRejected, endpoint: str) -> None:
        extra = {}
        if rejected.retry_after_s is not None:
            extra["Retry-After"] = f"{rejected.retry_after_s:.3f}"
        self.server.metrics.counter(
            "registry_http_rejected_total",
            "requests shed or refused before handling",
            endpoint=endpoint,
            reason=rejected.reason,
        ).inc()
        self._send_json(
            rejected.status,
            {"errors": [{"code": rejected.code, "message": rejected.message}]},
            extra,
        )

    def _observed(self, handler) -> None:
        """Run one request handler under admission control and per-endpoint
        metrics accounting."""
        metrics = self.server.metrics
        endpoint = _endpoint_of(urllib.parse.urlparse(self.path).path)
        # count on receipt, not in the finally: a client that got its bytes
        # must already observe the counter bumped (tests race on this)
        metrics.counter(
            "registry_http_requests_total",
            "requests served, by endpoint and method",
            endpoint=endpoint,
            method=self.command,
        ).inc()
        owner = getattr(self.server, "owner", None)
        start = time.perf_counter()
        try:
            try:
                gate = self._admit(endpoint)
            except _RequestRejected as rejected:
                self._reject(rejected, endpoint)
                return
            if owner is not None:
                owner._request_began()
            try:
                if not self._inject_fault(endpoint):
                    handler()
            except _RequestRejected as rejected:
                self._reject(rejected, endpoint)
            finally:
                if gate is not None:
                    gate.release()
                if owner is not None:
                    owner._request_ended()
        finally:
            metrics.histogram(
                "registry_http_request_seconds",
                "request handling latency",
                endpoint=endpoint,
            ).observe(time.perf_counter() - start)

    def do_GET(self) -> None:  # noqa: N802
        self._observed(self._route)

    def do_HEAD(self) -> None:  # noqa: N802
        self._observed(self._route)

    def do_POST(self) -> None:  # noqa: N802
        self._observed(self._post)

    def do_PATCH(self) -> None:  # noqa: N802
        self._observed(self._patch)

    def do_PUT(self) -> None:  # noqa: N802
        self._observed(self._put)

    def do_DELETE(self) -> None:  # noqa: N802
        self._observed(self._delete)

    def _body(self) -> bytes:
        """Read the request body, bounded.

        A body-bearing request without ``Content-Length`` is a 411 (reading
        until EOF on a keep-alive connection would hang; trusting zero
        would silently drop the payload), and a declared length past the
        server's ``max_body_bytes`` is a 413 — refused before a byte of it
        is read.
        """
        header = self.headers.get("Content-Length")
        if header is None:
            raise _RequestRejected(
                411, "LENGTH_REQUIRED", "Content-Length required",
                reason="length_required",
            )
        try:
            length = int(header)
            if length < 0:
                raise ValueError(header)
        except ValueError:
            raise _RequestRejected(
                400, "BAD_REQUEST", f"bad Content-Length: {header!r}",
                reason="bad_length",
            ) from None
        owner = getattr(self.server, "owner", None)
        max_bytes = _DEFAULT_MAX_BODY_BYTES
        if owner is not None and owner.limits is not None:
            max_bytes = owner.limits.max_body_bytes
        if length > max_bytes:
            raise _RequestRejected(
                413, "PAYLOAD_TOO_LARGE",
                f"body of {length} bytes exceeds limit of {max_bytes}",
                reason="body_too_large",
            )
        return self.rfile.read(length) if length else b""

    def _post(self) -> None:
        match = _UPLOAD_START_RE.match(urllib.parse.urlparse(self.path).path)
        if not match:
            self._send_json(404, {"errors": [{"code": "NOT_FOUND", "message": self.path}]})
            return
        self._body()  # drain
        uuid = self.server.start_upload()
        self._send(
            202, b"", "text/plain",
            {"Location": f"/v2/{match['name']}/blobs/uploads/{uuid}"},
        )

    def _patch(self) -> None:
        match = _UPLOAD_RE.match(urllib.parse.urlparse(self.path).path)
        if not match:
            self._send_json(404, {"errors": [{"code": "NOT_FOUND", "message": self.path}]})
            return
        chunk = self._body()
        total = self.server.append_upload(match["uuid"], chunk)
        if total is None:
            self._send_json(
                404, {"errors": [{"code": "BLOB_UPLOAD_UNKNOWN", "message": match["uuid"]}]}
            )
            return
        self._send(
            202, b"", "text/plain",
            {
                "Location": f"/v2/{match['name']}/blobs/uploads/{match['uuid']}",
                "Range": f"0-{total - 1}",
            },
        )

    def _put(self) -> None:
        parsed = urllib.parse.urlparse(self.path)
        query = urllib.parse.parse_qs(parsed.query)
        registry = self.server.registry
        match = _UPLOAD_RE.match(parsed.path)
        if match:
            expected = query.get("digest", [""])[0]
            final_chunk = self._body()
            data = self.server.finish_upload(match["uuid"], final_chunk)
            if data is None:
                self._send_json(
                    404,
                    {"errors": [{"code": "BLOB_UPLOAD_UNKNOWN", "message": match["uuid"]}]},
                )
                return
            actual = registry.push_blob(data)
            if expected and expected != actual:
                self._send_json(
                    400,
                    {"errors": [{"code": "DIGEST_INVALID", "message": actual}]},
                )
                return
            self._send(
                201, b"", "text/plain",
                {
                    "Location": f"/v2/{match['name']}/blobs/{actual}",
                    "Docker-Content-Digest": actual,
                },
            )
            return
        match = _MANIFEST_RE.match(parsed.path)
        if match:
            body = self._body()
            try:
                manifest = Manifest.from_json(body)
            except (ValueError, KeyError) as exc:
                self._send_json(
                    400, {"errors": [{"code": "MANIFEST_INVALID", "message": str(exc)}]}
                )
                return
            missing = [
                ref.digest
                for ref in manifest.layers
                if not registry.has_blob(ref.digest)
            ]
            if missing:
                self._send_json(
                    400,
                    {"errors": [{"code": "MANIFEST_BLOB_UNKNOWN", "message": missing[0]}]},
                )
                return
            name = match["name"]
            if name not in registry.catalog():
                registry.create_repository(name)  # Hub creates on first push
            digest = registry.push_manifest(name, match["ref"], manifest)
            self._send(
                201, b"", "text/plain", {"Docker-Content-Digest": digest}
            )
            return
        self._send_json(404, {"errors": [{"code": "NOT_FOUND", "message": self.path}]})

    def _delete(self) -> None:
        """``DELETE /v2/<name>/manifests/<ref>`` and ``/v2/<name>/tags/<tag>``.

        Both answer 202 (the v2 convention for accepted deletions): the tag
        mapping is gone immediately, the bytes await garbage collection."""
        path = urllib.parse.urlparse(self.path).path
        registry = self.server.registry
        try:
            match = _MANIFEST_RE.match(path)
            if match:
                result = registry.delete_manifest(
                    match["name"], match["ref"], token=self._token()
                )
                self._send_json(202, result)
                return
            match = _TAG_RE.match(path)
            if match and match["tag"] != "list":
                registry.delete_tag(match["name"], match["tag"], token=self._token())
                self._send_json(202, {"untagged": 1})
                return
            self._send_json(404, {"errors": [{"code": "NOT_FOUND", "message": path}]})
        except RegistryError as exc:
            self._send_error(exc)

    def _route(self) -> None:
        parsed = urllib.parse.urlparse(self.path)
        path = parsed.path
        query = urllib.parse.parse_qs(parsed.query)
        registry = self.server.registry
        try:
            if path == "/v2/" or path == "/v2":
                self._send_json(200, {})
                return
            if path == "/healthz":
                self._healthz()
                return
            if path == "/v2/_catalog":
                self._catalog(query)
                return
            if path == "/search":
                self._search(query)
                return
            if path == "/metrics":
                body = self.server.metrics.render_prometheus().encode()
                self._send(200, body, "text/plain; version=0.0.4")
                return
            match = _MANIFEST_RE.match(path)
            if match:
                self._manifest(registry, match["name"], match["ref"])
                return
            match = _BLOB_RE.match(path)
            if match:
                self._blob(registry, match["digest"])
                return
            match = _TAGS_RE.match(path)
            if match:
                tags = registry.list_tags(match["name"], token=self._token())
                self._send_json(200, {"name": match["name"], "tags": tags})
                return
            self._send_json(404, {"errors": [{"code": "NOT_FOUND", "message": path}]})
        except RegistryError as exc:
            self._send_error(exc)

    def _healthz(self) -> None:
        """Readiness: 200 while serving, 503 while draining (a frontend
        must stop routing here before the socket actually closes)."""
        owner = getattr(self.server, "owner", None)
        draining = owner is not None and owner.draining
        doc = {"ready": not draining}
        if owner is not None and owner.limits is not None and owner.limits.gate is not None:
            doc.update(owner.limits.gate.stats())
        self._send_json(503 if draining else 200, doc)

    def _manifest(self, registry: Registry, name: str, ref: str) -> None:
        """Manifest GET/HEAD with conditional-request support.

        Every response carries an ``ETag`` equal to the manifest's content
        digest (quoted, as HTTP demands). A request whose ``If-None-Match``
        names that digest gets a ``304`` with an empty body — the revalidation
        that lets a proxy keep a tag fresh for one round-trip and zero payload
        bytes.
        """
        manifest = registry.get_manifest(name, ref, token=self._token())
        digest = manifest.digest()
        extra = {"Docker-Content-Digest": digest, "ETag": f'"{digest}"'}
        given = self.headers.get("If-None-Match")
        if given is not None:
            matched = given.strip().strip('"') == digest
            self.server.metrics.counter(
                "registry_http_conditional_total",
                "conditional manifest requests by outcome",
                outcome="not_modified" if matched else "modified",
            ).inc()
            if matched:
                self._send(304, b"", MANIFEST_MEDIA_TYPE, extra)
                return
        self._send(200, manifest.to_json(), MANIFEST_MEDIA_TYPE, extra)

    def _blob(self, registry: Registry, digest: str) -> None:
        """Blob GET/HEAD, honoring single-range ``Range`` requests.

        ``bytes=a-b`` / ``bytes=a-`` / ``bytes=-n`` get a ``206`` with
        ``Content-Range``; a range past the end gets ``416`` with the
        ``bytes */<size>`` hint; anything the regex rejects (multi-range,
        garbage) is ignored per RFC 7233 and answered with the full 200.
        """
        blob = registry.get_blob(digest)
        if self._payload_faults is not None:
            blob = self._payload_faults.apply_payload(blob)
        header = self.headers.get("Range")
        if header is not None and self._blob_range(blob, header):
            return
        self._send(200, blob, "application/octet-stream", {"Accept-Ranges": "bytes"})

    def _blob_range(self, blob: bytes, header: str) -> bool:
        """Answer one ``Range`` request (206 or 416); False to fall back to
        a full 200 when the header should be ignored."""
        match = _RANGE_RE.match(header.strip())
        if not match or (match["start"] == "" and match["end"] == ""):
            return False
        total = len(blob)
        if match["start"] == "":
            # suffix form: the last N bytes (N == 0 is unsatisfiable)
            n = int(match["end"])
            start = total - n if 0 < n else total
            start = max(0, start) if start < total else start
            end = total - 1
        else:
            start = int(match["start"])
            if match["end"] != "":
                end = int(match["end"])
                if end < start:
                    return False  # inverted range: ignore, serve full body
                end = min(end, total - 1)
            else:
                end = total - 1
        range_counter = lambda outcome: self.server.metrics.counter(  # noqa: E731
            "registry_http_range_total",
            "range blob requests by outcome",
            outcome=outcome,
        )
        if start >= total:
            range_counter("unsatisfiable").inc()
            self._send(
                416, b"", "application/octet-stream",
                {"Content-Range": f"bytes */{total}"},
            )
            return True
        part = blob[start : end + 1]
        range_counter("partial").inc()
        self._send(
            206, part, "application/octet-stream",
            {
                "Content-Range": f"bytes {start}-{end}/{total}",
                "Accept-Ranges": "bytes",
            },
        )
        return True

    def _catalog(self, query: dict) -> None:
        repos = self.server.registry.catalog()
        n = int(query.get("n", ["100"])[0])
        last = query.get("last", [""])[0]
        start = repos.index(last) + 1 if last in repos else 0
        page = repos[start : start + n]
        self._send_json(200, {"repositories": page})

    def _search(self, query: dict) -> None:
        q = query.get("q", [""])[0]
        page_num = int(query.get("page", ["1"])[0])
        if q == "" and "official" in query:
            self._send_json(
                200, {"results": self.server.search.official_repositories()}
            )
            return
        page = self.server.search.search(q, page=page_num)
        self._send_json(
            200,
            {
                "query": page.query,
                "page": page.page,
                "results": page.results,
                "has_next": page.has_next,
            },
        )


class RegistryHTTPServer:
    """Serve a registry over HTTP on 127.0.0.1 (ephemeral port by default)."""

    def __init__(
        self,
        registry: Registry,
        search: HubSearchEngine | None = None,
        *,
        port: int = 0,
        metrics: MetricsRegistry | None = None,
        fault_injector=None,
        limits: "ServerLimits | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry
        self.search = search if search is not None else HubSearchEngine(registry)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: optional :class:`~repro.faults.injector.FaultInjector` consulted
        #: per request (any object with a compatible ``plan(op, key)``).
        self.fault_injector = fault_injector
        #: optional :class:`~repro.ha.admission.ServerLimits` (duck-typed so
        #: the registry package never imports :mod:`repro.ha` at module load)
        self.limits = limits
        self._clock = clock
        self.draining = False
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
        # expose registry/search/uploads to handlers through the server object
        self._httpd.registry = registry  # type: ignore[attr-defined]
        self._httpd.search = self.search  # type: ignore[attr-defined]
        self._httpd.metrics = self.metrics  # type: ignore[attr-defined]
        self._httpd.fault_injector = fault_injector  # type: ignore[attr-defined]
        self._httpd.owner = self  # type: ignore[attr-defined]
        #: upload id -> (buffer, created-at); age-GCed so abandoned PATCH
        #: sessions cannot grow memory forever
        self._uploads: dict[str, tuple[bytearray, float]] = {}
        self._uploads_lock = threading.Lock()
        self._httpd.start_upload = self._start_upload  # type: ignore[attr-defined]
        self._httpd.append_upload = self._append_upload  # type: ignore[attr-defined]
        self._httpd.finish_upload = self._finish_upload  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._inflight = 0
        self._inflight_cond = threading.Condition()

    # -- in-flight accounting (for graceful drain) -------------------------------

    def _request_began(self) -> None:
        with self._inflight_cond:
            self._inflight += 1

    def _request_ended(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    @property
    def inflight(self) -> int:
        with self._inflight_cond:
            return self._inflight

    # -- blob upload sessions ---------------------------------------------------

    @property
    def upload_ttl_s(self) -> float:
        return self.limits.upload_ttl_s if self.limits is not None else 300.0

    def _start_upload(self) -> str:
        import uuid as uuid_module

        self.gc_uploads()
        upload_id = str(uuid_module.uuid4())
        with self._uploads_lock:
            self._uploads[upload_id] = (bytearray(), self._clock())
        return upload_id

    def _append_upload(self, upload_id: str, chunk: bytes) -> int | None:
        with self._uploads_lock:
            entry = self._uploads.get(upload_id)
            if entry is None:
                return None
            entry[0].extend(chunk)
            return len(entry[0])

    def _finish_upload(self, upload_id: str, final_chunk: bytes) -> bytes | None:
        with self._uploads_lock:
            entry = self._uploads.pop(upload_id, None)
            if entry is None:
                return None
            entry[0].extend(final_chunk)
            return bytes(entry[0])

    def gc_uploads(self, *, now: float | None = None) -> int:
        """Expire upload sessions older than the TTL; returns how many.

        Runs opportunistically on each new upload start (uploads are the
        only way the table grows, so the table stays bounded without a
        background sweeper); also callable directly with an explicit *now*
        for deterministic tests.
        """
        now = now if now is not None else self._clock()
        ttl = self.upload_ttl_s
        with self._uploads_lock:
            stale = [
                uid for uid, (_, created) in self._uploads.items()
                if now - created >= ttl
            ]
            for uid in stale:
                del self._uploads[uid]
        if stale:
            self.metrics.counter(
                "registry_uploads_expired_total",
                "abandoned upload sessions expired by TTL",
            ).inc(len(stale))
        return len(stale)

    def upload_count(self) -> int:
        with self._uploads_lock:
            return len(self._uploads)

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> "RegistryHTTPServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: refuse new requests, let in-flight requests
        finish (bounded by the limits' drain timeout), then close."""
        self.draining = True
        if self._thread is not None:
            timeout_s = (
                self.limits.drain_timeout_s if self.limits is not None else 5.0
            )
            deadline = time.monotonic() + timeout_s
            with self._inflight_cond:
                while self._inflight > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._inflight_cond.wait(remaining)
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def kill(self) -> None:
        """Ungraceful shutdown — the crash case. No drain: in-flight
        requests may die mid-response and clients see resets, which is
        exactly what a failover frontend must absorb."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "RegistryHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class _HTTPBase:
    def __init__(self, base_url: str, *, token: str | None = None, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = timeout
        self._lock = threading.Lock()
        self.requests = 0
        self.bytes_transferred = 0

    def _fetch(
        self,
        path: str,
        *,
        method: str = "GET",
        data: bytes | None = None,
        content_type: str | None = None,
        return_headers: bool = False,
        headers: dict[str, str] | None = None,
        not_modified_ok: bool = False,
    ):
        # deferred: repro.downloader.session imports the registry package,
        # so a module-level import here would be circular
        from repro.downloader.session import TransientNetworkError

        request = urllib.request.Request(self.base_url + path, data=data, method=method)
        if self.token:
            request.add_header("Authorization", f"Bearer {self.token}")
        if content_type:
            request.add_header("Content-Type", content_type)
        for key, value in (headers or {}).items():
            request.add_header(key, value)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                headers = dict(response.headers)
        except urllib.error.HTTPError as exc:
            if exc.code == 304 and not_modified_ok:
                # urllib surfaces 304 as an "error"; for a conditional GET it
                # is the good outcome — nothing changed, no body to read
                with self._lock:
                    self.requests += 1
                if return_headers:
                    return None, dict(exc.headers or {})
                return None
            raise _error_from_response(exc) from None
        except urllib.error.URLError as exc:
            # timeouts, refusals, resets wrapped by urllib -> retryable
            if isinstance(exc.reason, (TimeoutError, OSError, http.client.HTTPException)):
                raise TransientNetworkError(f"connection failed: {exc.reason}") from None
            raise RegistryError(f"connection failed: {exc.reason}") from None
        except (http.client.HTTPException, TimeoutError, OSError) as exc:
            # raw socket/http errors during the response read (a flapping
            # server closing mid-body surfaces here, not as URLError)
            raise TransientNetworkError(f"connection broke: {exc!r}") from None
        with self._lock:
            self.requests += 1
            self.bytes_transferred += len(body) + (len(data) if data else 0)
        if return_headers:
            return body, headers
        return body

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "requests": self.requests,
                "bytes_transferred": self.bytes_transferred,
            }


def _error_from_response(exc: urllib.error.HTTPError) -> RegistryError:
    """Map a v2 error payload back onto the registry error hierarchy."""
    from repro.downloader.session import RateLimitedError, TransientNetworkError

    retry_after = exc.headers.get("Retry-After") if exc.headers else None
    if exc.code == 429 or (exc.code == 503 and retry_after is not None):
        # 429, or 503 carrying a Retry-After (an overloaded server load-
        # shedding with a price): back off for what the server asked
        try:
            retry_after_s = float(retry_after or "0")
        except ValueError:
            retry_after_s = 0.0
        return RateLimitedError(
            f"{exc.code} backpressure (Retry-After: {retry_after_s}s)",
            retry_after_s=retry_after_s,
        )
    if exc.code >= 500:
        return TransientNetworkError(f"server error {exc.code}")
    if exc.code == 416:
        hint = exc.headers.get("Content-Range", "") if exc.headers else ""
        return RegistryError(f"range not satisfiable ({hint})")
    try:
        doc = json.loads(exc.read().decode())
        code = doc["errors"][0]["code"]
        message = doc["errors"][0].get("message", "")
    except Exception:
        code, message = "UNKNOWN", str(exc)
    if code == "UNAUTHORIZED":
        return AuthRequiredError(message or "repository")
    if code == "MANIFEST_UNKNOWN":
        # TagNotFoundError needs repo/tag; reconstruct loosely from message
        return TagNotFoundError(repo=message, tag="")
    if code == "BLOB_UNKNOWN":
        return BlobNotFoundError(message or "sha256:0")
    if code == "NAME_UNKNOWN":
        return RepositoryNotFoundError(message)
    return RegistryError(f"{code}: {message}")


class HTTPSession(_HTTPBase):
    """Registry client over HTTP — the downloader's session interface."""

    def ping(self) -> bool:
        self._fetch("/v2/")
        return True

    def _quote(self, repo: str) -> str:
        return urllib.parse.quote(repo, safe="/")

    def resolve_tag(self, repo: str, tag: str) -> str:
        manifest = self.get_manifest(repo, tag)
        return manifest.digest()

    def get_manifest(self, repo: str, reference: str) -> Manifest:
        body = self._fetch(f"/v2/{self._quote(repo)}/manifests/{reference}")
        return Manifest.from_json(body)

    def get_manifest_conditional(
        self, repo: str, reference: str, *, etag: str | None = None
    ) -> tuple[Manifest | None, str | None]:
        """Conditional manifest GET: ``(manifest, etag)``.

        When *etag* (from a previous call) still names the current manifest,
        the server answers 304 and this returns ``(None, etag)`` — the caller
        keeps its cached copy and paid no payload bytes. Otherwise the fresh
        manifest and its new ETag come back.
        """
        extra = {"If-None-Match": etag} if etag else None
        body, response_headers = self._fetch(
            f"/v2/{self._quote(repo)}/manifests/{reference}",
            headers=extra,
            not_modified_ok=True,
            return_headers=True,
        )
        new_etag = response_headers.get("ETag")
        if body is None:
            return None, new_etag if new_etag else etag
        return Manifest.from_json(body), new_etag

    def get_blob(self, digest: str) -> bytes:
        # blob fetch needs a repository scope in the URL; any name works for
        # a shared-blob registry — use the library namespace
        return self._fetch(f"/v2/library/blobs/{digest}")

    def get_blob_range(
        self, digest: str, start: int, end: int | None = None
    ) -> tuple[bytes, int]:
        """Single-range blob read: ``(payload, total_blob_size)``.

        *end* is inclusive, HTTP-style; ``None`` reads to the end of the
        blob. The total size comes from the 206's ``Content-Range`` (or the
        body length if the server ignored the range and sent a full 200).
        A range past the end surfaces the server's 416 as a
        :class:`~repro.registry.errors.RegistryError`.
        """
        spec = f"bytes={start}-" if end is None else f"bytes={start}-{end}"
        body, response_headers = self._fetch(
            f"/v2/library/blobs/{digest}",
            headers={"Range": spec},
            return_headers=True,
        )
        content_range = response_headers.get("Content-Range", "")
        if "/" in content_range:
            total = int(content_range.rsplit("/", 1)[1])
        else:
            total = len(body)
        return body, total

    def list_tags(self, repo: str) -> list[str]:
        body = self._fetch(f"/v2/{self._quote(repo)}/tags/list")
        return list(json.loads(body)["tags"])

    # -- delete side -----------------------------------------------------------

    def delete_manifest(self, repo: str, reference: str) -> dict:
        """``DELETE /v2/<name>/manifests/<ref>``; returns untag accounting."""
        body = self._fetch(
            f"/v2/{self._quote(repo)}/manifests/{reference}", method="DELETE"
        )
        return json.loads(body)

    def delete_tag(self, repo: str, tag: str) -> dict:
        """``DELETE /v2/<name>/tags/<tag>``; returns untag accounting."""
        body = self._fetch(f"/v2/{self._quote(repo)}/tags/{tag}", method="DELETE")
        return json.loads(body)

    # -- push side -------------------------------------------------------------

    def push_blob(self, data: bytes, *, chunk_size: int | None = None) -> str:
        """Upload a blob via the v2 upload protocol; returns its digest.

        ``chunk_size`` splits the body over PATCH requests (resumable-style);
        by default the whole blob goes in the finalizing PUT (monolithic).
        """
        from repro.util.digest import sha256_bytes

        digest = sha256_bytes(data)
        _, headers = self._fetch(
            "/v2/library/blobs/uploads/", method="POST", data=b"", return_headers=True
        )
        location = headers["Location"]
        if chunk_size:
            for i in range(0, len(data), chunk_size):
                self._fetch(
                    location,
                    method="PATCH",
                    data=data[i : i + chunk_size],
                    content_type="application/octet-stream",
                )
            final = b""
        else:
            final = data
        _, headers = self._fetch(
            f"{location}?digest={urllib.parse.quote(digest)}",
            method="PUT",
            data=final,
            content_type="application/octet-stream",
            return_headers=True,
        )
        return headers["Docker-Content-Digest"]

    def push_manifest(self, repo: str, tag: str, manifest: Manifest) -> str:
        """Upload a manifest under ``repo:tag``; returns its digest."""
        _, headers = self._fetch(
            f"/v2/{self._quote(repo)}/manifests/{tag}",
            method="PUT",
            data=manifest.to_json(),
            content_type=MANIFEST_MEDIA_TYPE,
            return_headers=True,
        )
        return headers["Docker-Content-Digest"]

    def push_image(
        self, repo: str, tag: str, files_per_layer: list[list[tuple[str, bytes]]]
    ) -> Manifest:
        """Build an image from file lists and push it layer by layer — the
        Fig. 1 *push* arrow, end to end over HTTP."""
        from repro.model.manifest import ManifestLayerRef
        from repro.registry.tarball import layer_from_files

        refs = []
        for files in files_per_layer:
            layer, blob = layer_from_files(files)
            self.push_blob(blob)
            refs.append(
                ManifestLayerRef(digest=layer.digest, size=layer.compressed_size)
            )
        manifest = Manifest(layers=tuple(refs))
        self.push_manifest(repo, tag, manifest)
        return manifest

    def catalog(self) -> list[str]:
        """Walk the paginated /v2/_catalog endpoint."""
        out: list[str] = []
        last = ""
        while True:
            suffix = f"?n=100&last={urllib.parse.quote(last)}" if last else "?n=100"
            page = json.loads(self._fetch("/v2/_catalog" + suffix))["repositories"]
            if not page:
                return out
            out.extend(page)
            last = page[-1]


class HTTPSearchClient(_HTTPBase):
    """Hub search over HTTP — the crawler's search interface."""

    def search(self, query: str, page: int = 1) -> SearchPage:
        body = self._fetch(
            f"/search?q={urllib.parse.quote(query)}&page={page}"
        )
        doc = json.loads(body)
        return SearchPage(
            query=doc["query"],
            page=doc["page"],
            results=list(doc["results"]),
            has_next=bool(doc["has_next"]),
        )

    def official_repositories(self) -> list[str]:
        body = self._fetch("/search?official=1")
        return list(json.loads(body)["results"])
