"""Docker registry substrate.

An in-process registry faithful to the concepts the paper's tooling relied
on: content-addressable blob storage, schema-v2 manifests addressed by tag or
digest, a repository catalog, and the Docker Hub web search engine (complete
with the duplicate-entry quirk the paper's crawler had to deduplicate).
"""

from repro.registry.blobstore import BlobStore, DiskBlobStore, MemoryBlobStore
from repro.registry.errors import (
    AuthRequiredError,
    BlobNotFoundError,
    DigestMismatchError,
    ManifestNotFoundError,
    RegistryError,
    RepositoryNotFoundError,
    TagNotFoundError,
)
from repro.registry.gc import (
    ClusterGCTarget,
    GarbageCollector,
    GCInterrupted,
    GCReport,
    Tombstones,
    collect_cluster_garbage,
)
from repro.registry.http import HTTPSearchClient, HTTPSession, RegistryHTTPServer
from repro.registry.registry import Registry
from repro.registry.search import HubSearchEngine, SearchPage
from repro.registry.tarball import (
    build_layer_tarball,
    extract_layer_tarball,
    layer_from_files,
)

__all__ = [
    "AuthRequiredError",
    "BlobNotFoundError",
    "BlobStore",
    "ClusterGCTarget",
    "DigestMismatchError",
    "DiskBlobStore",
    "GCInterrupted",
    "GCReport",
    "GarbageCollector",
    "HTTPSearchClient",
    "HTTPSession",
    "HubSearchEngine",
    "RegistryHTTPServer",
    "ManifestNotFoundError",
    "MemoryBlobStore",
    "Registry",
    "RegistryError",
    "RepositoryNotFoundError",
    "SearchPage",
    "TagNotFoundError",
    "Tombstones",
    "collect_cluster_garbage",
    "build_layer_tarball",
    "extract_layer_tarball",
    "layer_from_files",
]
