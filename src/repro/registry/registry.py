"""The registry proper: repositories, tags, manifests, blobs.

The method surface mirrors the Docker Registry HTTP API v2 that the paper's
downloader called directly: resolve a tag to a manifest, fetch the manifest,
fetch each referenced layer blob. Authentication is modeled as a per-
repository flag plus a token check, enough to reproduce the paper's 13 %
auth-failure population.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.model.manifest import Manifest
from repro.model.repository import Repository
from repro.registry.blobstore import BlobStore, MemoryBlobStore
from repro.registry.errors import (
    AuthRequiredError,
    ManifestNotFoundError,
    RepositoryNotFoundError,
    TagNotFoundError,
)
from repro.registry.gc import Tombstones
from repro.util.digest import is_digest


def tag_key(repo_name: str, tag: str) -> str:
    """Key a (repository, tag) pair for time/tombstone maps.

    ``:`` is illegal in both repository names and tags, so the join is
    unambiguous."""
    return f"{repo_name}:{tag}"


class Registry:
    """An in-process Docker registry.

    Every mutation is stamped through an injectable *clock* (defaults to
    wall time; cluster exercises share one virtual clock across replicas),
    and every deletion leaves a TTL'd :class:`~repro.registry.gc.Tombstones`
    marker. The stamps and markers together give replication a
    last-writer-wins rule: a deletion beats any copy of the entity written
    before it, while a genuinely newer push beats the deletion."""

    def __init__(
        self,
        blobstore: BlobStore | None = None,
        *,
        clock: Callable[[], float] | None = None,
    ):
        self.blobs: BlobStore = blobstore if blobstore is not None else MemoryBlobStore()
        self._clock = clock or time.time
        self._repos: dict[str, Repository] = {}
        self._manifests: dict[str, bytes] = {}
        #: pull accounting: manifest fetches by repository name
        self.manifest_pulls: dict[str, int] = {}
        #: last-write stamps, used against tombstone times for LWW merges
        self.repo_times: dict[str, float] = {}
        self.tag_times: dict[str, float] = {}
        self.manifest_times: dict[str, float] = {}
        self.blob_times: dict[str, float] = {}
        #: deletion markers, merged (newest wins) by anti-entropy sync
        self.repo_tombstones = Tombstones()
        self.tag_tombstones = Tombstones()
        self.manifest_tombstones = Tombstones()
        self.blob_tombstones = Tombstones()

    def now(self) -> float:
        return self._clock()

    def set_tombstone_ttl(self, ttl_s: float) -> None:
        """Set the deletion-marker lifetime on all four tombstone sets."""
        for tombs in (
            self.repo_tombstones,
            self.tag_tombstones,
            self.manifest_tombstones,
            self.blob_tombstones,
        ):
            tombs.ttl_s = ttl_s

    def expire_tombstones(self, now: float | None = None) -> int:
        """Drop deletion markers past their TTL; returns how many went."""
        now = self._clock() if now is None else now
        return (
            self.repo_tombstones.expire(now)
            + self.tag_tombstones.expire(now)
            + self.manifest_tombstones.expire(now)
            + self.blob_tombstones.expire(now)
        )

    # -- repository management ------------------------------------------------

    def create_repository(
        self,
        name: str,
        *,
        pull_count: int = 0,
        requires_auth: bool = False,
    ) -> Repository:
        if name in self._repos:
            raise ValueError(f"repository already exists: {name!r}")
        repo = Repository(
            name=name, pull_count=pull_count, requires_auth=requires_auth
        )
        self._repos[name] = repo
        self.repo_times[name] = self._clock()
        self.repo_tombstones.discard(name)
        return repo

    def repository(self, name: str) -> Repository:
        try:
            return self._repos[name]
        except KeyError:
            raise RepositoryNotFoundError(name) from None

    def repositories(self) -> list[Repository]:
        return list(self._repos.values())

    def catalog(self) -> list[str]:
        """All repository names (the v2 ``/_catalog`` endpoint)."""
        return sorted(self._repos)

    # -- push side ---------------------------------------------------------------

    def push_manifest(self, repo_name: str, tag: str, manifest: Manifest) -> str:
        """Store a manifest and point ``repo:tag`` at it; returns its digest.

        A push is an intentional (re-)creation: it clears any tombstone on
        the tag, the manifest, and the referenced layers, and stamps the
        write time so the push beats earlier deletions in LWW merges."""
        repo = self.repository(repo_name)
        data = manifest.to_json()
        digest = manifest.digest()
        now = self._clock()
        self._manifests[digest] = data
        repo.tags[tag] = digest
        key = tag_key(repo_name, tag)
        self.tag_times[key] = now
        self.tag_tombstones.discard(key)
        self.manifest_times[digest] = now
        self.manifest_tombstones.discard(digest)
        for layer_digest in manifest.layer_digests:
            self.blob_tombstones.discard(layer_digest)
        return digest

    def push_blob(self, data: bytes) -> str:
        digest = self.blobs.put(data)
        self.blob_times[digest] = self._clock()
        self.blob_tombstones.discard(digest)
        return digest

    # -- replication -------------------------------------------------------------

    def copy_into(self, other: "Registry", *, blobs: bool = True) -> dict[str, int]:
        """Copy this registry's full contents into *other* (idempotent).

        Used to stamp out replicas: repositories keep their auth flags and
        pull counts, manifests land verbatim, and blobs transfer without
        re-hashing (they were content-addressed on the way in). Existing
        repositories in *other* are updated in place, so the same call
        doubles as a crude one-way sync. Returns transfer accounting.

        ``blobs=False`` copies metadata only — anti-entropy sync uses it
        so blob transfer can go through its own digest-verified path.

        Deletions are first-class: tombstone knowledge merges into *other*
        before anything copies, and an entity only lands if its last write
        is newer than any deletion marker (ties go to the deletion, so
        copy-back never resurrects what another replica swept). *other*
        must still call :meth:`apply_tombstones` to enforce the merged
        markers against what it already holds.
        """
        other.repo_tombstones.merge(self.repo_tombstones)
        other.tag_tombstones.merge(self.tag_tombstones)
        other.manifest_tombstones.merge(self.manifest_tombstones)
        other.blob_tombstones.merge(self.blob_tombstones)

        repos = manifests = nblobs = 0
        for repo in self._repos.values():
            deleted_at = other.repo_tombstones.time_of(repo.name)
            created_at = self.repo_times.get(repo.name, 0.0)
            if deleted_at is not None and deleted_at >= created_at:
                continue  # the repository was deleted after this copy was made
            if repo.name in other._repos:
                target = other._repos[repo.name]
            else:
                target = other.create_repository(
                    repo.name,
                    pull_count=repo.pull_count,
                    requires_auth=repo.requires_auth,
                )
                # the copy carries the original creation stamp — stamping
                # the copy time would let a stale copy outrank a deletion
                # that happened before the sync ran
                other.repo_times[repo.name] = created_at
                repos += 1
            for tag, digest in repo.tags.items():
                key = tag_key(repo.name, tag)
                set_at = self.tag_times.get(key, 0.0)
                deleted_at = other.tag_tombstones.time_of(key)
                if deleted_at is not None and deleted_at >= set_at:
                    continue  # deletion is newer than this tag write
                if tag in target.tags and other.tag_times.get(key, 0.0) > set_at:
                    continue  # the destination's own write is newer
                target.tags[tag] = digest
        for digest, data in self._manifests.items():
            deleted_at = other.manifest_tombstones.time_of(digest)
            if deleted_at is not None and deleted_at >= self.manifest_times.get(
                digest, 0.0
            ):
                continue
            if digest not in other._manifests:
                other._manifests[digest] = data
                manifests += 1
        if blobs:
            for digest in self.blobs.digests():
                deleted_at = other.blob_tombstones.time_of(digest)
                if deleted_at is not None and deleted_at >= self.blob_times.get(
                    digest, 0.0
                ):
                    continue
                if not other.blobs.has(digest):
                    other.blobs.put_at(digest, self.blobs.get(digest))
                    nblobs += 1
        # write stamps merge last (max per key): the LWW comparisons above
        # needed the destination's *own* times, not the union.
        for src, dst in (
            (self.repo_times, other.repo_times),
            (self.tag_times, other.tag_times),
            (self.manifest_times, other.manifest_times),
            (self.blob_times, other.blob_times),
        ):
            for key, t in src.items():
                if t > dst.get(key, float("-inf")):
                    dst[key] = t
        return {"repositories": repos, "manifests": manifests, "blobs": nblobs}

    def apply_tombstones(self) -> dict[str, int]:
        """Enforce merged deletion markers against local state (LWW).

        Anything whose newest local write is not newer than its deletion
        marker is removed — the "deletion wins over copy-back" half of
        anti-entropy. Returns removal accounting; the blob removals are
        exactly the resurrections a plain union sync would have produced.
        """
        repos_removed = tags_removed = manifests_removed = blobs_removed = 0
        for name in list(self._repos):
            deleted_at = self.repo_tombstones.time_of(name)
            if deleted_at is None or deleted_at < self.repo_times.get(name, 0.0):
                continue
            repo = self._repos.pop(name)
            self.manifest_pulls.pop(name, None)
            self.repo_times.pop(name, None)
            for tag in repo.tags:
                self.tag_times.pop(tag_key(name, tag), None)
            repos_removed += 1
        for repo in self._repos.values():
            for tag in list(repo.tags):
                key = tag_key(repo.name, tag)
                deleted_at = self.tag_tombstones.time_of(key)
                if deleted_at is None or deleted_at < self.tag_times.get(key, 0.0):
                    continue
                del repo.tags[tag]
                self.tag_times.pop(key, None)
                tags_removed += 1
        for digest in list(self._manifests):
            deleted_at = self.manifest_tombstones.time_of(digest)
            if deleted_at is None or deleted_at < self.manifest_times.get(digest, 0.0):
                continue
            del self._manifests[digest]
            manifests_removed += 1
        for digest in list(self.blobs.digests()):
            if self.blob_deleted(digest):
                self.blobs.delete(digest)
                blobs_removed += 1
        return {
            "repositories_removed": repos_removed,
            "tags_removed": tags_removed,
            "manifests_removed": manifests_removed,
            "blobs_removed": blobs_removed,
        }

    def blob_deleted(self, digest: str) -> bool:
        """True when a deletion marker dominates the blob's last push."""
        deleted_at = self.blob_tombstones.time_of(digest)
        return deleted_at is not None and deleted_at >= self.blob_times.get(
            digest, 0.0
        )

    # -- deletion + garbage collection ------------------------------------------

    def delete_tag(self, repo_name: str, tag: str, *, token: str | None = None) -> None:
        """Remove a tag; the manifest/blobs linger until :meth:`collect_garbage`
        (registries separate untagging from space reclamation on purpose —
        concurrent pulls may still hold references). Leaves a tombstone so
        replication propagates the removal instead of undoing it."""
        repo = self.repository(repo_name)
        self._check_auth(repo, token)
        if tag not in repo.tags:
            raise TagNotFoundError(repo_name, tag)
        del repo.tags[tag]
        key = tag_key(repo_name, tag)
        self.tag_tombstones.add(key, self._clock())
        self.tag_times.pop(key, None)

    def delete_repository(self, name: str) -> None:
        """Drop a repository and all its tags (blobs await GC)."""
        repo = self.repository(name)  # raises if missing
        now = self._clock()
        for tag in repo.tags:
            key = tag_key(name, tag)
            self.tag_tombstones.add(key, now)
            self.tag_times.pop(key, None)
        self.repo_tombstones.add(name, now)
        self.repo_times.pop(name, None)
        del self._repos[name]
        self.manifest_pulls.pop(name, None)

    def delete_manifest(
        self, repo_name: str, reference: str, *, token: str | None = None
    ) -> dict[str, int]:
        """The v2 ``DELETE /v2/<name>/manifests/<ref>`` semantics.

        A tag reference deletes just that tag. A digest reference untags
        every tag in the repository pointing at it; the manifest bytes and
        blobs are left for :meth:`collect_garbage` — manifests are stored
        once and may be tagged by other repositories. Returns untag
        accounting."""
        repo = self.repository(repo_name)
        self._check_auth(repo, token)
        if not is_digest(reference):
            self.delete_tag(repo_name, reference)
            return {"untagged": 1}
        if reference not in self._manifests:
            raise ManifestNotFoundError(reference)
        doomed = [tag for tag, digest in repo.tags.items() if digest == reference]
        if not doomed:
            raise ManifestNotFoundError(reference)
        for tag in doomed:
            self.delete_tag(repo_name, tag)
        return {"untagged": len(doomed)}

    def collect_garbage(self) -> dict[str, int]:
        """Mark-and-sweep: drop manifests no tag references, then blobs no
        manifest references. Returns reclamation accounting.

        This is the classic quiet-registry form — no grace window, sweep
        now — implemented on the journaled collector so even the naive
        path leaves tombstones behind for replication. Concurrent-safe GC
        with grace windows and crash-resume lives in
        :class:`repro.registry.gc.GarbageCollector`."""
        from repro.registry.gc import GarbageCollector

        report = GarbageCollector(self, grace_s=0.0, clock=self._clock).collect()
        return {
            "manifests_deleted": report.manifests_deleted,
            "blobs_deleted": report.swept,
            "bytes_freed": report.bytes_reclaimed,
        }

    # -- pull side (the v2 API the downloader speaks) ------------------------------

    def _check_auth(self, repo: Repository, token: str | None) -> None:
        if repo.requires_auth and not token:
            raise AuthRequiredError(repo.name)

    def list_tags(self, repo_name: str, *, token: str | None = None) -> list[str]:
        """All tags in a repository (the v2 ``/tags/list`` endpoint)."""
        repo = self.repository(repo_name)
        self._check_auth(repo, token)
        return sorted(repo.tags)

    def resolve_tag(self, repo_name: str, tag: str, *, token: str | None = None) -> str:
        """Tag → manifest digest (a HEAD on ``/v2/<name>/manifests/<tag>``)."""
        repo = self.repository(repo_name)
        self._check_auth(repo, token)
        try:
            return repo.tags[tag]
        except KeyError:
            raise TagNotFoundError(repo_name, tag) from None

    def get_manifest(
        self, repo_name: str, reference: str, *, token: str | None = None
    ) -> Manifest:
        """Fetch a manifest by tag or digest; counts as a pull."""
        repo = self.repository(repo_name)
        self._check_auth(repo, token)
        digest = reference if is_digest(reference) else None
        if digest is None:
            try:
                digest = repo.tags[reference]
            except KeyError:
                raise TagNotFoundError(repo_name, reference) from None
        try:
            data = self._manifests[digest]
        except KeyError:
            raise ManifestNotFoundError(digest) from None
        self.manifest_pulls[repo_name] = self.manifest_pulls.get(repo_name, 0) + 1
        return Manifest.from_json(data)

    def get_blob(self, digest: str) -> bytes:
        """Fetch a layer/config blob by digest (blobs are not auth-scoped
        here; deduplicated cross-repo blob storage is why)."""
        return self.blobs.get(digest)

    def blob_size(self, digest: str) -> int:
        return self.blobs.size(digest)

    def has_blob(self, digest: str) -> bool:
        return self.blobs.has(digest)

    # -- stats -------------------------------------------------------------------------

    def manifest_count(self) -> int:
        return len(self._manifests)

    def manifest_digests(self) -> list[str]:
        """Digests of every stored manifest (tagged or not)."""
        return sorted(self._manifests)

    def manifest_bytes_or_none(self, digest: str) -> bytes | None:
        """Raw manifest bytes without pull accounting (GC and replication
        introspection — reads that should not perturb ``manifest_pulls``)."""
        return self._manifests.get(digest)

    def remove_manifest(self, digest: str) -> bool:
        """Drop stored manifest bytes by digest; returns whether it was held.

        Low-level (no tombstone, no tag checks) — the garbage collector is
        the caller and handles both."""
        if digest in self._manifests:
            del self._manifests[digest]
            self.manifest_times.pop(digest, None)
            return True
        return False

    def unique_layer_digests(self) -> set[str]:
        """Digests of all layers referenced by any stored manifest."""
        out: set[str] = set()
        for data in self._manifests.values():
            out.update(Manifest.from_json(data).layer_digests)
        return out

    def storage_bytes(self, digests: Iterable[str] | None = None) -> int:
        """Total blob bytes, optionally restricted to the given digests."""
        if digests is None:
            return self.blobs.total_bytes()
        return sum(self.blobs.size(d) for d in digests if self.blobs.has(d))
