"""The registry proper: repositories, tags, manifests, blobs.

The method surface mirrors the Docker Registry HTTP API v2 that the paper's
downloader called directly: resolve a tag to a manifest, fetch the manifest,
fetch each referenced layer blob. Authentication is modeled as a per-
repository flag plus a token check, enough to reproduce the paper's 13 %
auth-failure population.
"""

from __future__ import annotations

from typing import Iterable

from repro.model.manifest import Manifest
from repro.model.repository import Repository
from repro.registry.blobstore import BlobStore, MemoryBlobStore
from repro.registry.errors import (
    AuthRequiredError,
    ManifestNotFoundError,
    RepositoryNotFoundError,
    TagNotFoundError,
)
from repro.util.digest import is_digest


class Registry:
    """An in-process Docker registry."""

    def __init__(self, blobstore: BlobStore | None = None):
        self.blobs: BlobStore = blobstore if blobstore is not None else MemoryBlobStore()
        self._repos: dict[str, Repository] = {}
        self._manifests: dict[str, bytes] = {}
        #: pull accounting: manifest fetches by repository name
        self.manifest_pulls: dict[str, int] = {}

    # -- repository management ------------------------------------------------

    def create_repository(
        self,
        name: str,
        *,
        pull_count: int = 0,
        requires_auth: bool = False,
    ) -> Repository:
        if name in self._repos:
            raise ValueError(f"repository already exists: {name!r}")
        repo = Repository(
            name=name, pull_count=pull_count, requires_auth=requires_auth
        )
        self._repos[name] = repo
        return repo

    def repository(self, name: str) -> Repository:
        try:
            return self._repos[name]
        except KeyError:
            raise RepositoryNotFoundError(name) from None

    def repositories(self) -> list[Repository]:
        return list(self._repos.values())

    def catalog(self) -> list[str]:
        """All repository names (the v2 ``/_catalog`` endpoint)."""
        return sorted(self._repos)

    # -- push side ---------------------------------------------------------------

    def push_manifest(self, repo_name: str, tag: str, manifest: Manifest) -> str:
        """Store a manifest and point ``repo:tag`` at it; returns its digest."""
        repo = self.repository(repo_name)
        data = manifest.to_json()
        digest = manifest.digest()
        self._manifests[digest] = data
        repo.tags[tag] = digest
        return digest

    def push_blob(self, data: bytes) -> str:
        return self.blobs.put(data)

    # -- replication -------------------------------------------------------------

    def copy_into(self, other: "Registry", *, blobs: bool = True) -> dict[str, int]:
        """Copy this registry's full contents into *other* (idempotent).

        Used to stamp out replicas: repositories keep their auth flags and
        pull counts, manifests land verbatim, and blobs transfer without
        re-hashing (they were content-addressed on the way in). Existing
        repositories in *other* are updated in place, so the same call
        doubles as a crude one-way sync. Returns transfer accounting.

        ``blobs=False`` copies metadata only — anti-entropy sync uses it
        so blob transfer can go through its own digest-verified path.
        """
        repos = manifests = nblobs = 0
        for repo in self._repos.values():
            if repo.name in other._repos:
                target = other._repos[repo.name]
            else:
                target = other.create_repository(
                    repo.name,
                    pull_count=repo.pull_count,
                    requires_auth=repo.requires_auth,
                )
                repos += 1
            target.tags.update(repo.tags)
        for digest, data in self._manifests.items():
            if digest not in other._manifests:
                other._manifests[digest] = data
                manifests += 1
        if blobs:
            for digest in self.blobs.digests():
                if not other.blobs.has(digest):
                    other.blobs.put_at(digest, self.blobs.get(digest))
                    nblobs += 1
        return {"repositories": repos, "manifests": manifests, "blobs": nblobs}

    # -- deletion + garbage collection ------------------------------------------

    def delete_tag(self, repo_name: str, tag: str) -> None:
        """Remove a tag; the manifest/blobs linger until :meth:`collect_garbage`
        (registries separate untagging from space reclamation on purpose —
        concurrent pulls may still hold references)."""
        repo = self.repository(repo_name)
        if tag not in repo.tags:
            raise TagNotFoundError(repo_name, tag)
        del repo.tags[tag]

    def delete_repository(self, name: str) -> None:
        """Drop a repository and all its tags (blobs await GC)."""
        self.repository(name)  # raises if missing
        del self._repos[name]
        self.manifest_pulls.pop(name, None)

    def collect_garbage(self) -> dict[str, int]:
        """Mark-and-sweep: drop manifests no tag references, then blobs no
        manifest references. Returns reclamation accounting."""
        live_manifests: set[str] = set()
        for repo in self._repos.values():
            live_manifests.update(repo.tags.values())
        dead_manifests = [d for d in self._manifests if d not in live_manifests]
        for digest in dead_manifests:
            del self._manifests[digest]

        live_blobs = self.unique_layer_digests()
        dead_blobs = [d for d in self.blobs.digests() if d not in live_blobs]
        freed = 0
        for digest in dead_blobs:
            freed += self.blobs.size(digest)
            self.blobs.delete(digest)
        return {
            "manifests_deleted": len(dead_manifests),
            "blobs_deleted": len(dead_blobs),
            "bytes_freed": freed,
        }

    # -- pull side (the v2 API the downloader speaks) ------------------------------

    def _check_auth(self, repo: Repository, token: str | None) -> None:
        if repo.requires_auth and not token:
            raise AuthRequiredError(repo.name)

    def list_tags(self, repo_name: str, *, token: str | None = None) -> list[str]:
        """All tags in a repository (the v2 ``/tags/list`` endpoint)."""
        repo = self.repository(repo_name)
        self._check_auth(repo, token)
        return sorted(repo.tags)

    def resolve_tag(self, repo_name: str, tag: str, *, token: str | None = None) -> str:
        """Tag → manifest digest (a HEAD on ``/v2/<name>/manifests/<tag>``)."""
        repo = self.repository(repo_name)
        self._check_auth(repo, token)
        try:
            return repo.tags[tag]
        except KeyError:
            raise TagNotFoundError(repo_name, tag) from None

    def get_manifest(
        self, repo_name: str, reference: str, *, token: str | None = None
    ) -> Manifest:
        """Fetch a manifest by tag or digest; counts as a pull."""
        repo = self.repository(repo_name)
        self._check_auth(repo, token)
        digest = reference if is_digest(reference) else None
        if digest is None:
            try:
                digest = repo.tags[reference]
            except KeyError:
                raise TagNotFoundError(repo_name, reference) from None
        try:
            data = self._manifests[digest]
        except KeyError:
            raise ManifestNotFoundError(digest) from None
        self.manifest_pulls[repo_name] = self.manifest_pulls.get(repo_name, 0) + 1
        return Manifest.from_json(data)

    def get_blob(self, digest: str) -> bytes:
        """Fetch a layer/config blob by digest (blobs are not auth-scoped
        here; deduplicated cross-repo blob storage is why)."""
        return self.blobs.get(digest)

    def blob_size(self, digest: str) -> int:
        return self.blobs.size(digest)

    def has_blob(self, digest: str) -> bool:
        return self.blobs.has(digest)

    # -- stats -------------------------------------------------------------------------

    def manifest_count(self) -> int:
        return len(self._manifests)

    def unique_layer_digests(self) -> set[str]:
        """Digests of all layers referenced by any stored manifest."""
        out: set[str] = set()
        for data in self._manifests.values():
            out.update(Manifest.from_json(data).layer_digests)
        return out

    def storage_bytes(self, digests: Iterable[str] | None = None) -> int:
        """Total blob bytes, optionally restricted to the given digests."""
        if digests is None:
            return self.blobs.total_bytes()
        return sum(self.blobs.size(d) for d in digests if self.blobs.has(d))
