"""Registry error hierarchy, mirroring the v2 API's error codes."""

from __future__ import annotations


class RegistryError(Exception):
    """Base class for registry failures."""


class RepositoryNotFoundError(RegistryError):
    """NAME_UNKNOWN: the repository does not exist."""

    def __init__(self, name: str):
        super().__init__(f"repository not found: {name!r}")
        self.name = name


class TagNotFoundError(RegistryError):
    """MANIFEST_UNKNOWN: the tag does not exist in the repository."""

    def __init__(self, repo: str, tag: str):
        super().__init__(f"tag {tag!r} not found in repository {repo!r}")
        self.repo = repo
        self.tag = tag


class ManifestNotFoundError(RegistryError):
    """MANIFEST_UNKNOWN: no manifest with that digest."""

    def __init__(self, digest: str):
        super().__init__(f"manifest not found: {digest}")
        self.digest = digest


class BlobNotFoundError(RegistryError):
    """BLOB_UNKNOWN: no blob with that digest."""

    def __init__(self, digest: str):
        super().__init__(f"blob not found: {digest}")
        self.digest = digest


class DigestMismatchError(RegistryError):
    """Stored content does not hash to its advertised digest (corruption)."""

    def __init__(self, expected: str, actual: str):
        super().__init__(f"digest mismatch: expected {expected}, got {actual}")
        self.expected = expected
        self.actual = actual


class AuthRequiredError(RegistryError):
    """UNAUTHORIZED: the repository requires authentication.

    13 % of the paper's failed downloads hit this; the downloader records
    them and moves on.
    """

    def __init__(self, repo: str):
        super().__init__(f"authentication required for repository {repo!r}")
        self.repo = repo
