"""Crash-safe garbage collection: grace-window mark-and-sweep with tombstones.

`Registry.collect_garbage` is a naive single-shot sweep: fine for a quiet
single registry, unsafe under concurrent traffic (a blob uploaded a moment
ago but not yet referenced by a manifest would be reclaimed) and invisible
to the HA layer (anti-entropy sync and peer repair resurrect whatever one
replica deleted). This module makes deletion a durable two-phase operation:

* **mark** — snapshot live manifests (every tag target) and live blobs
  (every layer of a live manifest); everything else becomes a *candidate*,
  stamped with the first time it was observed dead.
* **grace window** — a candidate is swept only once it has been dead for
  ``grace_s`` *and* its last push is older than ``grace_s``. A just-pushed
  blob an upload session finalized seconds ago — not yet referenced by any
  manifest — survives, as do blobs of a manifest a concurrent pull may
  still hold.
* **sweep** — candidates are deleted in sorted digest order with a
  liveness re-check immediately before each delete; every deletion is
  recorded through :class:`~repro.util.journal.JournalFile` *before* the
  next one starts, so a kill mid-sweep resumes idempotently and the
  resumed report is byte-identical to an uninterrupted run (bytes are
  accounted from mark-time sizes, not post-crash store state).
* **tombstones** — each swept digest leaves a TTL'd deletion marker that
  replication merges and honors, so deletion wins over copy-back
  (:meth:`repro.ha.replica.RegistryReplicaSet.sync`).

The collector runs against a single :class:`~repro.registry.registry.Registry`
or a whole replica set via :class:`ClusterGCTarget` (sweeping only the
copies each live replica actually holds — owner-set-aware in the sharded
cluster, which also forgets swept digests from its placement map).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.model.manifest import Manifest
from repro.util.journal import JournalFile

if TYPE_CHECKING:  # pragma: no cover - typing only; registry.py imports us
    from repro.obs.metrics import MetricsRegistry
    from repro.registry.registry import Registry

#: default lifetime of a deletion marker; long enough for every replica to
#: hear about the deletion through anti-entropy, short enough that the
#: marker set does not grow without bound.
DEFAULT_TOMBSTONE_TTL_S = 3600.0


class GCInterrupted(RuntimeError):
    """Raised when a sweep is killed mid-flight (``kill_after``).

    The journal already records every deletion performed, so a fresh
    collector pointed at the same journal resumes exactly where this one
    stopped.
    """

    def __init__(self, deletions: int):
        super().__init__(f"garbage collector killed after {deletions} deletions")
        self.deletions = deletions


class Tombstones:
    """TTL'd deletion markers: key → deletion time, newest marker wins.

    A tombstone outlives the deletion itself so replication can tell
    "deleted on purpose" apart from "missing, please repair". Merging is a
    newest-time-wins union; markers expire after ``ttl_s`` (the classic
    Dynamo trade-off: a replica partitioned longer than the TTL may
    resurrect, which :meth:`expire` makes explicit rather than silent).
    """

    def __init__(self, *, ttl_s: float = DEFAULT_TOMBSTONE_TTL_S):
        self.ttl_s = ttl_s
        self._entries: dict[str, float] = {}

    def add(self, key: str, now: float) -> None:
        prior = self._entries.get(key)
        self._entries[key] = now if prior is None else max(prior, now)

    def discard(self, key: str) -> None:
        """Drop a marker (a fresh push makes the deletion moot)."""
        self._entries.pop(key, None)

    def time_of(self, key: str) -> float | None:
        return self._entries.get(key)

    def contains(self, key: str, now: float | None = None) -> bool:
        t = self._entries.get(key)
        if t is None:
            return False
        return now is None or now - t < self.ttl_s

    def expire(self, now: float) -> int:
        """Drop markers older than the TTL; returns how many went."""
        dead = [k for k, t in self._entries.items() if now - t >= self.ttl_s]
        for key in dead:
            del self._entries[key]
        return len(dead)

    def merge(self, other: "Tombstones") -> int:
        """Newest-time-wins union of *other* into self; returns adds/updates."""
        changed = 0
        for key, t in other._entries.items():
            if t > self._entries.get(key, float("-inf")):
                self._entries[key] = t
                changed += 1
        return changed

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def to_dict(self) -> dict[str, float]:
        return dict(self._entries)

    @classmethod
    def from_dict(
        cls, entries: dict[str, float], *, ttl_s: float = DEFAULT_TOMBSTONE_TTL_S
    ) -> "Tombstones":
        out = cls(ttl_s=ttl_s)
        out._entries.update(entries)
        return out


@dataclass
class GCReport:
    """Accounting for one mark-and-sweep pass.

    :meth:`core` is the crash-stable view: identical for an uninterrupted
    run and a killed-then-resumed run over the same state (`resumed`,
    `interrupted`, and `copies_deleted` — which depends on how many
    replicas happened to be alive — are excluded).
    """

    candidates: int = 0
    swept: int = 0
    bytes_reclaimed: int = 0
    manifests_deleted: int = 0
    protected_young: int = 0
    protected_inflight: int = 0
    live_manifests: int = 0
    live_blobs: int = 0
    tombstones_added: int = 0
    swept_digests: tuple[str, ...] = ()
    deleted_manifest_digests: tuple[str, ...] = ()
    copies_deleted: int = 0
    resumed: bool = False
    interrupted: bool = False

    def core(self) -> dict:
        """Crash-stable fields only, suitable for byte-identity checks."""
        return {
            "bytes_reclaimed": self.bytes_reclaimed,
            "candidates": self.candidates,
            "deleted_manifest_digests": list(self.deleted_manifest_digests),
            "live_blobs": self.live_blobs,
            "live_manifests": self.live_manifests,
            "manifests_deleted": self.manifests_deleted,
            "protected_inflight": self.protected_inflight,
            "protected_young": self.protected_young,
            "swept": self.swept,
            "swept_digests": list(self.swept_digests),
            "tombstones_added": self.tombstones_added,
        }

    def to_dict(self) -> dict:
        out = self.core()
        out["copies_deleted"] = self.copies_deleted
        out["resumed"] = self.resumed
        out["interrupted"] = self.interrupted
        return out


class RegistryGCTarget:
    """Adapts a single :class:`Registry` to the collector's target surface."""

    def __init__(self, registry: "Registry"):
        self._registry = registry

    def registries(self) -> list["Registry"]:
        return [self._registry]

    def forget(self, digest: str) -> None:  # no placement map to maintain
        pass


class ClusterGCTarget:
    """Adapts a replica set: sweeps every copy the live replicas hold.

    ``registries()`` is re-evaluated at each phase, so replicas that die
    between mark and sweep simply drop out (their copies are reconciled by
    the tombstones at the next sync). For :class:`ShardedReplicaSet` the
    sweep also forgets the digest from the placement map, keeping the ring
    accounting honest — the owner-set-aware half of deletion.
    """

    def __init__(self, replica_set):
        self._set = replica_set

    def registries(self) -> list["Registry"]:
        return [r.registry for r in self._set.live_replicas()]

    def forget(self, digest: str) -> None:
        forget = getattr(self._set, "forget_blob", None)
        if forget is not None:
            forget(digest)


class GarbageCollector:
    """Two-phase grace-period mark-and-sweep, journaled for crash-resume.

    Parameters:

    * *target* — a :class:`Registry`, or any object with ``registries()``
      and ``forget(digest)`` (see :class:`ClusterGCTarget`).
    * *grace_s* — candidates must be dead (and un-pushed) at least this
      long before they are swept; ``0`` reproduces the naive semantics.
    * *journal* — a :class:`JournalFile`; progress is persisted before and
      after every deletion so a kill resumes idempotently. Without one,
      state lives on the collector instance (grace windows still work
      across repeated :meth:`collect` calls on the same object).
    * *protected* — callable returning digests pinned by in-flight upload
      sessions; they are never candidates regardless of age.
    """

    def __init__(
        self,
        target,
        *,
        grace_s: float = 0.0,
        clock: Callable[[], float] | None = None,
        journal: JournalFile | None = None,
        metrics: "MetricsRegistry | None" = None,
        protected: Callable[[], Iterable[str]] | None = None,
        tombstone_ttl_s: float | None = None,
    ):
        if hasattr(target, "registries"):
            self._target = target
        else:
            self._target = RegistryGCTarget(target)
        self.grace_s = grace_s
        self._clock = clock or time.time
        self._journal = journal
        self._metrics = metrics
        self._protected = protected
        self._tombstone_ttl_s = tombstone_ttl_s
        self._state: dict | None = None
        self._layers_cache: dict[str, tuple[str, ...]] = {}

    # -- state -----------------------------------------------------------------

    def _fresh_state(self) -> dict:
        return {
            "phase": "idle",
            "first_seen": {},
            "manifest_first_seen": {},
        }

    def _load_state(self) -> dict:
        if self._journal is not None:
            loaded = self._journal.load() if self._journal.exists else None
            if loaded is not None:
                return loaded
        if self._state is not None:
            return self._state
        return self._fresh_state()

    def _save_state(self, state: dict) -> None:
        self._state = state
        if self._journal is not None:
            self._journal.save(state)

    # -- liveness --------------------------------------------------------------

    def _layers_of(self, mdigest: str, regs: list["Registry"]) -> tuple[str, ...]:
        cached = self._layers_cache.get(mdigest)
        if cached is not None:
            return cached
        for reg in regs:
            data = reg.manifest_bytes_or_none(mdigest)
            if data is not None:
                layers = tuple(Manifest.from_json(data).layer_digests)
                self._layers_cache[mdigest] = layers
                return layers
        return ()

    @staticmethod
    def _live_manifest_digests(regs: list["Registry"]) -> set[str]:
        live: set[str] = set()
        for reg in regs:
            for repo in reg.repositories():
                live.update(repo.tags.values())
        return live

    def _live_blob_digests(self, regs: list["Registry"]) -> set[str]:
        live: set[str] = set()
        for mdigest in self._live_manifest_digests(regs):
            live.update(self._layers_of(mdigest, regs))
        return live

    # -- mark ------------------------------------------------------------------

    def _mark(self, state: dict, now: float) -> None:
        regs = self._target.registries()
        live_manifests = self._live_manifest_digests(regs)
        all_manifests: set[str] = set()
        for reg in regs:
            all_manifests.update(reg.manifest_digests())
        dead_manifests = all_manifests - live_manifests
        live_blobs = self._live_blob_digests(regs)

        held: dict[str, tuple[int, float]] = {}
        for reg in regs:
            for digest in reg.blobs.digests():
                size = reg.blobs.size(digest)
                pushed = reg.blob_times.get(digest, 0.0)
                prior = held.get(digest)
                if prior is None:
                    held[digest] = (size, pushed)
                else:
                    held[digest] = (prior[0], max(prior[1], pushed))
        dead_blobs = {d: sp for d, sp in held.items() if d not in live_blobs}

        # first-seen times persist across passes: the grace clock starts
        # when a digest is first observed dead, not at every mark.
        first_seen: dict[str, float] = dict(state.get("first_seen", {}))
        for digest in dead_blobs:
            first_seen.setdefault(digest, now)
        for digest in list(first_seen):
            if digest not in dead_blobs:
                del first_seen[digest]  # revived or already gone
        manifest_first_seen: dict[str, float] = dict(
            state.get("manifest_first_seen", {})
        )
        for digest in dead_manifests:
            manifest_first_seen.setdefault(digest, now)
        for digest in list(manifest_first_seen):
            if digest not in dead_manifests:
                del manifest_first_seen[digest]

        protected = set(self._protected()) if self._protected is not None else set()
        pending: dict[str, tuple[float, int]] = {}
        protected_young = protected_inflight = 0
        for digest, (size, pushed) in dead_blobs.items():
            if digest in protected:
                protected_inflight += 1
                continue
            since = first_seen[digest]
            if now - since < self.grace_s or now - pushed < self.grace_s:
                protected_young += 1
                continue
            pending[digest] = (since, size)
        pending_manifests = sorted(
            d
            for d in dead_manifests
            if now - manifest_first_seen[d] >= self.grace_s
        )

        state.update(
            {
                "phase": "sweep",
                "marked_at": now,
                "first_seen": first_seen,
                "manifest_first_seen": manifest_first_seen,
                "pending": {d: [since, size] for d, (since, size) in pending.items()},
                "pending_manifests": pending_manifests,
                "swept": [],
                "manifests_deleted": [],
                "bytes_reclaimed": 0,
                "tombstones_added": 0,
                "copies_deleted": 0,
                "candidates": len(dead_blobs),
                "protected_young": protected_young,
                "protected_inflight": protected_inflight,
                "live_manifests": len(live_manifests),
                "live_blobs": len(live_blobs),
                "resumed": False,
            }
        )
        self._save_state(state)
        if self._metrics is not None:
            self._metrics.counter(
                "gc_candidates_total", "blobs observed unreferenced at mark"
            ).inc(len(dead_blobs))

    # -- sweep -----------------------------------------------------------------

    def _tombstone_blob(self, regs: list["Registry"], digest: str, now: float) -> None:
        for reg in regs:
            if self._tombstone_ttl_s is not None:
                reg.blob_tombstones.ttl_s = self._tombstone_ttl_s
            reg.blob_tombstones.add(digest, now)

    def _sweep(self, state: dict, now: float, kill_after: int | None) -> None:
        regs = self._target.registries()
        deletions = 0

        deleted_manifests = set(state["manifests_deleted"])
        for mdigest in state["pending_manifests"]:
            if mdigest in deleted_manifests:
                continue
            if mdigest in self._live_manifest_digests(regs):
                continue  # re-tagged since mark: leave it alone
            for reg in regs:
                reg.remove_manifest(mdigest)
                reg.manifest_tombstones.add(mdigest, now)
            state["manifests_deleted"].append(mdigest)
            self._save_state(state)
            if self._metrics is not None:
                self._metrics.counter(
                    "gc_manifests_deleted_total", "untagged manifests reclaimed"
                ).inc()

        swept = set(state["swept"])
        for digest in sorted(state["pending"]):
            if digest in swept:
                continue
            since, size = state["pending"][digest]
            # re-check right before the delete: a manifest pushed after the
            # mark may reference this digest, or the blob itself may have
            # been re-pushed. Never delete a live blob.
            marked_at = state["marked_at"]
            repushed = any(
                reg.blob_times.get(digest, 0.0) > marked_at for reg in regs
            )
            if repushed or digest in self._live_blob_digests(regs):
                continue
            copies = 0
            for reg in regs:
                if reg.blobs.has(digest):
                    reg.blobs.delete(digest)
                    copies += 1
            # copies == 0 is the crash-resume path: the previous run died
            # between the delete and the journal write. Account the blob
            # from its mark-time size either way — that is what makes the
            # resumed report byte-identical to an uninterrupted one.
            self._tombstone_blob(regs, digest, now)
            self._target.forget(digest)
            state["swept"].append(digest)
            state["bytes_reclaimed"] += size
            state["tombstones_added"] += 1
            state["copies_deleted"] += copies
            self._save_state(state)
            deletions += 1
            if self._metrics is not None:
                self._metrics.counter("gc_swept_total", "blobs reclaimed").inc()
                self._metrics.counter(
                    "gc_bytes_reclaimed_total", "blob bytes reclaimed"
                ).inc(size)
                self._metrics.counter(
                    "gc_tombstones_added_total", "deletion markers written"
                ).inc()
            if kill_after is not None and deletions >= kill_after:
                raise GCInterrupted(deletions)

    # -- public API ------------------------------------------------------------

    def collect(
        self, *, now: float | None = None, kill_after: int | None = None
    ) -> GCReport:
        """Mark (unless resuming an interrupted sweep), then sweep.

        With ``kill_after=N`` the sweep raises :class:`GCInterrupted` after
        N deletions — the journal then holds everything needed for a fresh
        collector to finish the pass with identical totals.
        """
        t0 = time.monotonic()
        now = self._clock() if now is None else now
        state = self._load_state()
        resumed = state.get("phase") == "sweep"
        if resumed:
            state["resumed"] = True
        else:
            self._mark(state, now)
        try:
            self._sweep(state, now, kill_after)
        except GCInterrupted:
            self._save_state(state)
            raise
        report = self._report_from(state, resumed=resumed, interrupted=False)
        # the pass is complete: swept digests leave the first-seen history,
        # the pending snapshot is cleared, and the journal returns to idle.
        first_seen = state["first_seen"]
        for digest in state["swept"]:
            first_seen.pop(digest, None)
        for mdigest in state["manifests_deleted"]:
            state["manifest_first_seen"].pop(mdigest, None)
        done = {
            "phase": "idle",
            "first_seen": first_seen,
            "manifest_first_seen": state["manifest_first_seen"],
        }
        self._save_state(done)
        if self._metrics is not None:
            self._metrics.histogram(
                "gc_sweep_seconds", "wall-clock duration of one GC pass"
            ).observe(time.monotonic() - t0)
        return report

    @staticmethod
    def _report_from(state: dict, *, resumed: bool, interrupted: bool) -> GCReport:
        return GCReport(
            candidates=state["candidates"],
            swept=len(state["swept"]),
            bytes_reclaimed=state["bytes_reclaimed"],
            manifests_deleted=len(state["manifests_deleted"]),
            protected_young=state["protected_young"],
            protected_inflight=state["protected_inflight"],
            live_manifests=state["live_manifests"],
            live_blobs=state["live_blobs"],
            tombstones_added=state["tombstones_added"],
            swept_digests=tuple(sorted(state["swept"])),
            deleted_manifest_digests=tuple(sorted(state["manifests_deleted"])),
            copies_deleted=state["copies_deleted"],
            resumed=resumed,
            interrupted=interrupted,
        )


def collect_cluster_garbage(
    replica_set,
    *,
    grace_s: float = 0.0,
    clock: Callable[[], float] | None = None,
    journal: JournalFile | None = None,
    metrics: "MetricsRegistry | None" = None,
    protected: Callable[[], Iterable[str]] | None = None,
    kill_after: int | None = None,
    tombstone_ttl_s: float | None = None,
) -> GCReport:
    """One-shot cluster-wide GC pass over a replica set's live members."""
    collector = GarbageCollector(
        ClusterGCTarget(replica_set),
        grace_s=grace_s,
        clock=clock,
        journal=journal,
        metrics=metrics,
        protected=protected,
        tombstone_ttl_s=tombstone_ttl_s,
    )
    return collector.collect(kill_after=kill_after)
