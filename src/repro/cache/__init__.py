"""Registry cache simulation.

The paper's popularity analysis (Fig. 8) motivates caching popular images;
its stated future work is to "extend our image popularity analysis to cache
performance analysis". This package does that extension:

* :mod:`trace` — synthesize pull-request traces from a dataset's measured
  popularity (with optional temporal locality), at image or layer
  granularity;
* :mod:`policies` — byte-capacity cache policies: FIFO, LRU, LFU, GDSF
  (size-aware), plus the static most-popular oracle;
* :mod:`simulate` — run traces through policies, report request/byte hit
  ratios, sweep capacities.
"""

from repro.cache.policies import (
    CachePolicy,
    FIFOCache,
    GDSFCache,
    LFUCache,
    LRUCache,
    StaticTopCache,
    make_policy,
)
from repro.cache.simulate import CacheSimResult, simulate, sweep
from repro.cache.trace import PullTrace, generate_trace

__all__ = [
    "CachePolicy",
    "CacheSimResult",
    "FIFOCache",
    "GDSFCache",
    "LFUCache",
    "LRUCache",
    "PullTrace",
    "StaticTopCache",
    "generate_trace",
    "make_policy",
    "simulate",
    "sweep",
]
