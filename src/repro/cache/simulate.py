"""Trace-driven cache simulation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.policies import CachePolicy, StaticTopCache, make_policy
from repro.cache.trace import PullTrace


@dataclass(frozen=True)
class CacheSimResult:
    policy: str
    capacity_bytes: int
    n_requests: int
    hits: int
    byte_hits: int
    bytes_requested: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.n_requests if self.n_requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        """Fraction of requested bytes served from cache — what actually
        cuts registry egress."""
        return self.byte_hits / self.bytes_requested if self.bytes_requested else 0.0


def simulate(trace: PullTrace, policy: CachePolicy) -> CacheSimResult:
    """Run a trace through a policy instance."""
    hits = 0
    byte_hits = 0
    bytes_requested = 0
    sizes = trace.object_sizes
    for key in trace.object_ids:
        size = int(sizes[key])
        bytes_requested += size
        if policy.request(int(key), size):
            hits += 1
            byte_hits += size
    return CacheSimResult(
        policy=policy.name,
        capacity_bytes=policy.capacity,
        n_requests=trace.n_requests,
        hits=hits,
        byte_hits=byte_hits,
        bytes_requested=bytes_requested,
    )


def static_top_policy(trace: PullTrace, capacity_bytes: int) -> StaticTopCache:
    """Build the most-popular-first oracle for a trace."""
    counts = np.bincount(trace.object_ids, minlength=trace.n_objects)
    order = np.argsort(counts)[::-1]
    preload = [
        (int(k), int(trace.object_sizes[k])) for k in order if counts[k] > 0
    ]
    return StaticTopCache(capacity_bytes, preload=preload)


def sweep(
    trace: PullTrace,
    policies: list[str],
    capacities: list[int],
    *,
    include_static_top: bool = True,
) -> list[CacheSimResult]:
    """Simulate every (policy, capacity) combination on one trace."""
    results: list[CacheSimResult] = []
    for capacity in capacities:
        for name in policies:
            results.append(simulate(trace, make_policy(name, capacity)))
        if include_static_top:
            results.append(simulate(trace, static_top_policy(trace, capacity)))
    return results
