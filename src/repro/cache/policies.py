"""Byte-capacity cache replacement policies.

All policies share one interface: ``request(key, size) -> bool`` (True on
hit). Objects larger than the capacity are never admitted. Implemented:

* **FIFO** — evict in insertion order;
* **LRU** — evict least-recently-used (OrderedDict, O(1));
* **LFU** — evict least-frequently-used, ties by recency;
* **GDSF** — Greedy-Dual-Size-Frequency (Cherkasova '98): priority
  ``L + frequency / size`` with an inflation clock, the classic web-cache
  policy for heterogeneous object sizes — relevant here because layer sizes
  span six orders of magnitude;
* **StaticTop** — an admission-only oracle preloaded with the globally most
  popular objects; the upper-bound reference the A2 ablation computes
  analytically.
"""

from __future__ import annotations

import abc
import heapq
from collections import OrderedDict


class CachePolicy(abc.ABC):
    """A byte-capacity cache.

    Invariants every policy holds after any request sequence:

    * ``used <= capacity``;
    * ``used == sum(contents().values())``;
    * an object larger than ``capacity`` is never admitted;
    * ``key in policy`` iff ``key in policy.contents()``.

    ``evictions`` counts keys the policy dropped to make room — callers
    holding per-key payloads (the caching proxy) watch it to know when to
    reconcile their side tables without scanning on every request.
    """

    name: str = "base"

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity = int(capacity_bytes)
        self.used = 0
        self.evictions = 0

    @abc.abstractmethod
    def request(self, key: int, size: int) -> bool:
        """Process one request; returns True on hit. Misses are admitted
        (evicting as needed) unless the object exceeds capacity."""

    @abc.abstractmethod
    def __contains__(self, key: int) -> bool:
        ...

    @abc.abstractmethod
    def contents(self) -> dict[int, int]:
        """Currently cached ``key -> size`` (a fresh dict, safe to mutate)."""

    def _check_size(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"negative object size: {size}")


class FIFOCache(CachePolicy):
    name = "fifo"

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._entries: OrderedDict[int, int] = OrderedDict()

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def contents(self) -> dict[int, int]:
        return dict(self._entries)

    def request(self, key: int, size: int) -> bool:
        self._check_size(size)
        if key in self._entries:
            return True
        if size > self.capacity:
            return False
        while self.used + size > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.used -= evicted
            self.evictions += 1
        self._entries[key] = size
        self.used += size
        return False


class LRUCache(CachePolicy):
    name = "lru"

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._entries: OrderedDict[int, int] = OrderedDict()

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def contents(self) -> dict[int, int]:
        return dict(self._entries)

    def request(self, key: int, size: int) -> bool:
        self._check_size(size)
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        if size > self.capacity:
            return False
        while self.used + size > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.used -= evicted
            self.evictions += 1
        self._entries[key] = size
        self.used += size
        return False


class LFUCache(CachePolicy):
    """LFU with recency tie-break, via a lazy heap of (freq, tick, key)."""

    name = "lfu"

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._sizes: dict[int, int] = {}
        self._freq: dict[int, int] = {}
        self._tick = 0
        self._heap: list[tuple[int, int, int]] = []

    def __contains__(self, key: int) -> bool:
        return key in self._sizes

    def contents(self) -> dict[int, int]:
        return dict(self._sizes)

    def _push(self, key: int) -> None:
        self._tick += 1
        heapq.heappush(self._heap, (self._freq[key], self._tick, key))

    def _evict_one(self) -> None:
        while True:
            freq, _, key = heapq.heappop(self._heap)
            # lazy deletion: skip stale entries
            if key in self._sizes and self._freq[key] == freq:
                self.used -= self._sizes.pop(key)
                del self._freq[key]
                self.evictions += 1
                return

    def request(self, key: int, size: int) -> bool:
        self._check_size(size)
        if key in self._sizes:
            self._freq[key] += 1
            self._push(key)
            return True
        if size > self.capacity:
            return False
        while self.used + size > self.capacity:
            self._evict_one()
        self._sizes[key] = size
        self._freq[key] = 1
        self.used += size
        self._push(key)
        return False


class GDSFCache(CachePolicy):
    """Greedy-Dual-Size-Frequency: priority = clock + freq / size."""

    name = "gdsf"

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._sizes: dict[int, int] = {}
        self._freq: dict[int, int] = {}
        self._prio: dict[int, float] = {}
        self._clock = 0.0
        self._tick = 0
        self._heap: list[tuple[float, int, int]] = []

    def __contains__(self, key: int) -> bool:
        return key in self._sizes

    def contents(self) -> dict[int, int]:
        return dict(self._sizes)

    def _priority(self, key: int, size: int) -> float:
        return self._clock + self._freq[key] / max(1, size)

    def _push(self, key: int) -> None:
        self._tick += 1
        heapq.heappush(self._heap, (self._prio[key], self._tick, key))

    def _evict_one(self) -> None:
        while True:
            prio, _, key = heapq.heappop(self._heap)
            if key in self._sizes and self._prio[key] == prio:
                self._clock = max(self._clock, prio)  # inflation
                self.used -= self._sizes.pop(key)
                del self._freq[key]
                del self._prio[key]
                self.evictions += 1
                return

    def request(self, key: int, size: int) -> bool:
        self._check_size(size)
        if key in self._sizes:
            self._freq[key] += 1
            self._prio[key] = self._priority(key, self._sizes[key])
            self._push(key)
            return True
        if size > self.capacity:
            return False
        while self.used + size > self.capacity:
            self._evict_one()
        self._sizes[key] = size
        self._freq[key] = 1
        self._prio[key] = self._priority(key, size)
        self.used += size
        self._push(key)
        return False


class StaticTopCache(CachePolicy):
    """Preloaded with a fixed set of keys; never admits anything else.

    The online equivalent of the A2 ablation's most-popular-first analysis —
    a reference point for the adaptive policies.
    """

    name = "static-top"

    def __init__(self, capacity_bytes: int, preload: list[tuple[int, int]] = ()):
        super().__init__(capacity_bytes)
        self._sizes: dict[int, int] = {}
        for key, size in preload:
            if key not in self._sizes and self.used + size <= self.capacity:
                self._sizes[key] = size
                self.used += size

    def __contains__(self, key: int) -> bool:
        return key in self._sizes

    def contents(self) -> dict[int, int]:
        return dict(self._sizes)

    def request(self, key: int, size: int) -> bool:
        self._check_size(size)
        return key in self._sizes


_POLICIES = {
    "fifo": FIFOCache,
    "lru": LRUCache,
    "lfu": LFUCache,
    "gdsf": GDSFCache,
}


def make_policy(name: str, capacity_bytes: int) -> CachePolicy:
    """Instantiate an adaptive policy by name (fifo/lru/lfu/gdsf)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
    return cls(capacity_bytes)
