"""Pull-trace synthesis from measured popularity.

A trace is a sequence of object requests — image manifests (one per pull)
or layers (a pull requests each of the image's layers the client lacks; we
model the common cold-client case where all layers are requested).

Popularity comes straight from the dataset's pull counts; *temporal
locality* is layered on with a simple re-reference model (with probability
``locality`` the next request repeats one of the last ``window`` distinct
objects), matching the burstiness production registry traces show (Anwar et
al., FAST'18 — the paper's reference [28]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.dataset import HubDataset


@dataclass(frozen=True)
class PullTrace:
    """A request trace over objects with sizes."""

    object_ids: np.ndarray  # int64 [n_requests]
    object_sizes: np.ndarray  # int64 [n_objects], indexed by object id
    granularity: str  # "image" | "layer"

    @property
    def n_requests(self) -> int:
        return int(self.object_ids.size)

    @property
    def n_objects(self) -> int:
        return int(self.object_sizes.size)

    def total_bytes_requested(self) -> int:
        return int(self.object_sizes[self.object_ids].sum())

    def working_set_bytes(self) -> int:
        """Bytes of all distinct objects ever requested."""
        return int(self.object_sizes[np.unique(self.object_ids)].sum())


def _apply_locality(
    rng: np.random.Generator, ids: np.ndarray, locality: float, window: int
) -> np.ndarray:
    """Overwrite a fraction of requests with recent re-references."""
    if locality <= 0:
        return ids
    out = ids.copy()
    rerefs = np.flatnonzero(rng.random(ids.size) < locality)
    for i in rerefs:
        if i == 0:
            continue
        back = int(rng.integers(1, min(window, i) + 1))
        out[i] = out[i - back]
    return out


def generate_trace(
    dataset: HubDataset,
    n_requests: int,
    *,
    granularity: str = "image",
    locality: float = 0.0,
    window: int = 64,
    temper: float = 0.5,
    seed: int = 0,
) -> PullTrace:
    """Sample a pull trace proportional to ``pull_counts ** temper``.

    Lifetime pull totals are so skewed (nginx at 650 M vs a median of 40)
    that raw-proportional sampling degenerates to a handful of repos — a
    lifetime total is not a per-window request rate. ``temper`` < 1 flattens
    the distribution while preserving the popularity *ranking*, matching the
    top-heavy-but-diverse shape of production registry traces (Anwar et
    al., FAST'18). Use ``temper=1.0`` for raw-proportional sampling.

    ``granularity="image"`` requests whole images (sized by CIS);
    ``granularity="layer"`` expands each image pull into its layer requests
    (sized by CLS) — the registry-side view, where layer sharing means hot
    base layers are requested far more often than any single image.
    """
    if n_requests <= 0:
        raise ValueError(f"need a positive request count, got {n_requests}")
    if granularity not in ("image", "layer"):
        raise ValueError(f"unknown granularity {granularity!r}")
    if temper < 0:
        raise ValueError(f"temper must be >= 0, got {temper}")
    pulls = dataset.pull_counts.astype(np.float64)
    if pulls.size == 0 or pulls.sum() <= 0:
        raise ValueError("dataset carries no pull counts")
    rng = np.random.default_rng(seed)
    weights = np.power(pulls, temper, where=pulls > 0, out=np.zeros_like(pulls))
    probs = weights / weights.sum()

    if granularity == "image":
        ids = rng.choice(dataset.n_images, size=n_requests, p=probs)
        ids = _apply_locality(rng, ids.astype(np.int64), locality, window)
        return PullTrace(
            object_ids=ids,
            object_sizes=dataset.image_cls.astype(np.int64),
            granularity="image",
        )

    # layer granularity: draw image pulls, expand to their layer lists
    n_image_pulls = max(1, n_requests // max(1, int(dataset.image_layer_counts.mean())))
    image_ids = rng.choice(dataset.n_images, size=n_image_pulls, p=probs)
    chunks = [
        dataset.image_layer_ids[
            dataset.image_layer_offsets[i] : dataset.image_layer_offsets[i + 1]
        ]
        for i in image_ids
    ]
    ids = np.concatenate(chunks)[:n_requests].astype(np.int64)
    ids = _apply_locality(rng, ids, locality, window)
    return PullTrace(
        object_ids=ids,
        object_sizes=dataset.layer_cls.astype(np.int64),
        granularity="layer",
    )
