"""The chaos harness: a seeded end-to-end run under a named fault plan.

One :func:`run_chaos` call replays the paper's pipeline — materialize a
synthetic hub, crawl it (§III-A), pull every repository (§III-B), then
drive a loadgen workload — with a :class:`~repro.faults.injector.
FaultInjector` between the pull pipeline and the registry, and asserts
the stack's resilience **invariants**:

* no corrupted blob is ever accepted into the destination store (every
  stored payload re-hashes to its digest; mangled transfers land in the
  quarantine log instead);
* every pull completes or is reported (auth / no-latest are accounted
  outcomes; nothing vanishes into ``failed_other``);
* the crawl and pull accounting reconcile (distinct repositories ==
  pulls attempted == sum of outcomes);
* the metrics core agrees with the in-band stats (retries, injected
  fault totals);
* the plan actually bit: at least four distinct fault kinds injected.

Everything runs serially on a virtual clock, so a fixed ``--seed``
produces a byte-identical report — chaos as a regression artifact, not a
dice roll. Journals make the run kill-safe: ``kill_after`` simulates a
crash after N pulls, and re-running with the same journal directory
resumes to the same final report an uninterrupted run produces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.crawler import CrawlCheckpoint, HubCrawler
from repro.downloader import (
    CircuitBreaker,
    Downloader,
    RetryPolicy,
    SimulatedSession,
    download_with_checkpoint,
)
from repro.downloader.downloader import DownloadStats
from repro.faults.injector import FaultInjector
from repro.faults.plans import build_plan
from repro.faults.session import FaultInjectingSession
from repro.loadgen import LoadConfig, LoadGenerator, requests_from_trace
from repro.obs import MetricsRegistry, counter_total
from repro.parallel.pool import ParallelConfig
from repro.registry.search import HubSearchEngine
from repro.util.digest import sha256_bytes
from repro.util.journal import JournalFile


class VirtualClock:
    """A monotonic clock that only moves when someone sleeps on it.

    Sharing one instance between the downloader's backoff sleeps, its
    deadline clock, and the circuit breaker's cooldown clock makes the
    whole retry/breaker dance a deterministic function of the seed —
    open circuits really cool down, but in simulated seconds.
    """

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.t += seconds


@dataclass
class Invariant:
    """One checked resilience property."""

    name: str
    ok: bool
    detail: str

    def to_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass
class ChaosReport:
    """Everything a chaos run measured, JSON-stable for seeded diffing."""

    seed: int
    plan: str
    scale: str
    partial: bool = False
    resumed: bool = False
    crawl: dict = field(default_factory=dict)
    pull: dict = field(default_factory=dict)
    outcomes: dict = field(default_factory=dict)
    faults: dict = field(default_factory=dict)
    quarantined: int = 0
    breaker: dict = field(default_factory=dict)
    virtual_seconds: float = 0.0
    loadgen: dict = field(default_factory=dict)
    invariants: list[Invariant] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "plan": self.plan,
            "scale": self.scale,
            "partial": self.partial,
            "resumed": self.resumed,
            "crawl": self.crawl,
            "pull": self.pull,
            "outcomes": self.outcomes,
            "faults": self.faults,
            "quarantined": self.quarantined,
            "breaker": self.breaker,
            "virtual_seconds": round(self.virtual_seconds, 6),
            "loadgen": self.loadgen,
            "invariants": [inv.to_dict() for inv in self.invariants],
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"chaos run: plan={self.plan} seed={self.seed} scale={self.scale}"
            + (" [partial]" if self.partial else "")
            + (" [resumed]" if self.resumed else ""),
            f"  crawl    {self.crawl.get('distinct_repositories', 0):,} repos, "
            f"{self.crawl.get('duplicates_removed', 0):,} dup rows removed",
            f"  pull     {self.pull.get('succeeded', 0):,}/{self.pull.get('attempted', 0):,} ok, "
            f"{self.pull.get('failed_auth', 0)} auth / "
            f"{self.pull.get('failed_no_latest', 0)} no-latest, "
            f"{self.pull.get('retries', 0)} retries, "
            f"{self.pull.get('rate_limited', 0)} rate-limited, "
            f"{self.quarantined} quarantined",
            "  faults   "
            + (
                ", ".join(f"{kind}={count}" for kind, count in self.faults.items())
                or "(none injected)"
            ),
            f"  breaker  {self.breaker.get('fast_failures', 0)} fast-failures, "
            f"state {self.breaker.get('state', '-')}",
            f"  clock    {self.virtual_seconds:.3f} virtual seconds",
        ]
        if self.loadgen:
            lines.append(
                f"  loadgen  {self.loadgen.get('requests', 0):,} requests, "
                f"{self.loadgen.get('errors', 0)} errors, "
                f"{self.loadgen.get('duration_s', 0.0):.3f} virtual s"
            )
        for inv in self.invariants:
            mark = "ok " if inv.ok else "FAIL"
            lines.append(f"  [{mark}] {inv.name}: {inv.detail}")
        lines.append("verdict: " + ("all invariants hold" if self.ok else "INVARIANT VIOLATED"))
        return "\n".join(lines)


def run_chaos(
    *,
    seed: int = 7,
    plan: str = "smoke",
    scale: str = "tiny",
    requests: int = 400,
    journal_dir: str | Path | None = None,
    kill_after: int | None = None,
    max_retries: int = 8,
) -> ChaosReport:
    """Run the crawl → pull → loadgen pipeline under the named fault plan
    and check the resilience invariants. Deterministic for a fixed seed.

    With *journal_dir*, the crawl and the pull both checkpoint there
    (``crawl.json`` / ``pull.json``); *kill_after* aborts the pull after
    that many newly-processed repositories — rerun with the same journal
    directory to resume. A partial (killed) run skips the loadgen phase
    and the completion invariants.
    """
    from repro.synth import SyntheticHubConfig, generate_dataset, materialize_registry

    config = getattr(SyntheticHubConfig, scale)(seed=seed)
    dataset = generate_dataset(config)
    registry, truth = materialize_registry(
        dataset,
        fail_share=config.fail_share,
        fail_auth_share=config.fail_auth_share,
        seed=seed,
    )
    search = HubSearchEngine(registry, seed=seed)
    report = ChaosReport(seed=seed, plan=plan, scale=scale)

    crawl_journal = pull_journal = None
    if journal_dir is not None:
        journal_dir = Path(journal_dir)
        crawl_journal = CrawlCheckpoint(JournalFile(journal_dir / "crawl.json"))
        pull_journal = JournalFile(journal_dir / "pull.json")
        report.resumed = pull_journal.exists or crawl_journal.journal.exists

    # -- §III-A: crawl (checkpointed when journaled) ---------------------------
    crawl = HubCrawler(search).crawl(checkpoint=crawl_journal)
    report.crawl = crawl.summary()

    # -- §III-B: pull everything through the fault injector --------------------
    clock = VirtualClock()
    metrics = MetricsRegistry()
    injector = FaultInjector(build_plan(plan), seed=seed, metrics=metrics)
    session = FaultInjectingSession(
        SimulatedSession(registry, seed=seed), injector, sleep=clock.sleep
    )
    breaker = CircuitBreaker(
        failure_threshold=5, cooldown_s=0.2, clock=clock.now, metrics=metrics
    )
    downloader = Downloader(
        session,
        parallel=ParallelConfig(mode="serial"),
        max_retries=max_retries,
        retry_policy=RetryPolicy(base_delay_s=0.02, max_delay_s=0.2),
        sleep=clock.sleep,
        seed=seed,
        metrics=metrics,
        breaker=breaker,
        clock=clock.now,
    )
    pull = download_with_checkpoint(
        downloader, crawl.repositories, pull_journal, stop_after=kill_after
    )
    report.partial = not pull.finished
    stats = downloader.stats
    report.pull = stats.summary()
    counts: dict[str, int] = {}
    for outcome in pull.outcomes.values():
        counts[outcome] = counts.get(outcome, 0) + 1
    report.outcomes = {key: counts[key] for key in sorted(counts)}
    report.faults = injector.stats()
    report.quarantined = sum(len(v) for v in downloader.quarantine.values())
    report.breaker = breaker.stats()
    report.virtual_seconds = clock.t

    # -- loadgen under a fresh injector (virtual time, closed loop) ------------
    if not report.partial:
        trace_ops = _loadgen_ops(dataset, truth, requests, seed)
        # own metrics registry: the pull phase's faults_injected_total must
        # keep reconciling against the pull injector's stats alone
        lg_injector = FaultInjector(build_plan(plan), seed=seed + 1)
        lg_session = FaultInjectingSession(
            SimulatedSession(registry, seed=seed), lg_injector
        )
        lg_report = LoadGenerator(lg_session).run(
            trace_ops,
            LoadConfig(workers=4, mode="closed", seed=seed, timing="virtual"),
        )
        report.loadgen = {
            "requests": lg_report.requests,
            "errors": lg_report.errors,
            "bytes_total": lg_report.bytes_total,
            "duration_s": round(lg_report.duration_s, 6),
            "ops": len(trace_ops),
            "faults": lg_injector.stats(),
        }

    report.invariants = _check_invariants(report, downloader, metrics, stats)
    return report


def _loadgen_ops(dataset, truth, requests: int, seed: int):
    from repro.cache import generate_trace

    trace = generate_trace(
        dataset, requests, granularity="image", locality=0.2, seed=seed
    )
    return requests_from_trace(trace, dataset, truth)


def _metric_total(metrics: MetricsRegistry, name: str) -> int:
    return int(counter_total(metrics, name))


def _check_invariants(
    report: ChaosReport,
    downloader: Downloader,
    metrics: MetricsRegistry,
    stats: DownloadStats,
) -> list[Invariant]:
    out: list[Invariant] = []

    bad = [
        digest
        for digest in downloader.dest.digests()
        if sha256_bytes(downloader.dest.get(digest)) != digest
    ]
    out.append(
        Invariant(
            "no_corrupt_blob_accepted",
            not bad,
            f"{downloader.dest.count()} stored blobs verified, "
            f"{report.quarantined} corrupt transfers quarantined"
            + (f"; CORRUPT STORED: {bad[:3]}" if bad else ""),
        )
    )

    accounted = sum(report.outcomes.values())
    out.append(
        Invariant(
            "pull_accounting_reconciles",
            stats.attempted == accounted
            and stats.attempted
            == stats.succeeded + stats.failed_auth + stats.failed_no_latest + stats.failed_other,
            f"attempted={stats.attempted} == outcomes={accounted} == "
            f"ok+auth+no_latest+other="
            f"{stats.succeeded}+{stats.failed_auth}+{stats.failed_no_latest}+{stats.failed_other}",
        )
    )

    if not report.partial:
        distinct = report.crawl.get("distinct_repositories", 0)
        out.append(
            Invariant(
                "every_crawled_repo_pulled",
                stats.attempted == distinct,
                f"crawled {distinct}, pulled {stats.attempted}",
            )
        )
        out.append(
            Invariant(
                "every_pull_completed_or_reported",
                stats.failed_other == 0 and stats.deadline_exceeded == 0,
                f"failed_other={stats.failed_other}, "
                f"deadline_exceeded={stats.deadline_exceeded} "
                f"(auth/no-latest are reported outcomes)",
            )
        )
        ops = report.loadgen.get("ops", 0)
        # the virtual executor records every op (failed ones at overhead
        # cost), so completion means requests == ops, errors a subset
        out.append(
            Invariant(
                "loadgen_accounting_reconciles",
                report.loadgen.get("requests", 0) == ops
                and report.loadgen.get("errors", 0) <= ops,
                f"requests={report.loadgen.get('requests', 0)} == ops={ops}, "
                f"errors={report.loadgen.get('errors', 0)} (reported, not lost)",
            )
        )
        kinds = set(report.faults)
        requests_made = downloader.session.injector.request_count
        # a finished-journal rerun makes no requests; nothing to assert then
        out.append(
            Invariant(
                "fault_plan_bit",
                report.plan == "none" or requests_made == 0 or len(kinds) >= 4,
                f"{len(kinds)} distinct fault kinds injected over "
                f"{requests_made} requests: " + (", ".join(sorted(kinds)) or "none"),
            )
        )

    out.append(
        Invariant(
            "metrics_reconcile",
            _metric_total(metrics, "downloader_corrupt_blobs_total") == report.quarantined
            and _metric_total(metrics, "faults_injected_total")
            == sum(report.faults.values()),
            f"corrupt_blobs metric={_metric_total(metrics, 'downloader_corrupt_blobs_total')} "
            f"== quarantined={report.quarantined}; "
            f"faults metric={_metric_total(metrics, 'faults_injected_total')} "
            f"== injected={sum(report.faults.values())}",
        )
    )
    return out
