"""A session wrapper that injects faults into the client-side pull path.

Wraps anything with the session surface (``resolve_tag`` / ``list_tags`` /
``get_manifest`` / ``get_blob``): :class:`~repro.downloader.session.
SimulatedSession`, :class:`~repro.downloader.proxy.CachingProxySession`,
or :class:`~repro.registry.http.HTTPSession`. Composition order matters
and both orders are useful — faults *under* a caching proxy model a flaky
upstream (the proxy shields clients), faults *over* it model a flaky
last mile (every client request is exposed).

Error faults raise before the upstream is touched (the request never got
through); payload faults mangle bytes that did arrive — which is exactly
what digest verification downstream must catch. Latency faults are
accounted in ``injected_latency_s`` (and optionally really slept via the
``sleep`` hook for wall-clock runs).
"""

from __future__ import annotations

import threading

from repro.faults.injector import FaultInjector, RequestFaults
from repro.model.manifest import Manifest


class FaultInjectingSession:
    """Session middleware: every request consults a :class:`FaultInjector`."""

    def __init__(self, upstream, injector: FaultInjector, *, sleep=None):
        self.upstream = upstream
        self.injector = injector
        self._sleep = sleep
        self._lock = threading.Lock()
        self.injected_latency_s = 0.0

    def _begin(self, op: str, key: str) -> RequestFaults:
        faults = self.injector.plan(op, key)
        if faults.latency_s:
            with self._lock:
                self.injected_latency_s += faults.latency_s
            if self._sleep is not None:
                self._sleep(faults.latency_s)
        if faults.error is not None:
            raise faults.error
        return faults

    # -- the session surface ---------------------------------------------------

    def resolve_tag(self, repo: str, tag: str) -> str:
        self._begin("manifest", f"{repo}:{tag}")
        return self.upstream.resolve_tag(repo, tag)

    def list_tags(self, repo: str) -> list[str]:
        self._begin("tags", repo)
        return self.upstream.list_tags(repo)

    def get_manifest(self, repo: str, reference: str) -> Manifest:
        self._begin("manifest", f"{repo}:{reference}")
        return self.upstream.get_manifest(repo, reference)

    def get_blob(self, digest: str) -> bytes:
        faults = self._begin("blob", digest)
        return faults.apply_payload(self.upstream.get_blob(digest))

    # -- accounting ------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        out = dict(self.upstream.stats()) if hasattr(self.upstream, "stats") else {}
        with self._lock:
            out["injected_latency_s"] = self.injected_latency_s
        for kind, count in self.injector.stats().items():
            out[f"faults_{kind}"] = count
        return out
