"""Named fault plans — repeatable chaos scenarios.

A plan is just a rule list; naming a few canonical ones makes chaos runs a
regression artifact (``repro chaos --seed 7 --plan smoke`` in CI) instead
of a one-off. Rates are tuned so a seeded tiny-scale run exercises every
fault kind yet still completes every pull within the downloader's retry
budget — the point is to prove the stack *absorbs* this weather, not to
prove that unplugging the network breaks things.
"""

from __future__ import annotations

from repro.faults.rules import FaultRule, Schedule

#: plan name -> builder returning a fresh rule list
_PLANS = {}


def _plan(name):
    def register(fn):
        _PLANS[name] = fn
        return fn

    return register


@_plan("none")
def _none() -> list[FaultRule]:
    """No faults — a baseline for diffing reports against."""
    return []


@_plan("smoke")
def _smoke() -> list[FaultRule]:
    """A bit of everything, always on: the paper's everyday crawl weather.

    Sharded-search 5xx, rate limiting with a price, slow requests, dropped
    connections, and blob bodies that arrive short or bit-flipped.
    """
    return [
        FaultRule(kind="server_error", rate=0.06),
        FaultRule(kind="rate_limit", rate=0.04, retry_after_s=0.05),
        FaultRule(kind="flap", rate=0.04),
        FaultRule(kind="latency", rate=0.10, latency_s=0.25),
        FaultRule(kind="truncate", rate=0.05, ops=("blob",)),
        FaultRule(kind="corrupt", rate=0.05, ops=("blob",)),
    ]


@_plan("storm")
def _storm() -> list[FaultRule]:
    """A rough patch: an early 5xx burst, then flapping rate limits, with
    heavier payload corruption throughout."""
    return [
        FaultRule(kind="server_error", rate=0.5, schedule=Schedule.burst(20, 60)),
        FaultRule(kind="server_error", rate=0.04),
        FaultRule(kind="rate_limit", rate=0.25, retry_after_s=0.1,
                  schedule=Schedule.flapping(period=100, on=30)),
        FaultRule(kind="flap", rate=0.06),
        FaultRule(kind="latency", rate=0.15, latency_s=0.5),
        FaultRule(kind="truncate", rate=0.08, ops=("blob",)),
        FaultRule(kind="corrupt", rate=0.08, ops=("blob",)),
    ]


def plan_names() -> list[str]:
    return sorted(_PLANS)


def build_plan(name: str) -> list[FaultRule]:
    """A fresh rule list for the named plan (raises on unknown names)."""
    try:
        return _PLANS[name]()
    except KeyError:
        raise ValueError(f"unknown fault plan {name!r}; known: {', '.join(plan_names())}") from None
