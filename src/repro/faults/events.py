"""Seeded membership/fault event plans for sharded cluster runs.

The replicated cluster exercise hard-codes its victims (kill replica 0,
rot replica 1): with full copies everywhere, who gets hit barely matters.
Sharding changes that — each fault lands on *specific shards*, and a
badly drawn pair of targets (kill one owner, rot the other) can make an
availability invariant unsatisfiable by construction instead of testing
the repair machinery. A :func:`plan_shard_events` draw is:

* **seeded** — targets are a pure function of ``(seed, member names)``,
  so a rerun replays the exact same weather;
* **distinct** — kill, corrupt, flap, and leave each hit a different
  replica, so every fault's blast radius is attributable;
* **shard-aware by construction** — the consumer resolves each target
  replica to the digests it owns (via the placement map) when aiming
  at-rest corruption or asserting repairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import derive_seed

#: event kinds a sharded run schedules, in the order they fire
EVENT_KINDS = ("kill", "corrupt", "flap", "join", "leave")


@dataclass(frozen=True)
class ShardEvent:
    """One scheduled disturbance: *kind* aimed at *target* (join has none)."""

    kind: str
    target: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "target": self.target}


def plan_shard_events(nodes: list[str] | tuple[str, ...], *, seed: int = 0) -> list[ShardEvent]:
    """Draw one event of each kind with pairwise-distinct targets.

    Needs at least 4 nodes (kill, corrupt, flap, and leave must not
    collide). The draw shuffles members by ``derive_seed(seed, "event",
    name)`` and assigns kinds down the shuffled order, so any two runs
    with the same seed and membership pick identical victims.
    """
    if len(nodes) < 4:
        raise ValueError(
            f"a shard event plan needs >= 4 nodes for distinct targets, "
            f"got {len(nodes)}"
        )
    if len(set(nodes)) != len(nodes):
        raise ValueError(f"duplicate node names in {nodes!r}")
    order = sorted(nodes, key=lambda name: derive_seed(seed, "event", name))
    kill, corrupt, flap, leave = order[:4]
    return [
        ShardEvent(kind="kill", target=kill),
        ShardEvent(kind="corrupt", target=corrupt),
        ShardEvent(kind="flap", target=flap),
        ShardEvent(kind="join"),
        ShardEvent(kind="leave", target=leave),
    ]
