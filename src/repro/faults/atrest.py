"""At-rest storage corruption — the fault the scrubber exists for.

The injector in :mod:`repro.faults.injector` mangles bytes *in flight*;
this module mangles bytes *at rest*, inside a blob store, the way a bad
disk or a buggy compaction would: the store still answers, the digest key
still looks right, only the content has silently rotted. Detection is the
job of :class:`~repro.ha.scrub.BlobScrubber` (at rest) and the serving
path's digest verification (at read).

Deterministic: which bit flips is a pure function of ``(seed, digest)``.
"""

from __future__ import annotations

from typing import Iterable

from repro.registry.blobstore import BlobStore
from repro.util.rng import seeded_uniform


def corrupt_at_rest(store: BlobStore, digest: str, *, seed: int = 0) -> bytes:
    """Flip one deterministic bit of *digest*'s payload inside *store*.

    Returns the corrupted bytes now stored. Raises
    :class:`~repro.registry.errors.BlobNotFoundError` when the blob is
    absent and ``ValueError`` for an empty blob (no bit to flip).
    """
    payload = store.get(digest)
    if not payload:
        raise ValueError(f"cannot corrupt empty blob {digest}")
    draw = seeded_uniform(seed, "atrest", digest)
    bit = int(draw * len(payload) * 8) % (len(payload) * 8)
    rotted = bytearray(payload)
    rotted[bit // 8] ^= 1 << (bit % 8)
    data = bytes(rotted)
    store.put_at(digest, data)
    return data


def corrupt_some_at_rest(
    store: BlobStore, *, count: int = 1, seed: int = 0
) -> list[str]:
    """Rot *count* deterministic victims picked across the store's digests
    (sorted order, seeded choice). Returns the corrupted digests."""
    digests = sorted(store.digests())
    if not digests:
        return []
    victims: list[str] = []
    for i in range(min(count, len(digests))):
        draw = seeded_uniform(seed, "atrest_pick", i)
        pick = digests[int(draw * len(digests)) % len(digests)]
        if pick in victims:
            # deterministic linear probe to the next untouched digest
            start = digests.index(pick)
            for j in range(1, len(digests)):
                candidate = digests[(start + j) % len(digests)]
                if candidate not in victims:
                    pick = candidate
                    break
            else:
                break
        corrupt_at_rest(store, pick, seed=seed)
        victims.append(pick)
    return victims


def corrupt_shard_at_rest(
    store: BlobStore,
    owned: Iterable[str],
    *,
    count: int = 1,
    seed: int = 0,
    exclude: Iterable[str] = (),
) -> list[str]:
    """Rot *count* deterministic victims among the *owned* digests present
    in *store* — shard-scoped corruption for a sharded cluster.

    Sharded fault runs must aim rot at blobs a specific replica actually
    *owns* (a stray or a hint hold is transient and repair assertions on it
    race with GC). ``exclude`` drops digests the scenario needs healthy
    elsewhere — e.g. blobs co-owned by a replica the run has already
    killed, where rotting the last live copy would make "readable while
    one owner lives" unsatisfiable by design rather than by bug.

    Returns the corrupted digests (possibly fewer than *count*)."""
    blocked = set(exclude)
    candidates = sorted(
        digest for digest in owned if store.has(digest) and digest not in blocked
    )
    victims: list[str] = []
    for i in range(min(count, len(candidates))):
        pool = [digest for digest in candidates if digest not in victims]
        if not pool:
            break
        draw = seeded_uniform(seed, "shard_atrest_pick", i)
        pick = pool[int(draw * len(pool)) % len(pool)]
        corrupt_at_rest(store, pick, seed=seed)
        victims.append(pick)
    return victims
