"""Fault rules and activation schedules.

A :class:`FaultRule` describes one way a registry stack can misbehave —
the failure modes the paper's 30-day crawl actually hit: transient 5xx,
429 rate limiting, latency spikes, connections dropped mid-flight, and
payloads that arrive truncated or bit-flipped. A rule fires on a request
when (a) its :class:`Schedule` is active at that point in the request
stream and (b) a deterministic per-request uniform draw lands under its
``rate``. Rules carry no state; all sequencing lives in the injector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: fault kinds that surface as an error *instead of* a response
ERROR_KINDS = ("server_error", "rate_limit", "flap")
#: fault kinds that mangle a payload that *does* arrive
PAYLOAD_KINDS = ("truncate", "corrupt")
#: fault kinds that only slow a request down
DELAY_KINDS = ("latency",)
ALL_KINDS = ERROR_KINDS + PAYLOAD_KINDS + DELAY_KINDS


@dataclass(frozen=True)
class Schedule:
    """When in the request stream a rule is live.

    * ``always`` — live for every request;
    * ``burst`` — live for requests ``[start, start + length)``, a one-off
      outage window;
    * ``flapping`` — live for the first ``on`` requests of every ``period``
      requests, a service that keeps going up and down.

    Positions are the injector's global 0-based request index, so a
    schedule describes *when during the run* trouble happens, independent
    of which endpoint gets hit.
    """

    kind: str = "always"
    start: int = 0
    length: int = 0
    period: int = 0
    on: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("always", "burst", "flapping"):
            raise ValueError(f"unknown schedule kind {self.kind!r}")
        if self.kind == "burst" and (self.start < 0 or self.length <= 0):
            raise ValueError("burst needs start >= 0 and length > 0")
        if self.kind == "flapping" and not 0 < self.on <= self.period:
            raise ValueError("flapping needs 0 < on <= period")

    @classmethod
    def always(cls) -> "Schedule":
        return cls()

    @classmethod
    def burst(cls, start: int, length: int) -> "Schedule":
        return cls(kind="burst", start=start, length=length)

    @classmethod
    def flapping(cls, period: int, on: int) -> "Schedule":
        return cls(kind="flapping", period=period, on=on)

    def active(self, index: int) -> bool:
        """Is the schedule live at global request *index*?"""
        if self.kind == "always":
            return True
        if self.kind == "burst":
            return self.start <= index < self.start + self.length
        return index % self.period < self.on


@dataclass(frozen=True)
class FaultRule:
    """One composable fault: what goes wrong, how often, where, and when.

    ``ops`` restricts the rule to request kinds (session ops like
    ``"manifest"``/``"blob"``/``"tags"``, or HTTP endpoint labels like
    ``"search"``); ``("*",)`` matches everything. Kind-specific knobs:
    ``retry_after_s`` (rate_limit), ``latency_s`` (latency — the spike
    peak; actual injected delay is a deterministic draw in
    ``[latency_s/2, latency_s]``).
    """

    kind: str
    rate: float
    ops: tuple[str, ...] = ("*",)
    schedule: Schedule = field(default_factory=Schedule)
    retry_after_s: float = 0.05
    latency_s: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {ALL_KINDS}")
        if not 0 <= self.rate <= 1:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if not self.ops:
            raise ValueError("ops must not be empty")
        if self.retry_after_s < 0 or self.latency_s < 0:
            raise ValueError("durations must be non-negative")

    def applies_to(self, op: str) -> bool:
        return "*" in self.ops or op in self.ops
