"""The fault injector: deterministic, composable, metered.

One :class:`FaultInjector` owns a rule list and decides, per request, what
goes wrong. Determinism has two parts:

* **Rate draws** are a pure function of ``(seed, rule, op, key, k)`` where
  ``k`` counts how many times this exact ``(op, key)`` has been requested.
  Retries of one object see an independent draw each attempt, but the
  sequence for a given object never depends on what other threads did —
  so a concurrent run injects exactly the same faults as a serial one.
* **Schedules** key off a global request counter, which is deterministic
  for serial (or virtual-time) execution; under real thread races the
  window edges can shift by a few requests, which is fine for wall-clock
  chaos and irrelevant for seeded regression runs (those run serially).

Every fired rule bumps ``faults_injected_total{kind=...,op=...}`` in the
injector's :class:`~repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.downloader.session import RateLimitedError, TransientNetworkError
from repro.faults.rules import DELAY_KINDS, ERROR_KINDS, FaultRule
from repro.obs import MetricsRegistry
from repro.util.rng import seeded_uniform


@dataclass
class RequestFaults:
    """Everything the injector decided for one request.

    ``error_kind``/``error`` — a failure to surface instead of a response
    (already counted); ``latency_s`` — extra delay to account or sleep;
    ``mutations`` — ``(rule, draw)`` pairs to run over a returned payload
    via :meth:`apply_payload`.
    """

    error_kind: str | None = None
    error: Exception | None = None
    retry_after_s: float = 0.0
    latency_s: float = 0.0
    mutations: tuple[tuple[FaultRule, float], ...] = ()

    def apply_payload(self, payload: bytes) -> bytes:
        """Run the decided payload faults over *payload*."""
        for rule, draw in self.mutations:
            payload = _mutate(rule.kind, payload, draw)
        return payload


def _mutate(kind: str, payload: bytes, draw: float) -> bytes:
    if not payload:
        return payload
    if kind == "truncate":
        # keep 25-75 % of the body — enough to look plausible, never whole
        return payload[: int(len(payload) * (0.25 + 0.5 * draw))]
    # corrupt: flip one bit, position picked by the draw
    bit = int(draw * len(payload) * 8) % (len(payload) * 8)
    flipped = bytearray(payload)
    flipped[bit // 8] ^= 1 << (bit % 8)
    return bytes(flipped)


class FaultInjector:
    """Plan faults per request, deterministically, with metrics.

    ``plan(op, key)`` is the single entry point: it advances the request
    counter, evaluates every rule, and returns a :class:`RequestFaults`.
    The first error-kind rule that fires wins (matching how a real stack
    surfaces exactly one failure per request); latency and payload rules
    compose freely on top of a surviving response.
    """

    def __init__(
        self,
        rules: list[FaultRule] | tuple[FaultRule, ...],
        *,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ):
        self.rules = tuple(rules)
        self.seed = seed
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._index = 0
        self._key_counts: dict[tuple[str, str], int] = {}
        self._injected: dict[str, int] = {}

    @property
    def request_count(self) -> int:
        with self._lock:
            return self._index

    def stats(self) -> dict[str, int]:
        """Injected fault counts by kind (deterministic key order)."""
        with self._lock:
            return {kind: self._injected[kind] for kind in sorted(self._injected)}

    def kinds_injected(self) -> set[str]:
        with self._lock:
            return set(self._injected)

    def plan(self, op: str, key: str) -> RequestFaults:
        """Decide the faults for one request on *op* (e.g. ``"blob"``)
        addressing *key* (e.g. a digest or ``repo:tag``)."""
        with self._lock:
            index = self._index
            self._index += 1
            k = self._key_counts.get((op, key), 0)
            self._key_counts[(op, key)] = k + 1

        faults = RequestFaults()
        mutations: list[tuple[FaultRule, float]] = []
        for j, rule in enumerate(self.rules):
            if not rule.applies_to(op) or not rule.schedule.active(index):
                continue
            draw = seeded_uniform(self.seed, j, rule.kind, op, key, k)
            if draw >= rule.rate:
                continue
            param = seeded_uniform(self.seed, j, rule.kind, op, key, k, "param")
            if rule.kind in ERROR_KINDS:
                if faults.error is not None:
                    continue  # one failure per request; first rule wins
                faults.error_kind = rule.kind
                faults.error = _make_error(rule, op, key)
                faults.retry_after_s = rule.retry_after_s
            elif rule.kind in DELAY_KINDS:
                faults.latency_s += rule.latency_s * (0.5 + 0.5 * param)
            else:
                mutations.append((rule, param))
            self._count(rule.kind, op)
        faults.mutations = tuple(mutations)
        if faults.latency_s:
            self.metrics.counter(
                "fault_latency_injected_seconds_total", "injected delay"
            ).inc(faults.latency_s)
        return faults

    def _count(self, kind: str, op: str) -> None:
        with self._lock:
            self._injected[kind] = self._injected.get(kind, 0) + 1
        self.metrics.counter(
            "faults_injected_total", "injected faults by kind and op",
            kind=kind, op=op,
        ).inc()


def _make_error(rule: FaultRule, op: str, key: str) -> Exception:
    if rule.kind == "rate_limit":
        return RateLimitedError(
            f"injected 429 for {op} {key}", retry_after_s=rule.retry_after_s
        )
    if rule.kind == "flap":
        return TransientNetworkError(f"injected connection reset for {op} {key}")
    return TransientNetworkError(f"injected 503 for {op} {key}")
