"""repro.faults: seeded, composable fault injection for the registry stack.

The paper's 30-day crawl lived through real weather — sharded-search 5xx,
rate limiting, flapping connections, bodies that arrived short. This
package reproduces that weather on demand so the pipeline's resilience is
a tested property instead of a hope:

* :mod:`~repro.faults.rules` — declarative fault rules and schedules;
* :mod:`~repro.faults.injector` — the deterministic per-request planner;
* :mod:`~repro.faults.session` — middleware over any session surface;
* :mod:`~repro.faults.plans` — named, repeatable chaos scenarios;
* :mod:`~repro.faults.atrest` — silent blob-store corruption (the fault
  :class:`~repro.ha.scrub.BlobScrubber` exists to catch);
* :mod:`~repro.faults.chaos` — the end-to-end harness behind
  ``repro chaos``, with resilience invariants.
"""

from repro.faults.atrest import (
    corrupt_at_rest,
    corrupt_shard_at_rest,
    corrupt_some_at_rest,
)
from repro.faults.chaos import ChaosReport, Invariant, VirtualClock, run_chaos
from repro.faults.events import EVENT_KINDS, ShardEvent, plan_shard_events
from repro.faults.injector import FaultInjector, RequestFaults
from repro.faults.plans import build_plan, plan_names
from repro.faults.session import FaultInjectingSession
from repro.faults.rules import FaultRule, Schedule

__all__ = [
    "ChaosReport",
    "EVENT_KINDS",
    "ShardEvent",
    "corrupt_at_rest",
    "corrupt_shard_at_rest",
    "corrupt_some_at_rest",
    "FaultInjectingSession",
    "FaultInjector",
    "FaultRule",
    "Invariant",
    "RequestFaults",
    "Schedule",
    "VirtualClock",
    "build_plan",
    "plan_names",
    "plan_shard_events",
    "run_chaos",
]
