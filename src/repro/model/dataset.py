"""Columnar (struct-of-arrays) representation of a whole Docker Hub crawl.

The figure computations and deduplication analytics all consume this type.
It is produced two ways:

* directly by :mod:`repro.synth` at large scale, and
* by :class:`repro.analyzer.profiles.ProfileStore` from real extracted
  layers, so the materialized end-to-end path lands in the same structure.

Layout
------
Unique files form a universe indexed ``0..n_files-1``; ``file_sizes`` and
``file_types`` are parallel arrays. A file's index *is* its content digest id
(two occurrences of the same index are byte-identical copies).

Layers are CSR lists of file ids: layer *k* contains
``layer_file_ids[layer_file_offsets[k]:layer_file_offsets[k+1]]``. Only
*unique* layers are stored — exactly what the paper's downloader fetched.

Images are CSR lists of layer ids, ordered base-first, plus one repository
name and pull count per image (the crawl downloads the ``latest`` tag only,
so repository↔image is 1:1 here, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np


def _segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum *values* over CSR segments defined by *offsets* (empty-safe)."""
    csum = np.zeros(values.size + 1, dtype=np.int64)
    np.cumsum(values, out=csum[1:])
    return csum[offsets[1:]] - csum[offsets[:-1]]


@dataclass(frozen=True)
class DatasetTotals:
    """Headline totals, the paper's §III summary table."""

    n_images: int
    n_layers: int
    n_file_occurrences: int
    n_unique_files: int
    uncompressed_bytes: int  # sum of FLS over unique layers
    compressed_bytes: int  # sum of CLS over unique layers
    unique_file_bytes: int  # capacity of the deduplicated file universe

    def as_dict(self) -> dict[str, int]:
        return {
            "images": self.n_images,
            "layers": self.n_layers,
            "file_occurrences": self.n_file_occurrences,
            "unique_files": self.n_unique_files,
            "uncompressed_bytes": self.uncompressed_bytes,
            "compressed_bytes": self.compressed_bytes,
            "unique_file_bytes": self.unique_file_bytes,
        }


@dataclass
class HubDataset:
    """See module docstring for the layout contract."""

    # unique file universe
    file_sizes: np.ndarray  # int64 [n_files]
    file_types: np.ndarray  # int32 [n_files]
    # unique layers (CSR of file ids)
    layer_file_offsets: np.ndarray  # int64 [n_layers + 1]
    layer_file_ids: np.ndarray  # int64 [n_refs]
    layer_cls: np.ndarray  # int64 [n_layers]
    layer_dir_counts: np.ndarray  # int64 [n_layers]
    layer_max_depths: np.ndarray  # int64 [n_layers]
    # images (CSR of layer ids)
    image_layer_offsets: np.ndarray  # int64 [n_images + 1]
    image_layer_ids: np.ndarray  # int64 [sum of layer counts]
    repo_names: list[str] = field(default_factory=list)
    pull_counts: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    # -- shape ----------------------------------------------------------------

    @property
    def n_files(self) -> int:
        return int(self.file_sizes.size)

    @property
    def n_layers(self) -> int:
        return int(self.layer_file_offsets.size - 1)

    @property
    def n_images(self) -> int:
        return int(self.image_layer_offsets.size - 1)

    @property
    def n_file_occurrences(self) -> int:
        return int(self.layer_file_ids.size)

    def validate(self) -> None:
        """Check every structural invariant; raises ValueError on breakage."""
        def _csr(offsets: np.ndarray, ids: np.ndarray, nmax: int, what: str) -> None:
            if offsets.ndim != 1 or offsets.size < 1:
                raise ValueError(f"{what}: offsets must be 1-D and non-empty")
            if offsets[0] != 0 or offsets[-1] != ids.size:
                raise ValueError(
                    f"{what}: offsets must start at 0 and end at {ids.size}, "
                    f"got [{offsets[0]}, {offsets[-1]}]"
                )
            if np.any(np.diff(offsets) < 0):
                raise ValueError(f"{what}: offsets must be non-decreasing")
            if ids.size and (ids.min() < 0 or ids.max() >= nmax):
                raise ValueError(f"{what}: ids out of range [0, {nmax})")

        if self.file_sizes.shape != self.file_types.shape:
            raise ValueError("file_sizes and file_types must be parallel")
        if self.file_sizes.size and self.file_sizes.min() < 0:
            raise ValueError("negative file size in universe")
        _csr(self.layer_file_offsets, self.layer_file_ids, self.n_files, "layers")
        _csr(self.image_layer_offsets, self.image_layer_ids, self.n_layers, "images")
        for name in ("layer_cls", "layer_dir_counts", "layer_max_depths"):
            arr = getattr(self, name)
            if arr.size != self.n_layers:
                raise ValueError(f"{name} has {arr.size} entries for {self.n_layers} layers")
            if arr.size and arr.min() < 0:
                raise ValueError(f"{name} contains negative values")
        if len(self.repo_names) not in (0, self.n_images):
            raise ValueError(
                f"{len(self.repo_names)} repo names for {self.n_images} images"
            )
        if self.pull_counts.size not in (0, self.n_images):
            raise ValueError(
                f"{self.pull_counts.size} pull counts for {self.n_images} images"
            )
        if self.pull_counts.size and self.pull_counts.min() < 0:
            raise ValueError("negative pull count")

    # -- layer metrics -----------------------------------------------------------

    @cached_property
    def layer_file_counts(self) -> np.ndarray:
        """Files per unique layer."""
        return np.diff(self.layer_file_offsets)

    @cached_property
    def occurrence_sizes(self) -> np.ndarray:
        """Size of each file occurrence (gathered from the universe)."""
        return self.file_sizes[self.layer_file_ids]

    @cached_property
    def occurrence_types(self) -> np.ndarray:
        """Type code of each file occurrence (gathered from the universe)."""
        return self.file_types[self.layer_file_ids]

    @cached_property
    def layer_fls(self) -> np.ndarray:
        """FLS per layer: sum of contained file sizes."""
        return _segment_sums(self.occurrence_sizes, self.layer_file_offsets)

    @cached_property
    def compression_ratios(self) -> np.ndarray:
        """FLS-to-CLS ratio per layer (0 where CLS is 0)."""
        cls = self.layer_cls.astype(np.float64)
        out = np.zeros(self.n_layers, dtype=np.float64)
        np.divide(self.layer_fls, cls, out=out, where=cls > 0)
        return out

    @cached_property
    def layer_ref_counts(self) -> np.ndarray:
        """How many images reference each unique layer (Fig. 23)."""
        return np.bincount(self.image_layer_ids, minlength=self.n_layers).astype(
            np.int64
        )

    # -- image metrics ---------------------------------------------------------------

    @cached_property
    def image_layer_counts(self) -> np.ndarray:
        return np.diff(self.image_layer_offsets)

    @cached_property
    def image_cls(self) -> np.ndarray:
        """CIS per image: sum of its layers' compressed sizes."""
        return _segment_sums(self.layer_cls[self.image_layer_ids], self.image_layer_offsets)

    @cached_property
    def image_fls(self) -> np.ndarray:
        """FIS per image: sum of its layers' FLS."""
        return _segment_sums(self.layer_fls[self.image_layer_ids], self.image_layer_offsets)

    @cached_property
    def image_file_counts(self) -> np.ndarray:
        return _segment_sums(
            self.layer_file_counts[self.image_layer_ids], self.image_layer_offsets
        )

    @cached_property
    def image_dir_counts(self) -> np.ndarray:
        """Directories per image.

        At metadata scale this sums per-layer directory counts rather than
        unioning the filesystem trees (the union requires the actual paths);
        the overcount is small because layers of one image rarely share
        directories beyond the handful of top-level ones.
        """
        return _segment_sums(
            self.layer_dir_counts[self.image_layer_ids], self.image_layer_offsets
        )

    # -- dedup primitives ------------------------------------------------------------------

    @cached_property
    def file_repeat_counts(self) -> np.ndarray:
        """Copies per unique file across all unique layers (0 = never used)."""
        return np.bincount(self.layer_file_ids, minlength=self.n_files).astype(np.int64)

    # -- totals ----------------------------------------------------------------------------

    def totals(self) -> DatasetTotals:
        used = self.file_repeat_counts > 0
        return DatasetTotals(
            n_images=self.n_images,
            n_layers=self.n_layers,
            n_file_occurrences=self.n_file_occurrences,
            n_unique_files=int(np.count_nonzero(used)),
            uncompressed_bytes=int(self.layer_fls.sum()),
            compressed_bytes=int(self.layer_cls.sum()),
            unique_file_bytes=int(self.file_sizes[used].sum()),
        )

    # -- subsetting --------------------------------------------------------------------------

    def layer_subset(self, layer_ids: np.ndarray) -> "HubDataset":
        """A dataset containing only the given layers (images dropped).

        Used by the dedup-growth experiment (Fig. 25), which deduplicates
        random layer samples of increasing size. The file universe is kept
        whole — ids stay valid and unused files simply have zero repeats.
        """
        layer_ids = np.asarray(layer_ids, dtype=np.int64)
        if layer_ids.size and (layer_ids.min() < 0 or layer_ids.max() >= self.n_layers):
            raise ValueError("layer ids out of range")
        counts = self.layer_file_counts[layer_ids]
        offsets = np.zeros(layer_ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        # vectorized gather of each selected layer's id run
        total = int(counts.sum())
        if total:
            seg_starts = offsets[:-1]
            within = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, counts)
            take = np.repeat(self.layer_file_offsets[layer_ids], counts) + within
            ids = self.layer_file_ids[take]
        else:
            ids = np.zeros(0, dtype=np.int64)
        return HubDataset(
            file_sizes=self.file_sizes,
            file_types=self.file_types,
            layer_file_offsets=offsets,
            layer_file_ids=ids,
            layer_cls=self.layer_cls[layer_ids],
            layer_dir_counts=self.layer_dir_counts[layer_ids],
            layer_max_depths=self.layer_max_depths[layer_ids],
            image_layer_offsets=np.zeros(1, dtype=np.int64),
            image_layer_ids=np.zeros(0, dtype=np.int64),
            repo_names=[],
            pull_counts=np.zeros(0, dtype=np.int64),
        )
