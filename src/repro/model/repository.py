"""Repositories: named collections of tagged images, with popularity."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Repository:
    """A Docker Hub repository.

    Official repositories are plain names (``nginx``); user repositories are
    namespaced (``user/app``). ``tags`` maps tag names to manifest digests.
    ``requires_auth`` models the 13 % of the failed-download population that
    needed authentication in the paper's crawl.
    """

    name: str
    tags: dict[str, str] = field(default_factory=dict)
    pull_count: int = 0
    requires_auth: bool = False

    def __post_init__(self) -> None:
        if not self.name or self.name.count("/") > 1:
            raise ValueError(f"invalid repository name: {self.name!r}")
        if self.pull_count < 0:
            raise ValueError(f"negative pull count: {self.pull_count}")

    @property
    def is_official(self) -> bool:
        """Official repositories have no ``user/`` namespace prefix."""
        return "/" not in self.name

    @property
    def namespace(self) -> str:
        """The user namespace, or ``library`` for official repositories."""
        return self.name.split("/")[0] if "/" in self.name else "library"

    def has_latest(self) -> bool:
        return "latest" in self.tags

    def latest_manifest_digest(self) -> str:
        try:
            return self.tags["latest"]
        except KeyError:
            raise KeyError(f"repository {self.name!r} has no 'latest' tag") from None
