"""Image manifests (Docker distribution manifest schema v2).

A manifest lists the digests and compressed sizes of the layers an image is
assembled from, plus a config blob describing platform parameters. We keep
the JSON wire format faithful enough that real tooling concepts (digest of
the canonical JSON bytes, media types) carry over.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.util.digest import parse_digest, sha256_bytes

MANIFEST_MEDIA_TYPE = "application/vnd.docker.distribution.manifest.v2+json"
CONFIG_MEDIA_TYPE = "application/vnd.docker.container.image.v1+json"
LAYER_MEDIA_TYPE = "application/vnd.docker.image.rootfs.diff.tar.gzip"


@dataclass(frozen=True)
class ManifestLayerRef:
    """A manifest's pointer to one layer blob."""

    digest: str
    size: int
    media_type: str = LAYER_MEDIA_TYPE

    def __post_init__(self) -> None:
        parse_digest(self.digest)
        if self.size < 0:
            raise ValueError(f"negative layer size: {self.size}")


@dataclass(frozen=True)
class Manifest:
    """Schema-v2 manifest: ordered layer references plus platform config."""

    layers: tuple[ManifestLayerRef, ...]
    config: dict = field(default_factory=dict)
    os: str = "linux"
    architecture: str = "amd64"

    @property
    def layer_digests(self) -> list[str]:
        return [ref.digest for ref in self.layers]

    @property
    def total_layer_size(self) -> int:
        """CIS: sum of compressed layer sizes referenced by the manifest."""
        return sum(ref.size for ref in self.layers)

    def to_json(self) -> bytes:
        """Canonical JSON bytes (sorted keys, no whitespace churn)."""
        doc = {
            "schemaVersion": 2,
            "mediaType": MANIFEST_MEDIA_TYPE,
            "config": {
                "mediaType": CONFIG_MEDIA_TYPE,
                "os": self.os,
                "architecture": self.architecture,
                "config": self.config,
            },
            "layers": [
                {"mediaType": ref.media_type, "size": ref.size, "digest": ref.digest}
                for ref in self.layers
            ],
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()

    def digest(self) -> str:
        """Content digest of the canonical JSON — how registries address
        manifests."""
        return sha256_bytes(self.to_json())

    @classmethod
    def from_json(cls, data: bytes) -> "Manifest":
        doc = json.loads(data)
        if doc.get("schemaVersion") != 2:
            raise ValueError(f"unsupported manifest schema: {doc.get('schemaVersion')}")
        config = doc.get("config", {})
        layers = tuple(
            ManifestLayerRef(
                digest=entry["digest"],
                size=int(entry["size"]),
                media_type=entry.get("mediaType", LAYER_MEDIA_TYPE),
            )
            for entry in doc.get("layers", [])
        )
        return cls(
            layers=layers,
            config=config.get("config", {}),
            os=config.get("os", "linux"),
            architecture=config.get("architecture", "amd64"),
        )
