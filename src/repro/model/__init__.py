"""Data model for the Docker Hub reproduction.

Two representations share one vocabulary:

* **Object model** (:class:`FileEntry`, :class:`Layer`, :class:`Image`,
  :class:`Manifest`, :class:`Repository`) — used wherever real bytes flow:
  the registry substrate, the materializer, the downloader and the tar
  extractor.
* **Columnar model** (:class:`HubDataset`) — NumPy struct-of-arrays over the
  whole population, used by characterization and deduplication analytics at
  scale. The analyzer converts extracted object-model profiles into the same
  columnar form, so every figure computation has a single input type.
"""

from repro.model.file_entry import FileEntry
from repro.model.layer import Layer, dir_count, max_depth, parent_dirs
from repro.model.manifest import (
    CONFIG_MEDIA_TYPE,
    LAYER_MEDIA_TYPE,
    MANIFEST_MEDIA_TYPE,
    Manifest,
    ManifestLayerRef,
)
from repro.model.image import Image
from repro.model.repository import Repository
from repro.model.dataset import DatasetTotals, HubDataset

__all__ = [
    "CONFIG_MEDIA_TYPE",
    "DatasetTotals",
    "FileEntry",
    "HubDataset",
    "Image",
    "LAYER_MEDIA_TYPE",
    "Layer",
    "MANIFEST_MEDIA_TYPE",
    "Manifest",
    "ManifestLayerRef",
    "Repository",
    "dir_count",
    "max_depth",
    "parent_dirs",
]
