"""Images: a named, tagged stack of layers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.layer import Layer
from repro.model.manifest import Manifest


@dataclass
class Image:
    """An image as the analyzer sees it: manifest plus resolved layers.

    ``layers`` are ordered base-first, matching the manifest. Layer objects
    may be shared between Image instances (that is the point of layer
    sharing); metrics that aggregate over an image count each *occurrence*,
    like the paper's per-image file counts do.
    """

    name: str
    manifest: Manifest
    layers: list[Layer] = field(default_factory=list)
    tag: str = "latest"

    def __post_init__(self) -> None:
        if len(self.layers) != len(self.manifest.layers):
            raise ValueError(
                f"image {self.name!r}: {len(self.layers)} layers resolved but "
                f"manifest references {len(self.manifest.layers)}"
            )
        for layer, ref in zip(self.layers, self.manifest.layers):
            if layer.digest != ref.digest:
                raise ValueError(
                    f"image {self.name!r}: layer order mismatch "
                    f"({layer.digest} != {ref.digest})"
                )

    @property
    def layer_count(self) -> int:
        return len(self.layers)

    @property
    def compressed_size(self) -> int:
        """CIS: sum of the compressed sizes of the image's layers."""
        return self.manifest.total_layer_size

    @property
    def files_size(self) -> int:
        """FIS: sum of contained file sizes across all layers."""
        return sum(layer.files_size for layer in self.layers)

    @property
    def file_count(self) -> int:
        return sum(layer.file_count for layer in self.layers)

    @property
    def directory_count(self) -> int:
        """Distinct directories in the unioned filesystem tree."""
        dirs: set[str] = set()
        for layer in self.layers:
            for entry in layer.entries:
                parts = entry.path.split("/")[:-1]
                for i in range(len(parts)):
                    dirs.add("/".join(parts[: i + 1]))
        return len(dirs)
