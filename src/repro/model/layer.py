"""Layers: read-only filesystem deltas identified by content digest."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.file_entry import FileEntry
from repro.util.digest import parse_digest


def parent_dirs(path: str) -> list[str]:
    """All ancestor directories of a layer-relative path, shallowest first.

    >>> parent_dirs("usr/lib/x/libc.so")
    ['usr', 'usr/lib', 'usr/lib/x']
    """
    parts = path.split("/")[:-1]
    return ["/".join(parts[: i + 1]) for i in range(len(parts))]


def dir_count(entries: list[FileEntry]) -> int:
    """Number of distinct directories implied by the entries' paths.

    Counts every ancestor directory once; an empty layer has zero
    directories (the tar root is not counted, matching the paper's minimum
    of a single directory for non-empty layers... the minimum arises because
    any file at depth >= 1 implies at least one directory).
    """
    dirs: set[str] = set()
    for entry in entries:
        dirs.update(parent_dirs(entry.path))
    return len(dirs)


def max_depth(entries: list[FileEntry]) -> int:
    """Maximum directory depth across entries (0 for an empty layer)."""
    return max((e.depth for e in entries), default=0)


@dataclass
class Layer:
    """A layer's logical content plus its on-the-wire identity.

    ``digest`` is the digest of the *compressed tarball* (what manifests
    reference and what the registry stores); ``compressed_size`` its byte
    size (CLS). ``files_size`` (FLS) is the sum of contained file sizes.
    """

    digest: str
    entries: list[FileEntry] = field(default_factory=list)
    compressed_size: int = 0

    def __post_init__(self) -> None:
        parse_digest(self.digest)
        if self.compressed_size < 0:
            raise ValueError(f"negative compressed size: {self.compressed_size}")

    @property
    def file_count(self) -> int:
        return len(self.entries)

    @property
    def files_size(self) -> int:
        """FLS: sum of the sizes of files contained in the layer."""
        return sum(e.size for e in self.entries)

    @property
    def directory_count(self) -> int:
        return dir_count(self.entries)

    @property
    def max_directory_depth(self) -> int:
        return max_depth(self.entries)

    @property
    def compression_ratio(self) -> float:
        """FLS-to-CLS ratio; 0.0 when the compressed size is unknown/zero."""
        if self.compressed_size <= 0:
            return 0.0
        return self.files_size / self.compressed_size

    def is_empty(self) -> bool:
        return not self.entries
