"""Dataset persistence.

A crawl of this size is expensive to recompute (the paper's took 30 days);
analysis artifacts must be storable. ``HubDataset`` round-trips through a
single ``.npz`` (columnar arrays compress well and load zero-copy);
layer/image profiles round-trip through JSONL, one record per line, so
multi-gigabyte profile dumps stream instead of loading wholesale.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.analyzer.profiles import (
    ImageProfile,
    LayerProfile,
    layer_profile_from_json,
    layer_profile_to_json,
)
from repro.model.dataset import HubDataset

#: format marker stored inside every .npz so stale files fail loudly
_FORMAT_VERSION = 1

_ARRAY_FIELDS = [
    "file_sizes",
    "file_types",
    "layer_file_offsets",
    "layer_file_ids",
    "layer_cls",
    "layer_dir_counts",
    "layer_max_depths",
    "image_layer_offsets",
    "image_layer_ids",
    "pull_counts",
]


def save_dataset(dataset: HubDataset, path: str | Path) -> None:
    """Write a dataset to ``path`` (.npz, compressed)."""
    arrays = {name: getattr(dataset, name) for name in _ARRAY_FIELDS}
    arrays["repo_names"] = np.asarray(dataset.repo_names, dtype=object)
    arrays["format_version"] = np.asarray(_FORMAT_VERSION)
    np.savez_compressed(Path(path), **arrays)


def load_dataset(path: str | Path) -> HubDataset:
    """Load a dataset written by :func:`save_dataset`; validates on load."""
    with np.load(Path(path), allow_pickle=True) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format v{version} (expected v{_FORMAT_VERSION})"
            )
        kwargs = {name: archive[name] for name in _ARRAY_FIELDS}
        kwargs["repo_names"] = [str(n) for n in archive["repo_names"]]
    dataset = HubDataset(**kwargs)
    dataset.validate()
    return dataset


# -- profile JSONL -----------------------------------------------------------


# layer profile <-> JSON lives next to the dataclasses themselves
# (repro.analyzer.profiles); the aliases keep this module's vocabulary.
_layer_to_json = layer_profile_to_json
_layer_from_json = layer_profile_from_json


def _image_to_json(profile: ImageProfile) -> dict:
    return {
        "kind": "image",
        "name": profile.name,
        "layers": profile.layer_digests,
        "cis": profile.compressed_size,
        "pulls": profile.pull_count,
    }


def _image_from_json(doc: dict) -> ImageProfile:
    return ImageProfile(
        name=doc["name"],
        layer_digests=list(doc["layers"]),
        compressed_size=doc["cis"],
        pull_count=doc.get("pulls", 0),
    )


def save_profiles_jsonl(
    path: str | Path,
    layers: list[LayerProfile],
    images: list[ImageProfile],
) -> None:
    """Stream layer then image profiles to a JSONL file."""
    with open(Path(path), "w") as handle:
        for layer in layers:
            handle.write(json.dumps(_layer_to_json(layer)) + "\n")
        for image in images:
            handle.write(json.dumps(_image_to_json(image)) + "\n")


def iter_profiles_jsonl(
    path: str | Path,
) -> Iterator[LayerProfile | ImageProfile]:
    """Stream profiles back out of a JSONL file, one record at a time."""
    with open(Path(path)) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            kind = doc.get("kind")
            if kind == "layer":
                yield _layer_from_json(doc)
            elif kind == "image":
                yield _image_from_json(doc)
            else:
                raise ValueError(f"{path}:{line_no}: unknown record kind {kind!r}")


def load_profiles_jsonl(
    path: str | Path,
) -> tuple[list[LayerProfile], list[ImageProfile]]:
    """Load a whole JSONL profile dump into memory."""
    layers: list[LayerProfile] = []
    images: list[ImageProfile] = []
    for record in iter_profiles_jsonl(path):
        if isinstance(record, LayerProfile):
            layers.append(record)
        else:
            images.append(record)
    return layers, images
