"""A single file inside a layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.digest import parse_digest


@dataclass(frozen=True)
class FileEntry:
    """One regular file in a layer's filesystem tree.

    ``path`` is layer-relative, POSIX-style, without a leading slash
    (``usr/lib/libc.so.6``). ``digest`` addresses the file *content* and is
    what file-level deduplication keys on. ``type_code`` indexes the
    :class:`~repro.filetypes.catalog.TypeCatalog`.
    """

    path: str
    size: int
    digest: str
    type_code: int

    def __post_init__(self) -> None:
        if not self.path or self.path.startswith("/"):
            raise ValueError(f"path must be relative and non-empty: {self.path!r}")
        if self.size < 0:
            raise ValueError(f"negative file size: {self.size}")
        parse_digest(self.digest)  # validates format

    @property
    def depth(self) -> int:
        """Directory depth of the file: ``etc/passwd`` has depth 1 (one
        directory above the file), a root-level file depth 0."""
        return self.path.count("/")
