"""Load generation: turn pull traces into live registry request streams.

``repro.cache`` simulates pull traces offline; this package *serves* them.
A :class:`~repro.cache.trace.PullTrace` becomes a concrete stream of
manifest GETs and cold-client layer GETs (:func:`requests_from_trace`),
which :class:`LoadGenerator` drives against any session — simulated,
caching-proxy, or real HTTP — in a closed loop (a fixed worker fleet pulls
requests back-to-back) or an open loop (a seeded Poisson arrival schedule,
where queueing delay counts against latency). The result is a
:class:`LoadReport`: requests/s, byte throughput, per-operation latency
percentiles, error counts, and proxy hit ratios — the serving-side numbers
production registry studies (Anwar et al., FAST'18) report, measured here
on our own registry.

Virtual-time sessions run under a deterministic discrete-event executor, so
the same seed always yields the same report — a stable baseline for perf
work.
"""

from repro.loadgen.engine import LoadConfig, LoadGenerator, LoadReport
from repro.loadgen.workload import PullOp, requests_from_trace

__all__ = [
    "LoadConfig",
    "LoadGenerator",
    "LoadReport",
    "PullOp",
    "requests_from_trace",
]
