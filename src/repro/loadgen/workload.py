"""Convert pull traces into concrete registry request streams.

A trace speaks in dataset object ids; a registry speaks in repository names
and blob digests. The bridge is the materializer's ground truth: image id →
repository name (``dataset.repo_names``) and layer id → blob digest
(``GroundTruth.layer_digest_by_index``).

An image-granularity trace expands each pull the way a **cold client**
would: one manifest GET, then one blob GET per referenced layer — the
registry-side request pattern the paper's §IV-B caching argument is about.
A layer-granularity trace is already the registry-side view and maps one
request to one blob GET.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.trace import PullTrace
from repro.model.dataset import HubDataset
from repro.synth.materialize import GroundTruth


@dataclass(frozen=True)
class PullOp:
    """One registry request: a manifest GET or a blob GET."""

    kind: str  # "manifest" | "blob"
    repo: str = ""
    tag: str = ""
    digest: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("manifest", "blob"):
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.kind == "manifest" and not self.repo:
            raise ValueError("manifest ops need a repo")
        if self.kind == "blob" and not self.digest:
            raise ValueError("blob ops need a digest")


def _repo_name(dataset: HubDataset, image_id: int) -> str:
    if dataset.repo_names:
        return dataset.repo_names[image_id]
    return f"user/img{image_id}"  # the materializer's fallback naming


def requests_from_trace(
    trace: PullTrace,
    dataset: HubDataset,
    truth: GroundTruth,
    *,
    tag: str = "latest",
) -> list[PullOp]:
    """Expand *trace* into the request stream a registry would see.

    ``dataset`` must be the dataset the trace was generated from and
    ``truth`` the ground truth of materializing that same dataset, so ids
    line up with real repositories and blobs.
    """
    ops: list[PullOp] = []
    if trace.granularity == "image":
        for image_id in trace.object_ids:
            i = int(image_id)
            ops.append(PullOp(kind="manifest", repo=_repo_name(dataset, i), tag=tag))
            lo = int(dataset.image_layer_offsets[i])
            hi = int(dataset.image_layer_offsets[i + 1])
            for layer_id in dataset.image_layer_ids[lo:hi]:
                ops.append(
                    PullOp(
                        kind="blob",
                        digest=truth.layer_digest_by_index[int(layer_id)],
                    )
                )
        return ops
    for layer_id in trace.object_ids:
        ops.append(
            PullOp(kind="blob", digest=truth.layer_digest_by_index[int(layer_id)])
        )
    return ops
