"""Closed- and open-loop load execution with virtual or wall-clock timing.

Two executors share one accounting path (the metrics core):

* **virtual** — a deterministic discrete-event simulation. Worker fleets
  are modeled as servers with per-worker clocks; each operation's service
  time comes from the session's :class:`~repro.downloader.session.
  NetworkModel` (proxy hits are priced by a separate, faster hit model).
  Requests still really execute against the registry — real manifests, real
  blobs, real cache admissions — only *time* is simulated, so a fixed seed
  reproduces the report bit-for-bit.
* **wall** — real threads and ``perf_counter`` timing, for sessions with a
  genuine network boundary (:class:`~repro.registry.http.HTTPSession`).

Closed loop: each worker takes the next request as soon as it finishes the
last (throughput-bounded — the paper's crawler behaved this way). Open
loop: requests arrive on a seeded Poisson schedule regardless of worker
state, so queueing delay shows up in latency — the regime where an
underprovisioned registry falls over.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.downloader.proxy import CachingProxySession
from repro.downloader.session import NetworkModel, TransientNetworkError
from repro.loadgen.workload import PullOp
from repro.obs import MetricsRegistry, counter_total
from repro.registry.errors import RegistryError
from repro.util.units import format_size

#: virtual-time cost of serving from the proxy's local cache: ~2 ms
#: overhead, NVMe-ish bandwidth — an order of magnitude inside the upstream.
DEFAULT_HIT_MODEL = NetworkModel(
    request_overhead_s=0.002, bandwidth_bytes_per_s=500e6
)


@dataclass(frozen=True)
class LoadConfig:
    """How to drive the request stream."""

    workers: int = 4
    mode: str = "closed"  # "closed" | "open"
    arrival_rate_rps: float = 200.0  # open loop: mean Poisson arrival rate
    seed: int = 0
    timing: str = "auto"  # "auto" | "virtual" | "wall"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need >= 1 worker, got {self.workers}")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.timing not in ("auto", "virtual", "wall"):
            raise ValueError(f"unknown timing {self.timing!r}")
        if self.mode == "open" and self.arrival_rate_rps <= 0:
            raise ValueError("open loop needs a positive arrival rate")


@dataclass
class LoadReport:
    """What a load run measured. Durations are virtual or wall seconds
    depending on the timing mode that ran."""

    mode: str
    timing: str
    workers: int
    requests: int = 0
    errors: int = 0
    bytes_total: int = 0
    duration_s: float = 0.0
    #: op kind -> {count, sum, mean, min, max, p50, p90, p99}
    latency: dict[str, dict[str, float]] = field(default_factory=dict)
    #: error class name -> count; separates shed traffic (RateLimitedError —
    #: the server said "not now" with a price) from genuine failures
    errors_by_type: dict[str, int] = field(default_factory=dict)
    proxy_hit_ratio: float | None = None

    @property
    def shed(self) -> int:
        """Requests refused with backpressure (429/503 + Retry-After)."""
        return self.errors_by_type.get("RateLimitedError", 0)

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def bytes_per_s(self) -> float:
        return self.bytes_total / self.duration_s if self.duration_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "timing": self.timing,
            "workers": self.workers,
            "requests": self.requests,
            "errors": self.errors,
            "errors_by_type": dict(sorted(self.errors_by_type.items())),
            "bytes_total": self.bytes_total,
            "duration_s": self.duration_s,
            "requests_per_s": self.requests_per_s,
            "bytes_per_s": self.bytes_per_s,
            "latency": self.latency,
            "proxy_hit_ratio": self.proxy_hit_ratio,
        }

    def render(self) -> str:
        """A compact human-readable report."""
        clock = "virtual" if self.timing == "virtual" else "wall"
        lines = [
            f"{self.mode}-loop load, {self.workers} workers, {clock} time:",
            f"  requests   {self.requests:>12,}  ({self.errors} errors)",
            f"  duration   {self.duration_s:>12.3f} s",
            f"  throughput {self.requests_per_s:>12,.1f} req/s, "
            f"{format_size(int(self.bytes_per_s))}/s",
        ]
        for kind in sorted(self.latency):
            q = self.latency[kind]
            lines.append(
                f"  {kind:<9} p50 {q['p50'] * 1e3:8.2f} ms   "
                f"p90 {q['p90'] * 1e3:8.2f} ms   "
                f"p99 {q['p99'] * 1e3:8.2f} ms   "
                f"max {q['max'] * 1e3:8.2f} ms"
            )
        if self.errors_by_type:
            parts = ", ".join(
                f"{kind} x{count}"
                for kind, count in sorted(self.errors_by_type.items())
            )
            lines.append(f"  errors     {parts}")
        if self.proxy_hit_ratio is not None:
            lines.append(f"  proxy hit ratio {self.proxy_hit_ratio:6.1%}")
        return "\n".join(lines)


def _upstream_model(session) -> NetworkModel | None:
    """The virtual cost model behind *session*, unwrapping proxy layers."""
    seen = set()
    while id(session) not in seen:
        seen.add(id(session))
        model = getattr(session, "model", None)
        if isinstance(model, NetworkModel):
            return model
        session = getattr(session, "upstream", session)
    return None


class LoadGenerator:
    """Drive a stream of :class:`PullOp` through a session, measuring as
    it goes. One generator is reusable across runs; each run gets a fresh
    metrics registry unless one was supplied."""

    def __init__(
        self,
        session,
        *,
        metrics: MetricsRegistry | None = None,
        hit_model: NetworkModel = DEFAULT_HIT_MODEL,
    ):
        self.session = session
        self.metrics = metrics
        self.hit_model = hit_model

    # -- public entry ----------------------------------------------------------

    def run(self, ops: list[PullOp], config: LoadConfig | None = None) -> LoadReport:
        """Execute *ops* under *config* and return the measured report."""
        config = config or LoadConfig()
        model = _upstream_model(self.session)
        timing = config.timing
        if timing == "auto":
            timing = "virtual" if model is not None else "wall"
        if timing == "virtual" and model is None:
            raise ValueError(
                "virtual timing needs a session with a NetworkModel "
                "(SimulatedSession or a proxy over one)"
            )
        metrics = self.metrics if self.metrics is not None else MetricsRegistry()
        if timing == "virtual":
            duration = self._run_virtual(ops, config, model, metrics)
        else:
            duration = self._run_wall(ops, config, metrics)
        return self._report(config, timing, duration, metrics)

    # -- virtual executor: deterministic discrete-event simulation -------------

    def _run_virtual(
        self,
        ops: list[PullOp],
        config: LoadConfig,
        model: NetworkModel,
        metrics: MetricsRegistry,
    ) -> float:
        arrivals = self._arrivals(len(ops), config)
        workers = [(0.0, w) for w in range(config.workers)]
        heapq.heapify(workers)
        duration = 0.0
        for i, op in enumerate(ops):
            free_at, w = heapq.heappop(workers)
            start = free_at if arrivals is None else max(free_at, arrivals[i])
            nbytes, service_s = self._execute_virtual(op, model, metrics)
            done = start + service_s
            # closed loop: pure service time; open loop: queueing counts too
            latency = service_s if arrivals is None else done - arrivals[i]
            self._record(metrics, op.kind, nbytes, latency)
            heapq.heappush(workers, (done, w))
            duration = max(duration, done)
        return duration

    def _execute_virtual(
        self, op: PullOp, model: NetworkModel, metrics: MetricsRegistry
    ) -> tuple[int, float]:
        """Really execute *op*; price its service time in virtual seconds."""
        try:
            if op.kind == "manifest":
                manifest = self.session.get_manifest(op.repo, op.tag)
                nbytes = len(manifest.to_json())
                return nbytes, model.cost(nbytes)
            if isinstance(self.session, CachingProxySession):
                blob, outcome = self.session.fetch_blob(op.digest)
                cost_model = model if outcome == "miss" else self.hit_model
                return len(blob), cost_model.cost(len(blob))
            blob = self.session.get_blob(op.digest)
            return len(blob), model.cost(len(blob))
        except (RegistryError, TransientNetworkError) as exc:
            self._record_error(metrics, op.kind, exc)
            return 0, model.request_overhead_s

    # -- wall-clock executor: real threads --------------------------------------

    def _run_wall(
        self, ops: list[PullOp], config: LoadConfig, metrics: MetricsRegistry
    ) -> float:
        arrivals = self._arrivals(len(ops), config)
        next_index = 0
        index_lock = threading.Lock()
        t0 = time.perf_counter()

        def worker() -> None:
            nonlocal next_index
            while True:
                with index_lock:
                    i = next_index
                    if i >= len(ops):
                        return
                    next_index += 1
                op = ops[i]
                if arrivals is not None:
                    delay = t0 + arrivals[i] - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                start = time.perf_counter()
                try:
                    if op.kind == "manifest":
                        manifest = self.session.get_manifest(op.repo, op.tag)
                        nbytes = len(manifest.to_json())
                    else:
                        nbytes = len(self.session.get_blob(op.digest))
                except (RegistryError, TransientNetworkError) as exc:
                    self._record_error(metrics, op.kind, exc)
                    continue
                finish = time.perf_counter()
                # open loop measures from scheduled arrival (queueing counts)
                began = t0 + arrivals[i] if arrivals is not None else start
                self._record(metrics, op.kind, nbytes, finish - min(began, finish))

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(config.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - t0

    # -- shared accounting -------------------------------------------------------

    def _arrivals(self, n: int, config: LoadConfig) -> np.ndarray | None:
        if config.mode != "open":
            return None
        rng = np.random.default_rng(config.seed)
        gaps = rng.exponential(1.0 / config.arrival_rate_rps, size=n)
        return np.cumsum(gaps)

    def _record(
        self, metrics: MetricsRegistry, kind: str, nbytes: int, latency_s: float
    ) -> None:
        metrics.counter("loadgen_requests_total", "completed requests", op=kind).inc()
        metrics.counter("loadgen_bytes_total", "payload bytes served", op=kind).inc(
            nbytes
        )
        metrics.histogram(
            "loadgen_latency_seconds", "request latency", op=kind
        ).observe(latency_s)

    def _record_error(self, metrics: MetricsRegistry, kind: str, exc: Exception) -> None:
        metrics.counter(
            "loadgen_errors_total",
            "failed requests",
            op=kind,
            error=type(exc).__name__,
        ).inc()

    def _report(
        self,
        config: LoadConfig,
        timing: str,
        duration: float,
        metrics: MetricsRegistry,
    ) -> LoadReport:
        dump = metrics.to_dict()
        requests = counter_total(metrics, "loadgen_requests_total")
        errors = counter_total(metrics, "loadgen_errors_total")
        nbytes = counter_total(metrics, "loadgen_bytes_total")
        errors_by_type: dict[str, int] = {}
        for row in dump.get("loadgen_errors_total", {}).get("series", []):
            kind = row["labels"].get("error", "unknown")
            errors_by_type[kind] = errors_by_type.get(kind, 0) + int(row["value"])
        latency = {
            row["labels"]["op"]: {
                k: row[k] for k in ("count", "mean", "min", "max", "p50", "p90", "p99")
            }
            for row in dump.get("loadgen_latency_seconds", {}).get("series", [])
        }
        hit_ratio = None
        if isinstance(self.session, CachingProxySession):
            hit_ratio = self.session.stats.hit_ratio
        return LoadReport(
            mode=config.mode,
            timing=timing,
            workers=config.workers,
            requests=int(requests),
            errors=int(errors),
            bytes_total=int(nbytes),
            duration_s=duration,
            latency=latency,
            errors_by_type=errors_by_type,
            proxy_hit_ratio=hit_ratio,
        )
