"""Compact summary statistics for a numeric population.

Every figure module returns a :class:`SummaryStats` alongside its series so
reports can print the same sentences the paper does ("median 2.6, 90 % below
4, max 1026").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    n: int
    mean: float
    minimum: float
    p10: float
    p25: float
    median: float
    p75: float
    p90: float
    p99: float
    maximum: float
    total: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "min": self.minimum,
            "p10": self.p10,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
            "total": self.total,
        }

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g} median={self.median:.4g} "
            f"p90={self.p90:.4g} max={self.maximum:.4g}"
        )


def summarize(values: np.ndarray) -> SummaryStats:
    """Compute a :class:`SummaryStats` over a 1-D numeric array."""
    arr = np.asarray(values)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty population")
    qs = np.percentile(arr, [10, 25, 50, 75, 90, 99], method="inverted_cdf")
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        p10=float(qs[0]),
        p25=float(qs[1]),
        median=float(qs[2]),
        p75=float(qs[3]),
        p90=float(qs[4]),
        p99=float(qs[5]),
        maximum=float(arr.max()),
        total=float(arr.sum()),
    )
