"""Distribution fitting and goodness-of-fit, for calibration validation.

The synthetic generator claims its marginals match the paper's published
distributions; this module provides the machinery to *check* such claims:

* :func:`ks_distance` — two-sample Kolmogorov–Smirnov statistic between
  empirical CDFs (the natural "are these two shapes alike" metric);
* :func:`fit_lognormal` — MLE for lognormal (mu, sigma) on positive data;
* :func:`fit_powerlaw_tail` — Hill's estimator for the tail index of a
  heavy-tailed sample above a threshold (used to sanity-check the copy-count
  and popularity tails);
* :func:`quantile_relative_errors` — per-quantile measured/target ratios,
  the per-figure comparison EXPERIMENTS.md tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.cdf import EmpiricalCDF


def ks_distance(a: EmpiricalCDF | np.ndarray, b: EmpiricalCDF | np.ndarray) -> float:
    """Two-sample KS statistic: sup_x |F_a(x) - F_b(x)|."""
    cdf_a = a if isinstance(a, EmpiricalCDF) else EmpiricalCDF(np.asarray(a))
    cdf_b = b if isinstance(b, EmpiricalCDF) else EmpiricalCDF(np.asarray(b))
    grid = np.union1d(cdf_a.values, cdf_b.values)
    fa = np.searchsorted(cdf_a.values, grid, side="right") / cdf_a.n
    fb = np.searchsorted(cdf_b.values, grid, side="right") / cdf_b.n
    return float(np.abs(fa - fb).max())


@dataclass(frozen=True)
class LognormalFit:
    mu: float
    sigma: float
    n: int

    @property
    def median(self) -> float:
        return float(np.exp(self.mu))

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2))

    def percentile(self, q: float) -> float:
        from math import erf, sqrt

        # inverse standard normal via binary search on the CDF (no scipy dep)
        target = q / 100.0
        lo, hi = -10.0, 10.0
        for _ in range(80):
            mid = (lo + hi) / 2
            if 0.5 * (1 + erf(mid / sqrt(2))) < target:
                lo = mid
            else:
                hi = mid
        return float(np.exp(self.mu + self.sigma * (lo + hi) / 2))


def fit_lognormal(values: np.ndarray) -> LognormalFit:
    """Maximum-likelihood lognormal fit over strictly positive values."""
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[arr > 0]
    if arr.size < 2:
        raise ValueError("need at least two positive values to fit")
    logs = np.log(arr)
    return LognormalFit(
        mu=float(logs.mean()), sigma=float(logs.std(ddof=1)), n=int(arr.size)
    )


@dataclass(frozen=True)
class PowerLawFit:
    alpha: float  # P(X > x) ~ x^-alpha
    xmin: float
    n_tail: int


def fit_powerlaw_tail(values: np.ndarray, xmin: float) -> PowerLawFit:
    """Hill's estimator for the tail index above *xmin*.

    alpha_hat = n / sum(ln(x_i / xmin)) over the tail sample. For the
    paper's heavy tails (copy counts, pull counts) this is the standard
    quick check that a generated tail has roughly the intended weight.
    """
    if xmin <= 0:
        raise ValueError(f"xmin must be positive, got {xmin}")
    arr = np.asarray(values, dtype=np.float64)
    tail = arr[arr >= xmin]
    if tail.size < 2:
        raise ValueError(f"too few tail observations above {xmin} ({tail.size})")
    logs = np.log(tail / xmin)
    total = float(logs.sum())
    if total <= 0:
        raise ValueError("degenerate tail: all observations equal xmin")
    return PowerLawFit(alpha=tail.size / total, xmin=float(xmin), n_tail=int(tail.size))


def quantile_relative_errors(
    measured: np.ndarray | EmpiricalCDF,
    targets: dict[float, float],
) -> dict[float, float]:
    """measured/target ratio at each target quantile (q -> paper value)."""
    cdf = (
        measured
        if isinstance(measured, EmpiricalCDF)
        else EmpiricalCDF(np.asarray(measured))
    )
    out: dict[float, float] = {}
    for q, target in targets.items():
        if target == 0:
            raise ValueError(f"target at q={q} is zero; ratio undefined")
        out[q] = float(cdf.percentile(q)) / target
    return out
