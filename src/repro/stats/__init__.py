"""Statistics toolkit: empirical CDFs, histograms, samplers, summaries.

Everything in the paper's evaluation is a CDF, a histogram, or a share
breakdown over a large population; this package provides those primitives as
vectorized NumPy operations so the benchmark harness can characterize
millions of records in milliseconds.
"""

from repro.stats.cdf import EmpiricalCDF
from repro.stats.fit import (
    LognormalFit,
    PowerLawFit,
    fit_lognormal,
    fit_powerlaw_tail,
    ks_distance,
    quantile_relative_errors,
)
from repro.stats.histogram import Histogram, linear_bins, log_bins
from repro.stats.samplers import (
    LognormalSpec,
    MixtureSpec,
    ParetoTailSpec,
    bounded_zipf_weights,
    lognormal_from_median_p90,
    sample_lognormal,
    sample_mixture,
    sample_zipf_ranks,
)
from repro.stats.summary import SummaryStats, summarize

__all__ = [
    "EmpiricalCDF",
    "Histogram",
    "LognormalFit",
    "LognormalSpec",
    "PowerLawFit",
    "MixtureSpec",
    "ParetoTailSpec",
    "SummaryStats",
    "bounded_zipf_weights",
    "fit_lognormal",
    "fit_powerlaw_tail",
    "ks_distance",
    "linear_bins",
    "log_bins",
    "lognormal_from_median_p90",
    "quantile_relative_errors",
    "sample_lognormal",
    "sample_mixture",
    "sample_zipf_ranks",
    "summarize",
]
