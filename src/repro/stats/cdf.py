"""Empirical cumulative distribution functions.

The paper presents nearly every result as a CDF ("90% of layers are smaller
than 63 MB"). :class:`EmpiricalCDF` stores the sorted sample once and answers
both directions of that sentence — ``fraction_below(63 MB)`` and
``percentile(90)`` — with a binary search.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class EmpiricalCDF:
    """Empirical CDF over a numeric sample.

    Values may repeat; the CDF is right-continuous: ``fraction_at_most(x)`` is
    ``P[X <= x]`` under the empirical measure.
    """

    def __init__(self, values: Iterable[float] | np.ndarray):
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if arr.size == 0:
            raise ValueError("EmpiricalCDF requires at least one value")
        if arr.ndim != 1:
            raise ValueError(f"expected 1-D sample, got shape {arr.shape}")
        if not np.all(np.isfinite(arr.astype(np.float64))):
            raise ValueError("sample contains non-finite values")
        self._sorted = np.sort(arr)

    # -- basic properties ---------------------------------------------------

    @property
    def n(self) -> int:
        """Sample size."""
        return int(self._sorted.size)

    @property
    def min(self) -> float:
        return float(self._sorted[0])

    @property
    def max(self) -> float:
        return float(self._sorted[-1])

    @property
    def values(self) -> np.ndarray:
        """The sorted sample (read-only view)."""
        view = self._sorted.view()
        view.flags.writeable = False
        return view

    # -- queries --------------------------------------------------------------

    def fraction_at_most(self, x: float) -> float:
        """``P[X <= x]``."""
        return float(np.searchsorted(self._sorted, x, side="right")) / self.n

    def fraction_below(self, x: float) -> float:
        """``P[X < x]``."""
        return float(np.searchsorted(self._sorted, x, side="left")) / self.n

    def percentile(self, q: float | Sequence[float]) -> float | np.ndarray:
        """Inverse CDF; *q* in [0, 100]. Uses the 'inverted_cdf' method: the
        smallest observed value x with ``F(x) >= q/100`` — exactly how one
        reads a plotted empirical CDF."""
        result = np.percentile(self._sorted, q, method="inverted_cdf")
        if np.ndim(result) == 0:
            return float(result)
        return result

    def median(self) -> float:
        return float(self.percentile(50))

    def quantile_table(self, qs: Sequence[float] = (10, 25, 50, 75, 90, 99)) -> dict[float, float]:
        """Convenience table of percentiles keyed by q."""
        vals = np.percentile(self._sorted, qs, method="inverted_cdf")
        return {float(q): float(v) for q, v in zip(qs, vals)}

    def steps(self, max_points: int = 2048) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x, F(x))`` arrays suitable for plotting the CDF curve.

        Large samples are thinned to at most *max_points* evenly spaced
        order statistics; endpoints are always included.
        """
        n = self.n
        if n <= max_points:
            idx = np.arange(n)
        else:
            idx = np.unique(np.linspace(0, n - 1, max_points).astype(np.int64))
        x = self._sorted[idx]
        frac = (idx + 1) / n
        return x, frac

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EmpiricalCDF(n={self.n}, min={self.min:g}, "
            f"median={self.median():g}, max={self.max:g})"
        )
