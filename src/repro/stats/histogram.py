"""Binned histograms with the linear and logarithmic binnings the paper uses.

Figure 3(b) and friends are frequency histograms over ranges like 0–128 MB;
popularity histograms (Fig. 8(b)) need log-spaced bins because pull counts
span nine orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def linear_bins(low: float, high: float, width: float) -> np.ndarray:
    """Bin edges ``[low, low+width, ...]`` covering ``[low, high]``."""
    if width <= 0:
        raise ValueError(f"bin width must be positive, got {width}")
    if high <= low:
        raise ValueError(f"need high > low, got [{low}, {high}]")
    nbins = int(np.ceil((high - low) / width))
    return low + width * np.arange(nbins + 1)


def log_bins(low: float, high: float, per_decade: int = 10) -> np.ndarray:
    """Logarithmically spaced bin edges from *low* to *high* (both > 0)."""
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got [{low}, {high}]")
    ndecades = np.log10(high / low)
    nbins = max(1, int(np.ceil(ndecades * per_decade)))
    return low * np.logspace(0, ndecades, nbins + 1, base=10.0)


@dataclass(frozen=True)
class Histogram:
    """Counts per bin plus under/overflow tallies.

    ``edges`` has ``len(counts) + 1`` entries; bin *i* covers
    ``[edges[i], edges[i+1])`` except the last bin which is closed on the
    right, matching :func:`numpy.histogram`.
    """

    edges: np.ndarray
    counts: np.ndarray
    underflow: int
    overflow: int

    @classmethod
    def empty(cls, edges: np.ndarray) -> "Histogram":
        """The merge identity: zero counts over *edges*."""
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("edges must be a 1-D array of at least two values")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        return cls(
            edges=edges,
            counts=np.zeros(edges.size - 1, dtype=np.int64),
            underflow=0,
            overflow=0,
        )

    @classmethod
    def from_values(cls, values: np.ndarray, edges: np.ndarray) -> "Histogram":
        values = np.asarray(values)
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("edges must be a 1-D array of at least two values")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        inside = values[(values >= edges[0]) & (values <= edges[-1])]
        counts, _ = np.histogram(inside, bins=edges)
        return cls(
            edges=edges,
            counts=counts.astype(np.int64),
            underflow=int(np.count_nonzero(values < edges[0])),
            overflow=int(np.count_nonzero(values > edges[-1])),
        )

    @property
    def total(self) -> int:
        """All values seen, including under/overflow."""
        return int(self.counts.sum()) + self.underflow + self.overflow

    def merge(self, other: "Histogram") -> "Histogram":
        """Exact bucket-wise sum of two histograms over the same binning.

        Mergeability is what makes the binned histogram a valid *partial
        aggregate*: chunked/streaming analyses histogram each chunk
        independently and fold the pieces, and because both operands count
        the same closed-form buckets the fold is exact — ``a.merge(b)``
        equals ``from_values(concat(a_values, b_values), edges)`` for any
        split of the sample. Raises ``ValueError`` when the bases differ
        (different edge arrays would silently misbin, so that is an error,
        not a best-effort rebin).
        """
        if self.edges.shape != other.edges.shape or not np.array_equal(
            self.edges, other.edges
        ):
            raise ValueError(
                "cannot merge histograms with mismatched bases: "
                f"{self.edges.size - 1} bins on [{self.edges[0]}, {self.edges[-1]}] "
                f"vs {other.edges.size - 1} bins on "
                f"[{other.edges[0]}, {other.edges[-1]}]"
            )
        return Histogram(
            edges=self.edges,
            counts=self.counts + other.counts,
            underflow=self.underflow + other.underflow,
            overflow=self.overflow + other.overflow,
        )

    def as_dict(self) -> dict:
        """A JSON-able rendering (edges as floats, counts as ints)."""
        return {
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    def mode_bin(self) -> tuple[float, float, int]:
        """Return ``(lo, hi, count)`` for the fullest bin."""
        i = int(np.argmax(self.counts))
        return float(self.edges[i]), float(self.edges[i + 1]), int(self.counts[i])

    def bin_centers(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    def as_rows(self) -> list[tuple[float, float, int]]:
        """``(lo, hi, count)`` rows, for report rendering."""
        return [
            (float(self.edges[i]), float(self.edges[i + 1]), int(c))
            for i, c in enumerate(self.counts)
        ]
