"""Distribution samplers used by the synthetic-hub generator.

Calibration is the point: each sampler can be constructed from the kind of
facts the paper publishes (a median and a 90th percentile, a mode, a share),
rather than raw distribution parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: z-score of the 90th percentile of the standard normal; used to fit a
#: lognormal from (median, p90) pairs.
_Z90 = 1.2815515655446004


def lognormal_from_median_p90(median: float, p90: float) -> tuple[float, float]:
    """Fit lognormal ``(mu, sigma)`` so the distribution has the given
    median and 90th percentile.

    For a lognormal, ``median = exp(mu)`` and ``p90 = exp(mu + z90 * sigma)``.
    """
    if median <= 0 or p90 <= median:
        raise ValueError(f"need 0 < median < p90, got median={median}, p90={p90}")
    mu = math.log(median)
    sigma = (math.log(p90) - mu) / _Z90
    return mu, sigma


@dataclass(frozen=True)
class LognormalSpec:
    """A lognormal described by its median and p90, with optional clamping."""

    median: float
    p90: float
    low: float = 0.0
    high: float = math.inf

    def params(self) -> tuple[float, float]:
        return lognormal_from_median_p90(self.median, self.p90)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        mu, sigma = self.params()
        out = rng.lognormal(mean=mu, sigma=sigma, size=n)
        return np.clip(out, self.low, self.high)


@dataclass(frozen=True)
class ParetoTailSpec:
    """A Pareto (power-law) tail starting at ``xmin`` with shape ``alpha``."""

    xmin: float
    alpha: float
    high: float = math.inf

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.xmin <= 0 or self.alpha <= 0:
            raise ValueError("ParetoTailSpec requires xmin > 0 and alpha > 0")
        out = self.xmin * (1.0 + rng.pareto(self.alpha, size=n))
        return np.minimum(out, self.high)


@dataclass(frozen=True)
class MixtureSpec:
    """A finite mixture of point masses and continuous components.

    ``atoms`` are ``(value, weight)`` point masses (e.g. the paper's 7 % of
    layers with zero files and 27 % with exactly one); ``components`` are
    ``(spec, weight)`` pairs of continuous samplers. Weights need not sum to
    one — they are normalized.
    """

    atoms: Sequence[tuple[float, float]] = field(default_factory=tuple)
    components: Sequence[tuple[LognormalSpec | ParetoTailSpec, float]] = field(
        default_factory=tuple
    )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        weights = np.array(
            [w for _, w in self.atoms] + [w for _, w in self.components], dtype=np.float64
        )
        if weights.size == 0:
            raise ValueError("MixtureSpec has no components")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("mixture weights must be non-negative and not all zero")
        probs = weights / weights.sum()
        choice = rng.choice(weights.size, size=n, p=probs)
        out = np.empty(n, dtype=np.float64)
        natoms = len(self.atoms)
        for i, (value, _) in enumerate(self.atoms):
            out[choice == i] = value
        for j, (spec, _) in enumerate(self.components):
            mask = choice == natoms + j
            k = int(np.count_nonzero(mask))
            if k:
                out[mask] = spec.sample(rng, k)
        return out


def bounded_zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Normalized Zipf weights ``w_r ∝ r^-alpha`` for ranks ``1..n``.

    Used to give unique files / base layer stacks a popularity ordering: a
    small head accounts for most occurrences, producing the heavy-tailed copy
    counts of Fig. 24 and the reference counts of Fig. 23.
    """
    if n <= 0:
        raise ValueError(f"need n > 0, got {n}")
    if alpha < 0:
        raise ValueError(f"need alpha >= 0, got {alpha}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def sample_zipf_ranks(
    rng: np.random.Generator, n_draws: int, n_ranks: int, alpha: float
) -> np.ndarray:
    """Draw *n_draws* ranks in ``[0, n_ranks)`` with Zipf(alpha) probabilities.

    Implemented via inverse-CDF lookup on the cumulative weight table, which
    is O(n_ranks + n_draws log n_ranks) and vectorized — fine up to tens of
    millions of draws.
    """
    weights = bounded_zipf_weights(n_ranks, alpha)
    cdf = np.cumsum(weights)
    cdf[-1] = 1.0  # guard against float round-off excluding the last rank
    u = rng.random(n_draws)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


def sample_lognormal(
    rng: np.random.Generator,
    n: int,
    *,
    median: float,
    p90: float,
    low: float = 0.0,
    high: float = math.inf,
) -> np.ndarray:
    """One-shot helper equivalent to ``LognormalSpec(median, p90, low, high)``."""
    return LognormalSpec(median=median, p90=p90, low=low, high=high).sample(rng, n)


def sample_mixture(
    rng: np.random.Generator,
    n: int,
    *,
    atoms: Sequence[tuple[float, float]] = (),
    components: Sequence[tuple[LognormalSpec | ParetoTailSpec, float]] = (),
) -> np.ndarray:
    """One-shot helper equivalent to ``MixtureSpec(atoms, components)``."""
    return MixtureSpec(atoms=atoms, components=components).sample(rng, n)
