"""Deduplication analytics (§V).

Everything operates on the columnar :class:`~repro.model.dataset.HubDataset`:

* :mod:`engine` — file-level dedup ratios and repeat counts (Fig. 24);
* :mod:`layer_sharing` — reference counts and the no-sharing blowup (Fig. 23);
* :mod:`growth` — dedup ratio vs dataset size (Fig. 25);
* :mod:`cross` — cross-layer / cross-image duplicate ratios (Fig. 26);
* :mod:`bytype` — dedup by type group and specific type (Figs. 27–29).
"""

from repro.dedup.chunking import (
    ChunkDedupResult,
    compare_granularities,
    fixed_chunks,
    gear_chunks,
)
from repro.dedup.engine import FileDedupReport, file_dedup_report
from repro.dedup.streaming import FileDedupState, merge_dedup_states
from repro.dedup.versions import VersionAnalysis, analyze_versions, tag_sort_key
from repro.dedup.layer_sharing import LayerSharingReport, layer_sharing_report
from repro.dedup.growth import GrowthPoint, dedup_growth
from repro.dedup.cross import CrossDuplicateReport, cross_duplicate_report
from repro.dedup.bytype import TypeDedupRow, dedup_by_figure_label, dedup_by_group

__all__ = [
    "ChunkDedupResult",
    "CrossDuplicateReport",
    "FileDedupReport",
    "FileDedupState",
    "GrowthPoint",
    "LayerSharingReport",
    "TypeDedupRow",
    "VersionAnalysis",
    "analyze_versions",
    "tag_sort_key",
    "compare_granularities",
    "cross_duplicate_report",
    "dedup_by_figure_label",
    "dedup_by_group",
    "dedup_growth",
    "file_dedup_report",
    "fixed_chunks",
    "merge_dedup_states",
    "gear_chunks",
]
