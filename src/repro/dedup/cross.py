"""Cross-layer and cross-image duplicate files (§V-D, Fig. 26).

A file occurrence is a *cross-layer duplicate* if the same content also
exists in at least one other layer; Fig. 26(a) plots, per layer, the
fraction of its files that are such duplicates (90 % of layers are above
97.6 %). Fig. 26(b) is the per-image analogue (90 % of images above 99.4 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.dataset import HubDataset
from repro.stats.cdf import EmpiricalCDF


@dataclass(frozen=True)
class CrossDuplicateReport:
    layer_ratio_cdf: EmpiricalCDF  # per non-empty layer
    image_ratio_cdf: EmpiricalCDF  # per image with files
    layer_p10: float  # value such that 90 % of layers are above it
    image_p10: float

    def summary(self) -> dict[str, float]:
        return {
            "layer_p10": self.layer_p10,
            "image_p10": self.image_p10,
            "layer_median": self.layer_ratio_cdf.median(),
            "image_median": self.image_ratio_cdf.median(),
        }


def _distinct_sorted(values: np.ndarray) -> np.ndarray:
    """Distinct values via sort + neighbour mask.

    Equivalent to ``np.unique`` but ~20x faster on large integer arrays in
    this environment (np.unique's path is far slower than a raw sort here).
    """
    if values.size == 0:
        return values
    s = np.sort(values)
    mask = np.empty(s.size, dtype=bool)
    mask[0] = True
    np.not_equal(s[1:], s[:-1], out=mask[1:])
    return s[mask]


def _segment_means(flags: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    csum = np.zeros(flags.size + 1, dtype=np.int64)
    np.cumsum(flags, out=csum[1:])
    counts = np.diff(offsets)
    sums = csum[offsets[1:]] - csum[offsets[:-1]]
    out = np.full(counts.size, np.nan)
    nonzero = counts > 0
    out[nonzero] = sums[nonzero] / counts[nonzero]
    return out


def cross_duplicate_report(dataset: HubDataset) -> CrossDuplicateReport:
    """Compute Fig. 26(a) and (b)."""
    if dataset.n_file_occurrences == 0:
        raise ValueError("dataset has no file occurrences")

    # -- cross-layer: content present in >= 2 distinct layers -------------------
    # A file repeated only within one layer is NOT a cross-layer duplicate, so
    # count distinct layers per file, not raw repeats.
    layer_of_occurrence = np.repeat(
        np.arange(dataset.n_layers, dtype=np.int64), dataset.layer_file_counts
    )
    pair_keys = layer_of_occurrence * dataset.n_files + dataset.layer_file_ids
    distinct_pairs = _distinct_sorted(pair_keys)
    files_of_pairs = (distinct_pairs % dataset.n_files).astype(np.int64)
    layers_per_file = np.bincount(files_of_pairs, minlength=dataset.n_files)
    occ_is_cross_layer = layers_per_file[dataset.layer_file_ids] >= 2

    layer_ratios = _segment_means(
        occ_is_cross_layer.astype(np.int64), dataset.layer_file_offsets
    )
    layer_ratios = layer_ratios[~np.isnan(layer_ratios)]

    # -- cross-image: content present in >= 2 distinct images --------------------
    # Map occurrences to images through the layer->image reference lists.
    image_of_slot = np.repeat(
        np.arange(dataset.n_images, dtype=np.int64), dataset.image_layer_counts
    )
    # per (image, layer) slot, expand that layer's files
    slot_layers = dataset.image_layer_ids
    slot_counts = dataset.layer_file_counts[slot_layers]
    occ_image = np.repeat(image_of_slot, slot_counts)
    # vectorized gather of each slot's file-id run
    total = int(slot_counts.sum())
    if total:
        seg_starts = np.concatenate([[0], np.cumsum(slot_counts[:-1])])
        within = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, slot_counts)
        take_idx = np.repeat(dataset.layer_file_offsets[slot_layers], slot_counts) + within
        occ_file = dataset.layer_file_ids[take_idx]
        del take_idx, within
    else:
        occ_file = np.zeros(0, dtype=np.int64)
    pair_keys = occ_image * dataset.n_files + occ_file
    distinct_pairs = _distinct_sorted(pair_keys)
    files_of_pairs = (distinct_pairs % dataset.n_files).astype(np.int64)
    images_per_file = np.bincount(files_of_pairs, minlength=dataset.n_files)
    flag = (images_per_file[occ_file] >= 2).astype(np.int64)
    slot_csum = np.zeros(slot_counts.size + 1, dtype=np.int64)
    np.cumsum(slot_counts, out=slot_csum[1:])
    image_offsets = slot_csum[dataset.image_layer_offsets]
    image_ratios = _segment_means(flag, image_offsets)
    image_ratios = image_ratios[~np.isnan(image_ratios)]

    if layer_ratios.size == 0 or image_ratios.size == 0:
        raise ValueError("no non-empty layers/images to analyze")
    layer_cdf = EmpiricalCDF(layer_ratios)
    image_cdf = EmpiricalCDF(image_ratios)
    return CrossDuplicateReport(
        layer_ratio_cdf=layer_cdf,
        image_ratio_cdf=image_cdf,
        layer_p10=float(layer_cdf.percentile(10)),
        image_p10=float(image_cdf.percentile(10)),
    )
