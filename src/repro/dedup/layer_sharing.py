"""Layer-sharing effectiveness (§V-A, Fig. 23).

For each unique layer, count how many image manifests reference it. Without
layer sharing, every image would store private copies of its layers — the
paper estimates the dataset would grow from 47 TB to 85 TB (1.8×).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.dataset import HubDataset
from repro.stats.cdf import EmpiricalCDF


@dataclass(frozen=True)
class LayerSharingReport:
    ref_cdf: EmpiricalCDF  # references per unique layer
    single_ref_fraction: float  # paper: ~90 %
    double_ref_fraction: float  # paper: ~5 %
    top_refs: list[tuple[int, int]]  # (layer id, refcount), most-shared first
    empty_layer_refs: int  # references to the canonical empty layer
    shared_bytes: int  # sum over images of per-image layer bytes (no sharing)
    unique_bytes: int  # bytes stored once per unique layer (with sharing)

    @property
    def sharing_ratio(self) -> float:
        """Storage blowup without sharing (paper: 85 TB / 47 TB ≈ 1.8×)."""
        return self.shared_bytes / self.unique_bytes if self.unique_bytes else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "single_ref_fraction": self.single_ref_fraction,
            "double_ref_fraction": self.double_ref_fraction,
            "max_refs": self.ref_cdf.max,
            "empty_layer_refs": self.empty_layer_refs,
            "sharing_ratio": self.sharing_ratio,
        }


def layer_sharing_report(dataset: HubDataset, *, top_n: int = 6) -> LayerSharingReport:
    """Compute Fig. 23 plus the 1.8× no-sharing estimate."""
    refs = dataset.layer_ref_counts
    referenced = refs[refs > 0]
    if referenced.size == 0:
        raise ValueError("dataset has no image→layer references")
    order = np.argsort(refs)[::-1][:top_n]
    # canonical empty layer: by construction index 0 in synthetic datasets;
    # detect generically as the most-referenced zero-file layer, if any.
    empty_mask = (dataset.layer_file_counts == 0) & (refs > 0)
    empty_refs = int(refs[empty_mask].max()) if empty_mask.any() else 0
    slot_bytes = int(dataset.layer_cls[dataset.image_layer_ids].sum())
    return LayerSharingReport(
        ref_cdf=EmpiricalCDF(referenced),
        single_ref_fraction=float((referenced == 1).mean()),
        double_ref_fraction=float((referenced == 2).mean()),
        top_refs=[(int(i), int(refs[i])) for i in order],
        empty_layer_refs=empty_refs,
        shared_bytes=slot_bytes,
        unique_bytes=int(dataset.layer_cls[refs > 0].sum()),
    )
