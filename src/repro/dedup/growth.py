"""Dedup-ratio growth with dataset size (§V-C, Fig. 25).

The paper drew four random layer samples plus the full dataset and observed
the dedup ratio climbing almost linearly with the (log-scaled) sample size:
count 3.6×→31.5×, capacity 1.9×→6.9× from 1,000 to 1.7 M layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dedup.engine import file_dedup_report
from repro.model.dataset import HubDataset


@dataclass(frozen=True)
class GrowthPoint:
    n_layers: int
    n_occurrences: int
    count_ratio: float
    capacity_ratio: float


def default_sample_sizes(n_layers: int, n_points: int = 5) -> list[int]:
    """Log-spaced sample sizes from ~n/256 up to the full dataset."""
    if n_layers < 2:
        return [n_layers]
    low = max(2, n_layers // 256)
    sizes = np.unique(
        np.round(np.logspace(np.log10(low), np.log10(n_layers), n_points)).astype(int)
    )
    return [int(s) for s in sizes]


def dedup_growth(
    dataset: HubDataset,
    sample_sizes: list[int] | None = None,
    *,
    seed: int = 0,
) -> list[GrowthPoint]:
    """Deduplicate random layer samples of increasing size.

    Sampling is without replacement and nested is *not* required by the
    paper (they drew independent random samples); we draw independently too.
    """
    sizes = sample_sizes or default_sample_sizes(dataset.n_layers)
    rng = np.random.default_rng(seed)
    points: list[GrowthPoint] = []
    for size in sizes:
        if not (0 < size <= dataset.n_layers):
            raise ValueError(
                f"sample size {size} out of range (1..{dataset.n_layers})"
            )
        if size == dataset.n_layers:
            subset = dataset
        else:
            layer_ids = rng.choice(dataset.n_layers, size=size, replace=False)
            subset = dataset.layer_subset(np.sort(layer_ids))
        if subset.n_file_occurrences == 0:
            continue  # a sample of only empty layers has nothing to dedup
        report = file_dedup_report(subset)
        points.append(
            GrowthPoint(
                n_layers=size,
                n_occurrences=report.n_occurrences,
                count_ratio=report.count_ratio,
                capacity_ratio=report.capacity_ratio,
            )
        )
    return points
