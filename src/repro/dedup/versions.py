"""Cross-version (multi-tag) analysis — the paper's first future-work item.

Given downloads of *every* tag of each repository (not just ``latest``),
quantify how image versions relate:

* per consecutive version pair, the layer-sharing Jaccard ratio
  (shared layers / union) — how much a new build reuses;
* the storage cost of keeping history: unique layer bytes across all tags
  vs. latest-only;
* how much of that cost file-level dedup claws back (version-to-version
  churn rewrites layers but barely changes their files).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.analyzer.profiles import ProfileStore
from repro.downloader.downloader import DownloadedImage
from repro.stats.cdf import EmpiricalCDF


def tag_sort_key(tag: str) -> tuple[int, str]:
    """Sort tags oldest-first: v1 < v2 < ... < latest.

    ``latest`` sorts after every version tag; unrecognized tags sit between
    the numbered versions and ``latest``. Shared with the churn engine
    (:mod:`repro.synth.churn`), which prunes and retargets version tags in
    exactly this order."""
    if tag == "latest":
        return (1_000_000, tag)
    if tag.startswith("v") and tag[1:].isdigit():
        return (int(tag[1:]), tag)
    return (500_000, tag)


#: historical private alias, kept for in-module callers
_tag_order = tag_sort_key


@dataclass(frozen=True)
class VersionAnalysis:
    n_repositories: int  # repositories with >= 2 tags
    n_version_pairs: int
    pair_jaccard_cdf: EmpiricalCDF | None  # layer sharing per adjacent pair
    latest_only_bytes: int  # unique layer bytes, latest tags only
    all_versions_bytes: int  # unique layer bytes, every tag
    deduped_file_bytes: int  # unique file bytes across every tag
    all_versions_file_bytes: int  # file bytes, layers counted once per digest

    @property
    def history_overhead(self) -> float:
        """Extra layer storage from keeping history (1.0 = free)."""
        if self.latest_only_bytes == 0:
            return 0.0
        return self.all_versions_bytes / self.latest_only_bytes

    @property
    def file_dedup_savings(self) -> float:
        """Capacity fraction file-level dedup removes across version
        families (churned layers share almost all their files)."""
        if self.all_versions_file_bytes == 0:
            return 0.0
        return 1.0 - self.deduped_file_bytes / self.all_versions_file_bytes

    def summary(self) -> dict[str, float]:
        return {
            "repositories": self.n_repositories,
            "version_pairs": self.n_version_pairs,
            "median_pair_jaccard": (
                self.pair_jaccard_cdf.median() if self.pair_jaccard_cdf else 0.0
            ),
            "history_overhead": self.history_overhead,
            "file_dedup_savings": self.file_dedup_savings,
        }


def analyze_versions(
    images: list[DownloadedImage], store: ProfileStore
) -> VersionAnalysis:
    """Analyze multi-tag downloads against their layer profiles."""
    by_repo: dict[str, list[DownloadedImage]] = defaultdict(list)
    for image in images:
        by_repo[image.repository].append(image)

    jaccards: list[float] = []
    n_pairs = 0
    multi_repos = 0
    latest_layers: set[str] = set()
    all_layers: set[str] = set()

    for repo, repo_images in by_repo.items():
        repo_images.sort(key=lambda img: _tag_order(img.tag))
        if len(repo_images) >= 2:
            multi_repos += 1
        for image in repo_images:
            digests = set(image.manifest.layer_digests)
            all_layers.update(digests)
            if image.tag == "latest":
                latest_layers.update(digests)
        for older, newer in zip(repo_images, repo_images[1:]):
            a = set(older.manifest.layer_digests)
            b = set(newer.manifest.layer_digests)
            union = a | b
            if union:
                jaccards.append(len(a & b) / len(union))
                n_pairs += 1

    def layer_bytes(digests: set[str]) -> int:
        return sum(store.layer(d).compressed_size for d in digests)

    def file_stats(digests: set[str]) -> tuple[int, int]:
        """(total file bytes over layers, unique file bytes)."""
        total = 0
        unique: dict[str, int] = {}
        for d in digests:
            for record in store.layer(d).files:
                total += record.size
                unique.setdefault(record.digest, record.size)
        return total, sum(unique.values())

    all_file_total, all_file_unique = file_stats(all_layers)
    return VersionAnalysis(
        n_repositories=multi_repos,
        n_version_pairs=n_pairs,
        pair_jaccard_cdf=EmpiricalCDF(np.array(jaccards)) if jaccards else None,
        latest_only_bytes=layer_bytes(latest_layers),
        all_versions_bytes=layer_bytes(all_layers),
        deduped_file_bytes=all_file_unique,
        all_versions_file_bytes=all_file_total,
    )
