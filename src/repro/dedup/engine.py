"""File-level deduplication (§V-B, Fig. 24).

The dedup key is the file content digest (a unique-file id in the columnar
dataset). Ratios are computed over the dataset of *unique layers*, exactly
the corpus the paper deduplicated: 5,278,465,130 occurrences → 3.2 % unique,
31.5× by count, 6.9× by capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.dataset import HubDataset
from repro.stats.cdf import EmpiricalCDF


@dataclass(frozen=True)
class FileDedupReport:
    n_occurrences: int
    n_unique: int
    total_bytes: int  # capacity of all occurrences
    unique_bytes: int  # capacity after dedup
    repeat_cdf: EmpiricalCDF  # copies per unique (used) file
    max_repeat: int
    max_repeat_is_empty: bool

    @property
    def unique_fraction(self) -> float:
        return self.n_unique / self.n_occurrences if self.n_occurrences else 0.0

    @property
    def count_ratio(self) -> float:
        """Dedup ratio by file count (paper: 31.5x)."""
        return self.n_occurrences / self.n_unique if self.n_unique else 0.0

    @property
    def capacity_ratio(self) -> float:
        """Dedup ratio by capacity (paper: 6.9x)."""
        return self.total_bytes / self.unique_bytes if self.unique_bytes else 0.0

    @property
    def eliminated_capacity_fraction(self) -> float:
        """Fraction of bytes removable by file-level dedup (paper: 85.69 %)."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.unique_bytes / self.total_bytes

    @property
    def multi_copy_fraction(self) -> float:
        """Fraction of unique files with more than one copy (paper: >99.4 %)."""
        return 1.0 - self.repeat_cdf.fraction_at_most(1)

    def summary(self) -> dict[str, float]:
        return {
            "occurrences": self.n_occurrences,
            "unique_files": self.n_unique,
            "unique_fraction": self.unique_fraction,
            "count_ratio": self.count_ratio,
            "capacity_ratio": self.capacity_ratio,
            "eliminated_capacity_fraction": self.eliminated_capacity_fraction,
            "median_copies": self.repeat_cdf.median(),
            "p90_copies": self.repeat_cdf.percentile(90),
            "max_repeat": self.max_repeat,
        }


def file_dedup_report(dataset: HubDataset) -> FileDedupReport:
    """Deduplicate the dataset's file occurrences by content id."""
    repeats = dataset.file_repeat_counts
    used = repeats > 0
    used_repeats = repeats[used]
    if used_repeats.size == 0:
        raise ValueError("dataset has no file occurrences to deduplicate")
    max_idx = int(np.argmax(repeats))
    return FileDedupReport(
        n_occurrences=dataset.n_file_occurrences,
        n_unique=int(np.count_nonzero(used)),
        total_bytes=int(dataset.occurrence_sizes.sum()),
        unique_bytes=int(dataset.file_sizes[used].sum()),
        repeat_cdf=EmpiricalCDF(used_repeats),
        max_repeat=int(repeats[max_idx]),
        max_repeat_is_empty=bool(dataset.file_sizes[max_idx] == 0),
    )
