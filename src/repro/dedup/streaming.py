"""Mergeable file-dedup partials for the streaming columnar engine (§V-B).

:func:`~repro.dedup.engine.file_dedup_report` needs the whole occurrence
array resident to bincount repeats. At paper scale (10⁹ occurrences) that is
the memory wall, so the streaming engine folds per-chunk partials instead:
each chunk contributes its ``np.unique`` (ids, counts, first-seen sizes),
and partials merge by sorted concatenation — unique ids are kept sorted, so
a merge is one concatenate + one ``np.unique`` with summed counts. The
merged state answers every §V-B statistic *exactly* (not approximately):
repeat percentiles come from the true multiset of per-unique-file copy
counts, identical to what the in-memory report computes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class FileDedupState:
    """A partial (or fully merged) view of the unique-file universe.

    ``unique_ids`` is sorted ascending; ``counts``/``sizes`` are parallel.
    All arithmetic stays in int64 (occurrence totals and byte totals are far
    below 2⁶³), so merging in any grouping yields bit-identical state.
    """

    unique_ids: np.ndarray  # int64, sorted
    counts: np.ndarray  # int64 — occurrences of each unique file *seen so far*
    sizes: np.ndarray  # int64 — unique-file sizes (same for every sighting)
    n_occurrences: int
    total_bytes: int  # capacity of all occurrences seen

    @classmethod
    def empty(cls) -> "FileDedupState":
        return cls(
            unique_ids=np.zeros(0, dtype=np.int64),
            counts=np.zeros(0, dtype=np.int64),
            sizes=np.zeros(0, dtype=np.int64),
            n_occurrences=0,
            total_bytes=0,
        )

    @classmethod
    def from_occurrences(
        cls, file_ids: np.ndarray, occ_sizes: np.ndarray
    ) -> "FileDedupState":
        """Collapse one chunk's occurrence columns to a partial."""
        if file_ids.size == 0:
            return cls.empty()
        unique_ids, first, counts = np.unique(
            file_ids, return_index=True, return_counts=True
        )
        return cls(
            unique_ids=unique_ids.astype(np.int64),
            counts=counts.astype(np.int64),
            sizes=occ_sizes[first].astype(np.int64),
            n_occurrences=int(file_ids.size),
            total_bytes=int(occ_sizes.sum()),
        )

    @property
    def n_unique(self) -> int:
        return int(self.unique_ids.size)

    @property
    def unique_bytes(self) -> int:
        return int(self.sizes.sum())

    def merge(self, other: "FileDedupState") -> "FileDedupState":
        """Fold two partials: union ids, sum counts, keep one size each."""
        if other.n_unique == 0:
            merged = self
        elif self.n_unique == 0:
            merged = other
        else:
            ids = np.concatenate([self.unique_ids, other.unique_ids])
            counts = np.concatenate([self.counts, other.counts])
            sizes = np.concatenate([self.sizes, other.sizes])
            unique_ids, first, inverse = np.unique(
                ids, return_index=True, return_inverse=True
            )
            summed = np.zeros(unique_ids.size, dtype=np.int64)
            np.add.at(summed, inverse, counts)
            return FileDedupState(
                unique_ids=unique_ids,
                counts=summed,
                sizes=sizes[first],
                n_occurrences=self.n_occurrences + other.n_occurrences,
                total_bytes=self.total_bytes + other.total_bytes,
            )
        return FileDedupState(
            unique_ids=merged.unique_ids,
            counts=merged.counts,
            sizes=merged.sizes,
            n_occurrences=self.n_occurrences + other.n_occurrences,
            total_bytes=self.total_bytes + other.total_bytes,
        )

    # -- the §V-B answers -----------------------------------------------------

    def repeat_percentile(self, q: float) -> int:
        """Exact inverted-CDF percentile of copies-per-unique-file —
        the same convention as :class:`~repro.stats.cdf.EmpiricalCDF`."""
        if self.n_unique == 0:
            raise ValueError("no unique files observed")
        return int(np.percentile(self.counts, q, method="inverted_cdf"))

    def summary(self) -> dict:
        """The §V-B numbers, keyed like ``FileDedupReport.summary()``.

        Derived purely from merged integers, so the streaming and in-memory
        engines agree byte-for-byte on the serialized form.
        """
        if self.n_unique == 0:
            raise ValueError("no file occurrences to deduplicate")
        n_unique = self.n_unique
        unique_bytes = self.unique_bytes
        max_at = int(np.argmax(self.counts))  # sorted ids -> lowest id wins ties
        multi = int(np.count_nonzero(self.counts > 1))
        return {
            "occurrences": self.n_occurrences,
            "unique_files": n_unique,
            "total_bytes": self.total_bytes,
            "unique_bytes": unique_bytes,
            "unique_fraction": n_unique / self.n_occurrences,
            "count_ratio": self.n_occurrences / n_unique,
            "capacity_ratio": (
                self.total_bytes / unique_bytes if unique_bytes else 0.0
            ),
            "eliminated_capacity_fraction": (
                1.0 - unique_bytes / self.total_bytes if self.total_bytes else 0.0
            ),
            "multi_copy_fraction": multi / n_unique,
            "median_copies": self.repeat_percentile(50),
            "p90_copies": self.repeat_percentile(90),
            "max_repeat": int(self.counts[max_at]),
            "max_repeat_is_empty": bool(self.sizes[max_at] == 0),
        }


def merge_dedup_states(states: list[FileDedupState]) -> FileDedupState:
    """Fold partials pairwise (balanced tree), left to right.

    The result is order-insensitive — ids are a set union and counts are
    integer sums — but folding as a tree keeps each concatenate near-linear
    instead of quadratic when thousands of chunks merge.
    """
    if not states:
        return FileDedupState.empty()
    level = list(states)
    while len(level) > 1:
        level = [
            level[i].merge(level[i + 1]) if i + 1 < len(level) else level[i]
            for i in range(0, len(level), 2)
        ]
    return level[0]
