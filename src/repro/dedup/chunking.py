"""Chunk-level deduplication, compared against the paper's file-level dedup.

The paper deduplicates at file granularity. Storage systems often go finer:
fixed-size blocks, or content-defined chunks (CDC) whose boundaries come
from a rolling hash so insertions don't shift every subsequent chunk. This
module implements both over real layer bytes and measures how much they add
on top of file-level dedup — quantifying whether the registry should chunk
*within* files or whether the paper's file granularity already captures the
redundancy (its §V-B finding suggests it mostly does: duplication comes
from whole files copied between images).

The CDC here is a Gear hash (a fast table-based rolling hash, the scheme
FastCDC builds on) with min/avg/max chunk-size clamps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.digest import sha256_bytes

#: 256 random 64-bit gear values, fixed seed: chunking must be deterministic
#: across processes or dedup against old chunks breaks.
_GEAR = (
    np.random.default_rng(20170530)
    .integers(0, 2**63 - 1, size=256, dtype=np.int64)
    .astype(np.uint64)
)


def fixed_chunks(data: bytes, chunk_size: int = 8 * 1024) -> list[bytes]:
    """Split into fixed-size blocks (the simplest chunking)."""
    if chunk_size <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    return [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)]


def gear_chunks(
    data: bytes,
    *,
    avg_bits: int = 13,  # ~8 KiB average
    min_size: int = 2 * 1024,
    max_size: int = 64 * 1024,
) -> list[bytes]:
    """Content-defined chunking with a Gear rolling hash.

    A boundary is declared where the rolling hash has ``avg_bits`` leading
    zero bits (expected chunk ≈ 2^avg_bits bytes), clamped to
    [min_size, max_size]. Identical content always chunks identically, and a
    local edit only reshapes nearby chunks.
    """
    if min_size <= 0 or max_size < min_size:
        raise ValueError("need 0 < min_size <= max_size")
    if not data:
        return []
    mask = int(((1 << avg_bits) - 1) << (64 - avg_bits))
    gear = [int(v) for v in _GEAR]
    wrap = 0xFFFFFFFFFFFFFFFF

    # the rolling update (h = h<<1 + gear[byte]) is inherently sequential,
    # so this is a plain scan; layer-sized inputs keep it fast enough and
    # dependency-free
    out: list[bytes] = []
    pos = 0
    n = len(data)
    while pos < n:
        end = min(pos + max_size, n)
        cut = end
        scan_start = pos + min_size
        if scan_start < end:
            h = 0
            for i in range(pos, end):
                h = ((h << 1) + gear[data[i]]) & wrap
                if i >= scan_start and (h & mask) == 0:
                    cut = i + 1
                    break
        out.append(data[pos:cut])
        pos = cut
    return out


@dataclass(frozen=True)
class ChunkDedupResult:
    scheme: str
    n_items: int  # files or chunks
    n_unique: int
    total_bytes: int
    unique_bytes: int

    @property
    def capacity_ratio(self) -> float:
        return self.total_bytes / self.unique_bytes if self.unique_bytes else 0.0

    @property
    def eliminated_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.unique_bytes / self.total_bytes


def _dedup(items: list[bytes], scheme: str) -> ChunkDedupResult:
    seen: dict[str, int] = {}
    total = 0
    for item in items:
        total += len(item)
        seen.setdefault(sha256_bytes(item), len(item))
    return ChunkDedupResult(
        scheme=scheme,
        n_items=len(items),
        n_unique=len(seen),
        total_bytes=total,
        unique_bytes=sum(seen.values()),
    )


def compare_granularities(
    files: list[bytes],
    *,
    fixed_size: int = 8 * 1024,
    cdc_avg_bits: int = 13,
) -> list[ChunkDedupResult]:
    """Dedup the same file population at three granularities.

    ``files`` is the multiset of file *occurrences* (content bytes, one per
    occurrence, duplicates included) — exactly the §V-B corpus.
    """
    if not files:
        raise ValueError("need at least one file")
    whole = _dedup(files, "file")
    fixed_items = [c for f in files for c in fixed_chunks(f, fixed_size)]
    fixed = _dedup(fixed_items, f"fixed-{fixed_size // 1024}k")
    cdc_items = [c for f in files for c in gear_chunks(f, avg_bits=cdc_avg_bits)]
    cdc = _dedup(cdc_items, f"cdc-{1 << (cdc_avg_bits - 10)}k")
    return [whole, fixed, cdc]
