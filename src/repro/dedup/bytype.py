"""Deduplication by file type (§V-E, Figs. 27–29).

For each type group (Fig. 27) or each specific type within a group
(Fig. 28 for EOL, Fig. 29 for source code), report the capacity occupied by
all occurrences, the capacity after dedup, and the eliminated fraction — the
y-axes the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.filetypes.catalog import TypeCatalog, TypeGroup, default_catalog
from repro.model.dataset import HubDataset


@dataclass(frozen=True)
class TypeDedupRow:
    label: str
    occurrence_count: int
    occurrence_bytes: int
    unique_count: int
    unique_bytes: int

    @property
    def count_ratio(self) -> float:
        return self.occurrence_count / self.unique_count if self.unique_count else 0.0

    @property
    def eliminated_capacity_fraction(self) -> float:
        """The paper's per-type "deduplication ratio" (fraction of capacity
        removed by file-level dedup)."""
        if self.occurrence_bytes == 0:
            return 0.0
        return 1.0 - self.unique_bytes / self.occurrence_bytes

    @property
    def redundant_bytes(self) -> int:
        return self.occurrence_bytes - self.unique_bytes


def _rows(
    dataset: HubDataset,
    key_of_code: np.ndarray,
    labels: dict[int, str],
) -> list[TypeDedupRow]:
    """Aggregate occurrences and uniques by an integer key per type code."""
    occ_keys = key_of_code[dataset.occurrence_types]
    occ_sizes = dataset.occurrence_sizes
    used = dataset.file_repeat_counts > 0
    uniq_keys = key_of_code[dataset.file_types[used]]
    uniq_sizes = dataset.file_sizes[used]

    n_keys = max(
        int(key_of_code.max()) + 1 if key_of_code.size else 0,
        max(labels) + 1 if labels else 0,
    )
    if n_keys <= 0:
        return []
    occ_count = np.bincount(occ_keys[occ_keys >= 0], minlength=n_keys)
    occ_bytes = np.bincount(
        occ_keys[occ_keys >= 0], weights=occ_sizes[occ_keys >= 0], minlength=n_keys
    )
    uniq_count = np.bincount(uniq_keys[uniq_keys >= 0], minlength=n_keys)
    uniq_bytes = np.bincount(
        uniq_keys[uniq_keys >= 0], weights=uniq_sizes[uniq_keys >= 0], minlength=n_keys
    )
    rows = []
    for key, label in labels.items():
        if occ_count[key] == 0:
            continue
        rows.append(
            TypeDedupRow(
                label=label,
                occurrence_count=int(occ_count[key]),
                occurrence_bytes=int(occ_bytes[key]),
                unique_count=int(uniq_count[key]),
                unique_bytes=int(uniq_bytes[key]),
            )
        )
    rows.sort(key=lambda r: -r.occurrence_bytes)
    return rows


def _code_table(dataset: HubDataset, catalog: TypeCatalog) -> np.ndarray:
    """Max type code present, for building dense lookup tables."""
    max_code = int(dataset.file_types.max()) if dataset.n_files else 0
    return np.arange(max_code + 1)


def dedup_by_group(
    dataset: HubDataset, catalog: TypeCatalog | None = None
) -> list[TypeDedupRow]:
    """Fig. 27: capacity and dedup ratio per type group."""
    catalog = catalog or default_catalog()
    max_code = int(dataset.file_types.max()) if dataset.n_files else 0
    key_of_code = catalog.group_of_code_table(max_code).astype(np.int64)
    labels = {int(g): g.paper_label for g in TypeGroup}
    return _rows(dataset, key_of_code, labels)


def dedup_by_figure_label(
    dataset: HubDataset, group: TypeGroup, catalog: TypeCatalog | None = None
) -> list[TypeDedupRow]:
    """Figs. 28/29-style: dedup per specific type (figure label) within one
    group. Works for any group, not just EOL and source code."""
    catalog = catalog or default_catalog()
    codes = _code_table(dataset, catalog)
    label_keys: dict[str, int] = {}
    labels: dict[int, str] = {}
    key_of_code = np.full(codes.size, -1)
    for c in codes:
        ftype = catalog.try_by_code(int(c))
        if ftype is None or ftype.group is not group:
            continue
        key = label_keys.setdefault(ftype.figure_label, len(label_keys))
        labels[key] = ftype.figure_label
        key_of_code[c] = key
    return _rows(dataset, key_of_code, labels)
