"""A disk-backed, content-addressed cache of layer profiles.

The paper's layer-sharing result (§V-A) is the whole justification: most
layers recur across images (a 1.8x saving for the registry), and
longitudinal studies re-analyze the same corpus repeatedly — so a layer
profiled once should never pay extraction again. The cache maps

    (layer digest, catalog version)  ->  LayerProfile

where the catalog version is :meth:`TypeCatalog.version`: change the type
taxonomy and every old entry silently misses instead of serving profiles
typed under a dead catalog.

Keying, framing, and corrupt-discard-delete semantics are the shared
:class:`~repro.util.entrycache.SelfVerifyingCache` machinery (also behind
:class:`~repro.scan.cache.ScanCache`); the helpers there write byte-for-byte
what this module always wrote, so pre-refactor cache directories keep
serving. Inject the rot this guards against with
:func:`repro.faults.corrupt_at_rest` on :attr:`ProfileCache.store`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analyzer.profiles import (
    LayerProfile,
    layer_profile_from_json,
    layer_profile_to_json,
)
from repro.filetypes.catalog import TypeCatalog, default_catalog
from repro.obs import MetricsRegistry
from repro.registry.blobstore import BlobStore
from repro.util.entrycache import EntryCacheStats, SelfVerifyingCache

_MAGIC = b"repro-profile-cache/v1"

#: historical name — the profile cache predates the shared stats record.
ProfileCacheStats = EntryCacheStats


class ProfileCache(SelfVerifyingCache):
    """Persistent (layer digest, catalog version) -> profile cache.

    ``root_or_store`` is either a directory (a :class:`DiskBlobStore` is
    created under it) or any ready-made :class:`BlobStore`. The catalog
    version defaults to the default catalog's; pass ``catalog`` for a
    custom taxonomy or ``catalog_version`` to pin the string directly
    (tests, forward-compat migrations).
    """

    MAGIC = _MAGIC
    METRIC_PREFIX = "profile_cache"

    def __init__(
        self,
        root_or_store: str | Path | BlobStore,
        *,
        catalog: TypeCatalog | None = None,
        catalog_version: str | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if catalog_version is None:
            catalog_version = (catalog or default_catalog()).version()
        super().__init__(root_or_store, version=catalog_version, metrics=metrics)

    @property
    def catalog_version(self) -> str:
        """The type-taxonomy generation this cache's entries were typed under."""
        return self.version

    # -- codec hooks ----------------------------------------------------------

    def _encode_body(self, profile: LayerProfile) -> bytes:
        return json.dumps(
            layer_profile_to_json(profile), separators=(",", ":"), sort_keys=True
        ).encode()

    def _decode_body(self, body: bytes) -> LayerProfile:
        return layer_profile_from_json(json.loads(body))

    def _digest_of(self, profile: LayerProfile) -> str:
        return profile.digest
