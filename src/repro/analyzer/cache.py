"""A disk-backed, content-addressed cache of layer profiles.

The paper's layer-sharing result (§V-A) is the whole justification: most
layers recur across images (a 1.8x saving for the registry), and
longitudinal studies re-analyze the same corpus repeatedly — so a layer
profiled once should never pay extraction again. The cache maps

    (layer digest, catalog version)  ->  LayerProfile

where the catalog version is :meth:`TypeCatalog.version`: change the type
taxonomy and every old entry silently misses instead of serving profiles
typed under a dead catalog. Keys are themselves content addresses
(``sha256`` of the composite key), so any :class:`BlobStore` works as the
backing store — by default a :class:`DiskBlobStore`, giving crash-safe
(tmp + rename) persistent entries shared across runs and processes.

Entries are self-verifying: the payload embeds a checksum over the profile
document, and a corrupt entry (bad frame, bad checksum, bad JSON, wrong
digest inside) is discarded and counted, never returned — the layer is
simply re-profiled and the entry rewritten. Inject the fault this guards
against with :func:`repro.faults.corrupt_at_rest` on :attr:`ProfileCache
.store`.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.analyzer.profiles import (
    LayerProfile,
    layer_profile_from_json,
    layer_profile_to_json,
)
from repro.filetypes.catalog import TypeCatalog, default_catalog
from repro.obs import MetricsRegistry
from repro.registry.blobstore import BlobStore, DiskBlobStore
from repro.util.digest import sha256_bytes

_MAGIC = b"repro-profile-cache/v1"


@dataclass
class ProfileCacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    discarded: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "discarded": self.discarded,
        }


class ProfileCache:
    """Persistent (layer digest, catalog version) -> profile cache.

    ``root_or_store`` is either a directory (a :class:`DiskBlobStore` is
    created under it) or any ready-made :class:`BlobStore`. The catalog
    version defaults to the default catalog's; pass ``catalog`` for a
    custom taxonomy or ``catalog_version`` to pin the string directly
    (tests, forward-compat migrations).
    """

    def __init__(
        self,
        root_or_store: str | Path | BlobStore,
        *,
        catalog: TypeCatalog | None = None,
        catalog_version: str | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if isinstance(root_or_store, BlobStore):
            self.store: BlobStore = root_or_store
        else:
            self.store = DiskBlobStore(root_or_store)
        if catalog_version is not None:
            self.catalog_version = catalog_version
        else:
            self.catalog_version = (catalog or default_catalog()).version()
        self.metrics = metrics
        self.stats = ProfileCacheStats()
        self._lock = threading.Lock()

    # -- keying ---------------------------------------------------------------

    def key(self, layer_digest: str) -> str:
        """The backing-store address for one layer's entry."""
        composite = f"{_MAGIC.decode()}:{self.catalog_version}:{layer_digest}"
        return sha256_bytes(composite.encode())

    # -- entry codec ----------------------------------------------------------

    def _encode(self, profile: LayerProfile) -> bytes:
        body = json.dumps(
            layer_profile_to_json(profile), separators=(",", ":"), sort_keys=True
        ).encode()
        checksum = sha256_bytes(body).encode()
        return _MAGIC + b"\n" + checksum + b"\n" + body

    def _decode(self, payload: bytes, layer_digest: str) -> LayerProfile:
        magic, checksum, body = payload.split(b"\n", 2)
        if magic != _MAGIC:
            raise ValueError(f"bad cache frame: {magic[:32]!r}")
        if sha256_bytes(body).encode() != checksum:
            raise ValueError("cache entry checksum mismatch")
        profile = layer_profile_from_json(json.loads(body))
        if profile.digest != layer_digest:
            raise ValueError(
                f"cache entry holds {profile.digest}, wanted {layer_digest}"
            )
        return profile

    # -- cache protocol -------------------------------------------------------

    def get(self, layer_digest: str) -> LayerProfile | None:
        """The cached profile, or None on miss.

        A corrupt entry counts as a miss *and* is deleted so the rewrite
        after re-profiling starts from a clean slot.
        """
        key = self.key(layer_digest)
        try:
            payload = self.store.get(key)
        except Exception:  # noqa: BLE001 — absent entry, unreadable shard, ...
            self._count("misses")
            return None
        try:
            profile = self._decode(payload, layer_digest)
        except Exception:  # noqa: BLE001 — any rot means the entry is dead
            self._count("discarded")
            self._count("misses")
            try:
                self.store.delete(key)
            except Exception:  # noqa: BLE001 — best-effort cleanup
                pass
            return None
        self._count("hits")
        return profile

    def put(self, profile: LayerProfile) -> None:
        """Write one profile's entry (idempotent; last writer wins)."""
        self.store.put_at(self.key(profile.digest), self._encode(profile))
        self._count("stores")

    def _count(self, field_name: str) -> None:
        with self._lock:
            setattr(self.stats, field_name, getattr(self.stats, field_name) + 1)
        if self.metrics is not None:
            self.metrics.counter(
                f"profile_cache_{field_name}_total",
                "profile cache accounting",
            ).inc()
