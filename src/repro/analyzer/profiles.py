"""Layer and image profiles — the analyzer's §III-C output records.

A *layer profile* carries layer metadata (digest, FLS, CLS, directory count,
file count, max depth), the compression ratio, per-directory metadata and
per-file metadata, exactly the fields the paper's analyzer emitted.

:class:`ProfileStore` accumulates profiles and converts them into the
columnar :class:`~repro.model.dataset.HubDataset`, so every downstream
figure computation is agnostic to whether data came from real extracted
tarballs or the synthetic generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.dataset import HubDataset


@dataclass(frozen=True)
class FileRecord:
    """Per-file metadata: { name, digest, type, size } (§III-C)."""

    path: str
    digest: str
    size: int
    type_code: int


@dataclass(frozen=True)
class DirectoryRecord:
    """Per-directory metadata: { name, depth, file count } (§III-C)."""

    path: str
    depth: int
    file_count: int


@dataclass
class LayerProfile:
    """Everything the analyzer measured about one layer."""

    digest: str
    compressed_size: int  # CLS
    files_size: int  # FLS
    file_count: int
    directory_count: int
    max_depth: int
    files: list[FileRecord] = field(default_factory=list)
    directories: list[DirectoryRecord] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """FLS-to-CLS (0 when CLS unknown)."""
        if self.compressed_size <= 0:
            return 0.0
        return self.files_size / self.compressed_size


@dataclass
class ImageProfile:
    """Image metadata plus pointers (digests) to its layer profiles."""

    name: str
    layer_digests: list[str]
    compressed_size: int  # CIS: sum of manifest layer sizes
    pull_count: int = 0


def layer_profile_to_json(profile: LayerProfile) -> dict:
    """The canonical JSON document for one layer profile (the JSONL dump
    format and the profile cache's payload)."""
    return {
        "kind": "layer",
        "digest": profile.digest,
        "cls": profile.compressed_size,
        "fls": profile.files_size,
        "file_count": profile.file_count,
        "dir_count": profile.directory_count,
        "max_depth": profile.max_depth,
        "files": [
            [f.path, f.digest, f.size, f.type_code] for f in profile.files
        ],
        "dirs": [[d.path, d.depth, d.file_count] for d in profile.directories],
    }


def layer_profile_from_json(doc: dict) -> LayerProfile:
    """Rebuild a :class:`LayerProfile` from :func:`layer_profile_to_json`."""
    return LayerProfile(
        digest=doc["digest"],
        compressed_size=doc["cls"],
        files_size=doc["fls"],
        file_count=doc["file_count"],
        directory_count=doc["dir_count"],
        max_depth=doc["max_depth"],
        files=[
            FileRecord(path=p, digest=d, size=s, type_code=t)
            for p, d, s, t in doc["files"]
        ],
        directories=[
            DirectoryRecord(path=p, depth=d, file_count=c)
            for p, d, c in doc["dirs"]
        ],
    )


class ProfileStore:
    """Accumulates profiles; converts to the columnar dataset.

    Layers are stored once per digest (the dataset of *unique* layers, as
    downloaded); images reference layers by digest.
    """

    def __init__(self) -> None:
        self._layers: dict[str, LayerProfile] = {}
        self._layer_order: list[str] = []
        self._images: list[ImageProfile] = []

    # -- accumulation -----------------------------------------------------------

    def add_layer(self, profile: LayerProfile) -> bool:
        """Record a layer profile; returns False if the digest was already
        profiled (duplicate work detected)."""
        if profile.digest in self._layers:
            return False
        self._layers[profile.digest] = profile
        self._layer_order.append(profile.digest)
        return True

    def add_image(self, profile: ImageProfile) -> None:
        for digest in profile.layer_digests:
            if digest not in self._layers:
                raise KeyError(
                    f"image {profile.name!r} references unprofiled layer {digest}"
                )
        self._images.append(profile)

    def has_layer(self, digest: str) -> bool:
        return digest in self._layers

    @property
    def n_layers(self) -> int:
        return len(self._layers)

    @property
    def n_images(self) -> int:
        return len(self._images)

    def layer(self, digest: str) -> LayerProfile:
        return self._layers[digest]

    def layers(self) -> list[LayerProfile]:
        return [self._layers[d] for d in self._layer_order]

    def images(self) -> list[ImageProfile]:
        return list(self._images)

    # -- conversion --------------------------------------------------------------

    def to_dataset(self) -> HubDataset:
        """Build the columnar dataset: unique files keyed by content digest.

        File id *k* belongs to the *k*-th distinct content digest in
        layer-occurrence order (first-seen semantics). The occurrence
        walk is deliberately ONE fused Python pass: the records are
        Python objects, so the floor is one attribute read plus one dict
        probe per occurrence — and the walk reads ``size``/``type_code``
        only for first-seen digests. Vectorized factorizes were measured
        and rejected: ``np.unique`` over the digest strings is ~5x
        slower at 10⁶ occurrences (it must sort the string column), and
        multi-pass C-level pipelines (``fromiter``/``map``/``setdefault``)
        lose ~2x because they touch every record once per column. The
        comparison stays executable in ``benchmarks/bench_colstream.py``.
        Everything downstream of the walk — offsets, scalar columns,
        the image CSR — is NumPy.
        """
        profiles = [self._layers[d] for d in self._layer_order]
        file_id_by_digest: dict[str, int] = {}
        file_sizes: list[int] = []
        file_types: list[int] = []
        layer_file_ids: list[int] = []
        file_counts = np.zeros(len(profiles), dtype=np.int64)
        append_size = file_sizes.append
        append_type = file_types.append
        append_id = layer_file_ids.append
        lookup = file_id_by_digest.get
        for i, profile in enumerate(profiles):
            records = profile.files
            file_counts[i] = len(records)
            for record in records:
                fid = lookup(record.digest)
                if fid is None:
                    fid = len(file_sizes)
                    file_id_by_digest[record.digest] = fid
                    append_size(record.size)
                    append_type(record.type_code)
                append_id(fid)

        layer_offsets = np.zeros(len(profiles) + 1, dtype=np.int64)
        np.cumsum(file_counts, out=layer_offsets[1:])

        layer_index = {d: i for i, d in enumerate(self._layer_order)}
        image_layer_ids: list[int] = []
        image_offsets = [0]
        names: list[str] = []
        pulls: list[int] = []
        for image in self._images:
            image_layer_ids.extend(layer_index[d] for d in image.layer_digests)
            image_offsets.append(len(image_layer_ids))
            names.append(image.name)
            pulls.append(image.pull_count)

        dataset = HubDataset(
            file_sizes=np.asarray(file_sizes, dtype=np.int64),
            file_types=np.asarray(file_types, dtype=np.int32),
            layer_file_offsets=layer_offsets,
            layer_file_ids=np.asarray(layer_file_ids, dtype=np.int64),
            layer_cls=np.asarray(
                [p.compressed_size for p in profiles], dtype=np.int64
            ),
            layer_dir_counts=np.asarray(
                [p.directory_count for p in profiles], dtype=np.int64
            ),
            layer_max_depths=np.asarray(
                [p.max_depth for p in profiles], dtype=np.int64
            ),
            image_layer_offsets=np.asarray(image_offsets, dtype=np.int64),
            image_layer_ids=np.asarray(image_layer_ids, dtype=np.int64),
            repo_names=names,
            pull_counts=np.asarray(pulls, dtype=np.int64),
        )
        dataset.validate()
        return dataset
