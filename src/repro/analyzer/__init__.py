"""The analyzer: decompress layers, build layer/image profiles (§III-C)."""

from repro.analyzer.analyzer import AnalysisResult, Analyzer
from repro.analyzer.extract import extract_and_profile
from repro.analyzer.profiles import (
    DirectoryRecord,
    FileRecord,
    ImageProfile,
    LayerProfile,
    ProfileStore,
)

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "DirectoryRecord",
    "FileRecord",
    "ImageProfile",
    "LayerProfile",
    "ProfileStore",
    "extract_and_profile",
]
