"""The analyzer: decompress layers, build layer/image profiles (§III-C)."""

from repro.analyzer.analyzer import AnalysisResult, Analyzer
from repro.analyzer.cache import ProfileCache, ProfileCacheStats
from repro.analyzer.extract import extract_and_profile
from repro.analyzer.profiles import (
    DirectoryRecord,
    FileRecord,
    ImageProfile,
    LayerProfile,
    ProfileStore,
    layer_profile_from_json,
    layer_profile_to_json,
)
from repro.analyzer.shard import (
    LayerShard,
    ShardProfileResult,
    build_shards,
    profile_shard,
)

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "DirectoryRecord",
    "FileRecord",
    "ImageProfile",
    "LayerProfile",
    "LayerShard",
    "ProfileCache",
    "ProfileCacheStats",
    "ProfileStore",
    "ShardProfileResult",
    "build_shards",
    "extract_and_profile",
    "layer_profile_from_json",
    "layer_profile_to_json",
    "profile_shard",
]
