"""The module-level, picklable shard worker for layer profiling.

``Analyzer.analyze`` used to hand a local closure to ``parallel_map``,
which worked for threads and crashed with ``PicklingError`` the moment
``ParallelConfig(mode="process")`` — the documented mode for CPU-bound
extraction — was selected. This module is the fix: profiling work travels
as plain data (:class:`LayerShard`), the worker (:func:`profile_shard`)
is a module-level function any ``ProcessPoolExecutor`` can import on the
other side, and results come back as plain data
(:class:`ShardProfileResult`) with per-layer failures captured instead of
raised, so one corrupt tarball cannot kill a shard of healthy ones.

Two transports for the blob bytes:

* in-memory stores ship the compressed payloads inside the shard (they
  must cross the process boundary anyway);
* :class:`~repro.registry.blobstore.DiskBlobStore` ships only its root
  path — each worker opens the store locally and reads its own shard,
  which keeps the parent's pickling cost at a few strings per layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyzer.extract import extract_and_profile
from repro.analyzer.profiles import LayerProfile
from repro.filetypes.catalog import TypeCatalog, default_catalog
from repro.parallel.partition import partition_work
from repro.registry.blobstore import BlobStore, DiskBlobStore


@dataclass(frozen=True)
class LayerShard:
    """One batch of layer-profiling work, shippable across processes.

    Exactly one blob transport is populated: ``blobs`` (payload bytes
    aligned with ``digests``) or ``blob_root`` (a DiskBlobStore root the
    worker reads from). ``catalog`` is ``None`` for the process-wide
    default catalog — the worker rebuilds it locally instead of unpickling
    a copy per shard.
    """

    index: int
    digests: tuple[str, ...]
    blobs: tuple[bytes, ...] | None = None
    blob_root: str | None = None
    catalog: TypeCatalog | None = None

    def __post_init__(self) -> None:
        if (self.blobs is None) == (self.blob_root is None):
            raise ValueError("exactly one of blobs/blob_root must be set")
        if self.blobs is not None and len(self.blobs) != len(self.digests):
            raise ValueError(
                f"{len(self.blobs)} blobs for {len(self.digests)} digests"
            )

    def __len__(self) -> int:
        return len(self.digests)


@dataclass
class ShardProfileResult:
    """What one shard produced: profiles for the layers that extracted,
    an error string per layer that did not. ``profiles`` keeps the shard's
    digest order; global ordering is the merger's job."""

    index: int
    profiles: list[LayerProfile] = field(default_factory=list)
    failures: dict[str, str] = field(default_factory=dict)


def profile_shard(shard: LayerShard) -> ShardProfileResult:
    """Profile every layer in *shard*; never raises for a bad layer.

    The per-layer measurement is :func:`~repro.analyzer.extract
    .extract_and_profile`; a layer whose blob is missing, whose gzip is
    corrupt, or whose tar is malformed lands in ``failures`` as
    ``"ExcType: detail"`` and its shard-mates are unaffected — at 1.8 M
    real-world layers, per-item breakage is a certainty the paper's
    30-day analysis job had to survive too.
    """
    catalog = shard.catalog if shard.catalog is not None else default_catalog()
    store = DiskBlobStore(shard.blob_root) if shard.blob_root is not None else None
    result = ShardProfileResult(index=shard.index)
    for i, digest in enumerate(shard.digests):
        try:
            blob = store.get(digest) if store is not None else shard.blobs[i]
            result.profiles.append(extract_and_profile(digest, blob, catalog))
        except Exception as exc:  # noqa: BLE001 — per-layer failures are data
            result.failures[digest] = f"{type(exc).__name__}: {exc}"
    return result


def build_shards(
    store: BlobStore,
    digests: list[str],
    n_shards: int,
    *,
    catalog: TypeCatalog | None = None,
) -> tuple[list[LayerShard], dict[str, str]]:
    """Partition *digests* into at most *n_shards* balanced shards.

    Shards are weighted by compressed blob size via
    :func:`~repro.parallel.partition.partition_work` (one 800k-file layer
    should not share a worker with another giant). Digests whose blobs are
    already missing are reported in the returned failure map rather than
    shipped. ``catalog`` is embedded only when it is not the process-wide
    default.
    """
    if n_shards <= 0:
        raise ValueError(f"need at least one shard, got {n_shards}")
    failures: dict[str, str] = {}
    weights: dict[str, int] = {}
    available: list[str] = []
    for digest in digests:
        try:
            weights[digest] = store.size(digest)
            available.append(digest)
        except Exception as exc:  # noqa: BLE001 — missing blob is a data point
            failures[digest] = f"{type(exc).__name__}: {exc}"

    ship_catalog = (
        catalog if catalog is not None and catalog is not default_catalog() else None
    )
    on_disk = isinstance(store, DiskBlobStore)
    parts = partition_work(
        available,
        min(n_shards, len(available)) or 1,
        weights=[weights[d] for d in available],
    )
    shards: list[LayerShard] = []
    for part in parts:
        if not part:
            continue
        if on_disk:
            shard = LayerShard(
                index=len(shards),
                digests=tuple(part),
                blob_root=str(store.root),
                catalog=ship_catalog,
            )
        else:
            shard = LayerShard(
                index=len(shards),
                digests=tuple(part),
                blobs=tuple(store.get(d) for d in part),
                catalog=ship_catalog,
            )
        shards.append(shard)
    return shards, failures
