"""Layer extraction: tarball bytes → a fully-populated LayerProfile.

This is the analyzer's hot path: decompress the gzip'd tarball, walk its
members, hash every file's content, identify its type by magic number, and
derive the directory metadata — the paper's per-layer measurement, end to
end, on real bytes.
"""

from __future__ import annotations

from collections import Counter

from repro.analyzer.profiles import DirectoryRecord, FileRecord, LayerProfile
from repro.filetypes.catalog import TypeCatalog, default_catalog
from repro.filetypes.classifier import classify_bytes
from repro.model.layer import parent_dirs
from repro.registry.tarball import extract_layer_tarball
from repro.util.digest import sha256_bytes


def extract_and_profile(
    digest: str, blob: bytes, catalog: TypeCatalog | None = None
) -> LayerProfile:
    """Extract a layer tarball and measure everything §III-C asks for."""
    catalog = catalog or default_catalog()
    files = extract_layer_tarball(blob)

    records: list[FileRecord] = []
    dir_file_counts: Counter[str] = Counter()
    all_dirs: set[str] = set()
    max_depth = 0
    files_size = 0

    for path, content in files:
        ancestors = parent_dirs(path)
        all_dirs.update(ancestors)
        if ancestors:
            dir_file_counts[ancestors[-1]] += 1
        depth = len(ancestors)
        if depth > max_depth:
            max_depth = depth
        files_size += len(content)
        records.append(
            FileRecord(
                path=path,
                digest=sha256_bytes(content),
                size=len(content),
                type_code=classify_bytes(path, content, catalog).code,
            )
        )

    directories = [
        DirectoryRecord(
            path=d, depth=d.count("/") + 1, file_count=dir_file_counts.get(d, 0)
        )
        for d in sorted(all_dirs)
    ]
    return LayerProfile(
        digest=digest,
        compressed_size=len(blob),
        files_size=files_size,
        file_count=len(records),
        directory_count=len(directories),
        max_depth=max_depth,
        files=records,
        directories=directories,
    )
