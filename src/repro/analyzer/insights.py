"""Anecdote-level findings from layer profiles — the paper's color commentary.

§IV/§V season the statistics with named findings: the most-repeated file is
empty (53.65 M copies), ~4 % of empty files are ``__init__.py``, the biggest
layer belonged to a Debian image, the top shared non-empty layer was a whole
Ubuntu 14.04.2 rootfs, Google Test sources are copied everywhere. This
module extracts the same kinds of findings from a :class:`ProfileStore` —
with real paths and digests, because materialized mode has them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import chain, count
from operator import attrgetter
from posixpath import basename

import numpy as np

from repro.analyzer.profiles import ProfileStore


@dataclass(frozen=True)
class RepeatedFile:
    digest: str
    size: int
    copies: int
    #: most common basenames this content appears under, with counts
    names: list[tuple[str, int]]

    @property
    def is_empty(self) -> bool:
        return self.size == 0


@dataclass(frozen=True)
class Insights:
    top_repeated_files: list[RepeatedFile]
    empty_file_copies: int  # total occurrences of zero-byte content
    empty_file_top_names: list[tuple[str, int]]
    biggest_layer_digest: str
    biggest_layer_files: int
    deepest_layer_digest: str
    deepest_layer_depth: int
    top_shared_layers: list[tuple[str, int]]  # (digest, image refs)
    top_shared_empty_refs: int  # refs of the most-shared file-less layer

    def summary_lines(self) -> list[str]:
        lines = [
            f"most repeated file: {self.top_repeated_files[0].copies:,} copies"
            + (" (empty)" if self.top_repeated_files[0].is_empty else "")
        ]
        if self.empty_file_top_names:
            name, count = self.empty_file_top_names[0]
            lines.append(
                f"empty files: {self.empty_file_copies:,} occurrences; "
                f"most common name {name!r} ({count:,}x)"
            )
        lines.append(
            f"biggest layer: {self.biggest_layer_files:,} files "
            f"({self.biggest_layer_digest[:19]}…)"
        )
        lines.append(f"deepest layer: depth {self.deepest_layer_depth}")
        if self.top_shared_layers:
            digest, refs = self.top_shared_layers[0]
            lines.append(f"most shared layer: {refs:,} images ({digest[:19]}…)")
        return lines


def extract_insights(store: ProfileStore, *, top_n: int = 5) -> Insights:
    """Mine the anecdotes out of profiled layers and images.

    The occurrence-sized work runs as C-level passes: one fused
    ``dict.setdefault`` factorize assigns every content digest its first
    occurrence position (``np.unique`` over the digest *strings* was
    measured ~5x slower — it has to sort the string column, while the
    dict hashes each digest once), then copy counting and ranking are
    ``np.bincount``/``argsort`` over the integer codes. Basename
    ``Counter``\\ s are built lazily, only for the digests that make a
    top list or hold empty content — never for the whole corpus.
    Ordering matches the ``Counter.most_common`` contract exactly: count
    descending, first-seen order breaking ties (pinned by
    ``tests/analyzer``).
    """
    layers = store.layers()
    if not layers:
        raise ValueError("no layer profiles to analyze")

    all_files = list(chain.from_iterable(map(attrgetter("files"), layers)))
    n_occurrences = len(all_files)

    if n_occurrences:
        # codes_pos[i] = index of the first occurrence of record i's digest
        table: dict[str, int] = {}
        codes_pos = np.fromiter(
            map(table.setdefault, map(attrgetter("digest"), all_files), count()),
            dtype=np.int64,
            count=n_occurrences,
        )
        first_seen = np.unique(codes_pos)  # ascending = first-seen digest order
        n_unique = first_seen.size
        remap = np.empty(n_occurrences, dtype=np.int64)
        remap[first_seen] = np.arange(n_unique, dtype=np.int64)
        codes = remap[codes_pos]  # dense ids, first-seen order
        counts = np.bincount(codes, minlength=n_unique)
        uniq_sizes = np.fromiter(
            (all_files[i].size for i in first_seen.tolist()),
            dtype=np.int64,
            count=n_unique,
        )

        # Counter.most_common order: count desc, first insertion on ties —
        # codes are already in first-seen order, so a stable sort suffices.
        ranked = np.argsort(-counts, kind="stable")
        empty_groups = np.flatnonzero(uniq_sizes == 0)

        # lazy basename tallies: only digests a caller will actually see
        wanted = np.zeros(n_unique, dtype=bool)
        wanted[ranked[:top_n]] = True
        wanted[empty_groups] = True
        name_counters: dict[int, Counter[str]] = {
            int(u): Counter() for u in np.flatnonzero(wanted)
        }
        sel = np.flatnonzero(wanted[codes])
        for i, u in zip(sel.tolist(), codes[sel].tolist()):
            name_counters[u][basename(all_files[i].path)] += 1

        top_repeated = [
            RepeatedFile(
                digest=all_files[first_seen[u]].digest,
                size=int(uniq_sizes[u]),
                copies=int(counts[u]),
                names=name_counters[u].most_common(3),
            )
            for u in ranked[:top_n].tolist()
        ]

        empty_copies = int(counts[empty_groups].sum())
        empty_names: Counter[str] = Counter()
        # first-seen digest order, as the original dict iteration had it
        for u in empty_groups.tolist():
            empty_names.update(name_counters[u])
        empty_top_names = empty_names.most_common(3)
    else:
        top_repeated = []
        empty_copies = 0
        empty_top_names = []

    file_counts = np.asarray([l.file_count for l in layers], dtype=np.int64)
    max_depths = np.asarray([l.max_depth for l in layers], dtype=np.int64)
    biggest = layers[int(np.argmax(file_counts))]  # argmax = first max, as max() was
    deepest = layers[int(np.argmax(max_depths))]

    layer_index = {layer.digest: i for i, layer in enumerate(layers)}
    flat_refs = np.asarray(
        [layer_index[d] for image in store.images() for d in image.layer_digests],
        dtype=np.int64,
    )
    if flat_refs.size:
        ref_counts = np.bincount(flat_refs, minlength=len(layers))
        ref_uniq, ref_first = np.unique(flat_refs, return_index=True)
        ranked_refs = np.lexsort((ref_first, -ref_counts[ref_uniq]))
        top_shared = [
            (layers[int(ref_uniq[r])].digest, int(ref_counts[ref_uniq[r]]))
            for r in ranked_refs[:top_n]
        ]
        empty_referenced = ref_uniq[file_counts[ref_uniq] == 0]
        empty_layer_refs = (
            int(ref_counts[empty_referenced].max()) if empty_referenced.size else 0
        )
    else:
        top_shared = []
        empty_layer_refs = 0

    return Insights(
        top_repeated_files=top_repeated,
        empty_file_copies=empty_copies,
        empty_file_top_names=empty_top_names,
        biggest_layer_digest=biggest.digest,
        biggest_layer_files=biggest.file_count,
        deepest_layer_digest=deepest.digest,
        deepest_layer_depth=deepest.max_depth,
        top_shared_layers=top_shared,
        top_shared_empty_refs=empty_layer_refs,
    )
