"""Anecdote-level findings from layer profiles — the paper's color commentary.

§IV/§V season the statistics with named findings: the most-repeated file is
empty (53.65 M copies), ~4 % of empty files are ``__init__.py``, the biggest
layer belonged to a Debian image, the top shared non-empty layer was a whole
Ubuntu 14.04.2 rootfs, Google Test sources are copied everywhere. This
module extracts the same kinds of findings from a :class:`ProfileStore` —
with real paths and digests, because materialized mode has them.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from posixpath import basename

from repro.analyzer.profiles import ProfileStore


@dataclass(frozen=True)
class RepeatedFile:
    digest: str
    size: int
    copies: int
    #: most common basenames this content appears under, with counts
    names: list[tuple[str, int]]

    @property
    def is_empty(self) -> bool:
        return self.size == 0


@dataclass(frozen=True)
class Insights:
    top_repeated_files: list[RepeatedFile]
    empty_file_copies: int  # total occurrences of zero-byte content
    empty_file_top_names: list[tuple[str, int]]
    biggest_layer_digest: str
    biggest_layer_files: int
    deepest_layer_digest: str
    deepest_layer_depth: int
    top_shared_layers: list[tuple[str, int]]  # (digest, image refs)
    top_shared_empty_refs: int  # refs of the most-shared file-less layer

    def summary_lines(self) -> list[str]:
        lines = [
            f"most repeated file: {self.top_repeated_files[0].copies:,} copies"
            + (" (empty)" if self.top_repeated_files[0].is_empty else "")
        ]
        if self.empty_file_top_names:
            name, count = self.empty_file_top_names[0]
            lines.append(
                f"empty files: {self.empty_file_copies:,} occurrences; "
                f"most common name {name!r} ({count:,}x)"
            )
        lines.append(
            f"biggest layer: {self.biggest_layer_files:,} files "
            f"({self.biggest_layer_digest[:19]}…)"
        )
        lines.append(f"deepest layer: depth {self.deepest_layer_depth}")
        if self.top_shared_layers:
            digest, refs = self.top_shared_layers[0]
            lines.append(f"most shared layer: {refs:,} images ({digest[:19]}…)")
        return lines


def extract_insights(store: ProfileStore, *, top_n: int = 5) -> Insights:
    """Mine the anecdotes out of profiled layers and images."""
    layers = store.layers()
    if not layers:
        raise ValueError("no layer profiles to analyze")

    copies: Counter[str] = Counter()
    sizes: dict[str, int] = {}
    names: dict[str, Counter[str]] = defaultdict(Counter)
    for layer in layers:
        for record in layer.files:
            copies[record.digest] += 1
            sizes[record.digest] = record.size
            names[record.digest][basename(record.path)] += 1

    top_repeated = [
        RepeatedFile(
            digest=digest,
            size=sizes[digest],
            copies=count,
            names=names[digest].most_common(3),
        )
        for digest, count in copies.most_common(top_n)
    ]

    empty_names: Counter[str] = Counter()
    empty_copies = 0
    for digest, count in copies.items():
        if sizes[digest] == 0:
            empty_copies += count
            empty_names.update(names[digest])

    biggest = max(layers, key=lambda l: l.file_count)
    deepest = max(layers, key=lambda l: l.max_depth)

    refs: Counter[str] = Counter()
    for image in store.images():
        refs.update(image.layer_digests)
    top_shared = refs.most_common(top_n)
    empty_layer_refs = max(
        (count for digest, count in refs.items() if store.layer(digest).file_count == 0),
        default=0,
    )

    return Insights(
        top_repeated_files=top_repeated,
        empty_file_copies=empty_copies,
        empty_file_top_names=empty_names.most_common(3),
        biggest_layer_digest=biggest.digest,
        biggest_layer_files=biggest.file_count,
        deepest_layer_digest=deepest.digest,
        deepest_layer_depth=deepest.max_depth,
        top_shared_layers=top_shared,
        top_shared_empty_refs=empty_layer_refs,
    )
