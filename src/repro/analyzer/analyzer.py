"""The analyzer driver: profile every unique layer, then every image.

Mirrors §III-C's two-phase structure: layers are extracted/profiled once
(in parallel — extraction and hashing are the CPU cost), image profiles are
then assembled from manifest metadata plus pointers to the layer profiles.

The layer phase is sharded: unique digests (minus profile-cache hits) are
partitioned into size-balanced batches (:func:`~repro.analyzer.shard
.build_shards`), dispatched through :func:`~repro.parallel.pool.map_shards`
to the module-level worker :func:`~repro.analyzer.shard.profile_shard` —
picklable, so ``mode="process"`` genuinely fans extraction out over cores —
and merged back deterministically in first-seen digest order, so serial,
thread, and process runs produce byte-identical datasets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analyzer.cache import ProfileCache
from repro.analyzer.profiles import ImageProfile, LayerProfile, ProfileStore
from repro.analyzer.shard import build_shards, profile_shard
from repro.downloader.downloader import DownloadedImage
from repro.filetypes.catalog import TypeCatalog, default_catalog
from repro.model.dataset import HubDataset
from repro.obs import MetricsRegistry
from repro.parallel.pool import ParallelConfig, map_shards
from repro.registry.blobstore import BlobStore


@dataclass
class AnalysisResult:
    """The analyzer's output: the profile store and its columnar dataset.

    ``failed_layers`` records layers whose blobs could not be extracted
    (missing, corrupt gzip, malformed tar); ``skipped_images`` the images
    that referenced them. At 1.8 M real-world layers some breakage is a
    certainty, and a 30-day analysis job must survive it.
    ``cache_stats`` is the profile-cache accounting for this run (all
    zeros when no cache was configured).
    """

    store: ProfileStore
    dataset: HubDataset
    failed_layers: dict[str, str] = None  # type: ignore[assignment]
    skipped_images: list[str] = None  # type: ignore[assignment]
    cache_stats: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.failed_layers is None:
            self.failed_layers = {}
        if self.skipped_images is None:
            self.skipped_images = []

    @property
    def n_layers(self) -> int:
        return self.store.n_layers

    @property
    def n_images(self) -> int:
        return self.store.n_images


class Analyzer:
    """Profiles downloaded images from a local blob store.

    With a :class:`~repro.analyzer.cache.ProfileCache`, layers whose
    profiles are already cached (same digest, same catalog version) skip
    extraction entirely — on an unchanged corpus a warm run re-extracts
    nothing, mirroring the paper's layer-dedup observation that most
    layers recur.
    """

    def __init__(
        self,
        blobs: BlobStore,
        *,
        catalog: TypeCatalog | None = None,
        parallel: ParallelConfig | None = None,
        cache: ProfileCache | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.blobs = blobs
        self.catalog = catalog or default_catalog()
        # extraction is CPU-bound; threads still help because gzip/hashlib
        # release the GIL, processes scale it across cores for real.
        self.parallel = parallel or ParallelConfig(mode="thread", chunk_size=8)
        if cache is not None and cache.catalog_version != self.catalog.version():
            raise ValueError(
                f"profile cache was built for catalog {cache.catalog_version}, "
                f"this analyzer runs {self.catalog.version()}"
            )
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def analyze(
        self,
        images: list[DownloadedImage],
        pull_counts: dict[str, int] | None = None,
    ) -> AnalysisResult:
        """Profile all unique layers referenced by *images*, then build
        image profiles and the columnar dataset.

        ``pull_counts`` (repo → pulls) attaches popularity metadata, which
        the crawler/registry knows but the blobs do not.
        """
        store = ProfileStore()

        unique_digests: list[str] = []
        seen: set[str] = set()
        for image in images:
            for digest in image.manifest.layer_digests:
                if digest not in seen:
                    seen.add(digest)
                    unique_digests.append(digest)

        profiles, failed = self._profile_layers(unique_digests)
        # deterministic merge: layers enter the store in first-seen digest
        # order, whatever shard (or cache) produced them
        for digest in unique_digests:
            profile = profiles.get(digest)
            if profile is not None:
                store.add_layer(profile)

        pull_counts = pull_counts or {}
        skipped: list[str] = []
        for image in images:
            if any(d in failed for d in image.manifest.layer_digests):
                skipped.append(image.repository)
                continue
            store.add_image(
                ImageProfile(
                    name=image.repository,
                    layer_digests=list(image.manifest.layer_digests),
                    compressed_size=image.manifest.total_layer_size,
                    pull_count=pull_counts.get(image.repository, 0),
                )
            )
        return AnalysisResult(
            store=store,
            dataset=store.to_dataset(),
            failed_layers=failed,
            skipped_images=skipped,
            cache_stats=(
                self.cache.stats.to_dict()
                if self.cache is not None
                else {"hits": 0, "misses": 0, "stores": 0, "discarded": 0}
            ),
        )

    # -- layer phase ----------------------------------------------------------

    def _profile_layers(
        self, digests: list[str]
    ) -> tuple[dict[str, LayerProfile], dict[str, str]]:
        """Resolve every digest to a profile (cache first, then sharded
        extraction) or a failure reason."""
        profiles: dict[str, LayerProfile] = {}
        failed: dict[str, str] = {}

        to_profile: list[str] = []
        for digest in digests:
            cached = self.cache.get(digest) if self.cache is not None else None
            if cached is not None:
                profiles[digest] = cached
            else:
                to_profile.append(digest)
        if self.cache is not None:
            hits = len(digests) - len(to_profile)
            self.metrics.counter(
                "analyzer_cache_hits_total", "layers served from the profile cache"
            ).inc(hits)
            self.metrics.counter(
                "analyzer_cache_misses_total", "layers that required extraction"
            ).inc(len(to_profile))
        if not to_profile:
            return profiles, failed

        n_shards = max(1, math.ceil(len(to_profile) / self.parallel.chunk_size))
        shards, missing = build_shards(
            self.blobs, to_profile, n_shards, catalog=self.catalog
        )
        failed.update(missing)

        for outcome in map_shards(
            profile_shard, shards, self.parallel, metrics=self.metrics
        ):
            if not outcome.ok:
                # the whole shard died (broken pool, unpicklable result);
                # every layer it carried is accounted for, not lost
                for digest in shards[outcome.index].digests:
                    failed[digest] = f"shard failed: {outcome.error}"
                continue
            result = outcome.value
            failed.update(result.failures)
            for profile in result.profiles:
                profiles[profile.digest] = profile
                if self.cache is not None:
                    self.cache.put(profile)

        self.metrics.counter(
            "analyzer_layers_profiled_total", "layers extracted and profiled"
        ).inc(len(to_profile) - sum(1 for d in to_profile if d in failed))
        self.metrics.counter(
            "analyzer_layers_failed_total", "layers that failed extraction"
        ).inc(sum(1 for d in to_profile if d in failed))
        return profiles, failed
