"""The analyzer driver: profile every unique layer, then every image.

Mirrors §III-C's two-phase structure: layers are extracted/profiled once
(in parallel — extraction and hashing are the CPU cost), image profiles are
then assembled from manifest metadata plus pointers to the layer profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyzer.extract import extract_and_profile
from repro.analyzer.profiles import ImageProfile, ProfileStore
from repro.downloader.downloader import DownloadedImage
from repro.filetypes.catalog import TypeCatalog, default_catalog
from repro.model.dataset import HubDataset
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.registry.blobstore import BlobStore


@dataclass
class AnalysisResult:
    """The analyzer's output: the profile store and its columnar dataset.

    ``failed_layers`` records layers whose blobs could not be extracted
    (missing, corrupt gzip, malformed tar); ``skipped_images`` the images
    that referenced them. At 1.8 M real-world layers some breakage is a
    certainty, and a 30-day analysis job must survive it.
    """

    store: ProfileStore
    dataset: HubDataset
    failed_layers: dict[str, str] = None  # type: ignore[assignment]
    skipped_images: list[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.failed_layers is None:
            self.failed_layers = {}
        if self.skipped_images is None:
            self.skipped_images = []

    @property
    def n_layers(self) -> int:
        return self.store.n_layers

    @property
    def n_images(self) -> int:
        return self.store.n_images


class Analyzer:
    """Profiles downloaded images from a local blob store."""

    def __init__(
        self,
        blobs: BlobStore,
        *,
        catalog: TypeCatalog | None = None,
        parallel: ParallelConfig | None = None,
    ):
        self.blobs = blobs
        self.catalog = catalog or default_catalog()
        # extraction is CPU-bound, but profiles must come back ordered;
        # threads still help because gzip/hashlib release the GIL.
        self.parallel = parallel or ParallelConfig(mode="thread", chunk_size=8)

    def analyze(
        self,
        images: list[DownloadedImage],
        pull_counts: dict[str, int] | None = None,
    ) -> AnalysisResult:
        """Profile all unique layers referenced by *images*, then build
        image profiles and the columnar dataset.

        ``pull_counts`` (repo → pulls) attaches popularity metadata, which
        the crawler/registry knows but the blobs do not.
        """
        store = ProfileStore()

        unique_digests: list[str] = []
        seen: set[str] = set()
        for image in images:
            for digest in image.manifest.layer_digests:
                if digest not in seen:
                    seen.add(digest)
                    unique_digests.append(digest)

        def _profile(digest: str):
            try:
                return extract_and_profile(digest, self.blobs.get(digest), self.catalog)
            except Exception as exc:  # corrupt gzip/tar, missing blob, ...
                return (digest, f"{type(exc).__name__}: {exc}")

        failed: dict[str, str] = {}
        for result in parallel_map(_profile, unique_digests, self.parallel):
            if isinstance(result, tuple):
                digest, error = result
                failed[digest] = error
            else:
                store.add_layer(result)

        pull_counts = pull_counts or {}
        skipped: list[str] = []
        for image in images:
            if any(d in failed for d in image.manifest.layer_digests):
                skipped.append(image.repository)
                continue
            store.add_image(
                ImageProfile(
                    name=image.repository,
                    layer_digests=list(image.manifest.layer_digests),
                    compressed_size=image.manifest.total_layer_size,
                    pull_count=pull_counts.get(image.repository, 0),
                )
            )
        return AnalysisResult(
            store=store,
            dataset=store.to_dataset(),
            failed_layers=failed,
            skipped_images=skipped,
        )
