"""Filesystem-walk profiling: the paper's literal analyzer behaviour.

§III-C: "the analyzer first decompresses and extracts each layer tarball to
a layer directory. Then, it recursively traverses each subdirectory and
obtains its metadata information." :func:`extract_to_directory` +
:func:`profile_directory` do exactly that — real files on a real
filesystem, `os.walk` traversal, `stat` metadata — and must produce the
same profile as the in-memory fast path (verified by tests).

The in-memory path (:mod:`repro.analyzer.extract`) is the default because
it avoids writing terabytes of small files; this mode exists for fidelity
and for analyzing layers somebody already extracted.
"""

from __future__ import annotations

import os
from collections import Counter
from pathlib import Path

from repro.analyzer.profiles import DirectoryRecord, FileRecord, LayerProfile
from repro.filetypes.catalog import TypeCatalog, default_catalog
from repro.filetypes.classifier import classify_bytes
from repro.registry.tarball import extract_layer_tarball
from repro.util.digest import sha256_bytes

#: how much of a file the classifier needs (tar magic sits at offset 257)
_SNIFF_BYTES = 4096


def extract_to_directory(blob: bytes, dest: str | Path) -> Path:
    """Extract a layer tarball into *dest* (created if needed).

    Reuses the hardened tar extraction (path-traversal members rejected,
    non-regular files skipped), then writes real files.
    """
    root = Path(dest)
    root.mkdir(parents=True, exist_ok=True)
    for path, content in extract_layer_tarball(blob):
        target = root / path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(content)
    return root


def profile_directory(
    digest: str,
    compressed_size: int,
    root: str | Path,
    catalog: TypeCatalog | None = None,
) -> LayerProfile:
    """Profile an extracted layer directory by walking the real filesystem."""
    catalog = catalog or default_catalog()
    root = Path(root)
    if not root.is_dir():
        raise NotADirectoryError(f"not an extracted layer directory: {root}")

    records: list[FileRecord] = []
    dir_file_counts: Counter[str] = Counter()
    all_dirs: set[str] = set()
    max_depth = 0
    files_size = 0

    for current, dirnames, filenames in os.walk(root):
        rel_dir = os.path.relpath(current, root)
        rel_dir = "" if rel_dir == "." else rel_dir.replace(os.sep, "/")
        if rel_dir:
            all_dirs.add(rel_dir)
        for dirname in dirnames:
            all_dirs.add(f"{rel_dir}/{dirname}" if rel_dir else dirname)
        for filename in sorted(filenames):
            full = Path(current) / filename
            rel = f"{rel_dir}/{filename}" if rel_dir else filename
            stat = full.stat()
            content = full.read_bytes()
            depth = rel.count("/")
            if depth > max_depth:
                max_depth = depth
            if rel_dir:
                dir_file_counts[rel_dir] += 1
            files_size += stat.st_size
            records.append(
                FileRecord(
                    path=rel,
                    digest=sha256_bytes(content),
                    size=stat.st_size,
                    type_code=classify_bytes(rel, content, catalog).code,
                )
            )

    records.sort(key=lambda r: r.path)
    directories = [
        DirectoryRecord(
            path=d, depth=d.count("/") + 1, file_count=dir_file_counts.get(d, 0)
        )
        for d in sorted(all_dirs)
    ]
    return LayerProfile(
        digest=digest,
        compressed_size=compressed_size,
        files_size=files_size,
        file_count=len(records),
        directory_count=len(directories),
        max_depth=max_depth,
        files=records,
        directories=directories,
    )


def extract_and_profile_on_disk(
    digest: str,
    blob: bytes,
    workdir: str | Path,
    catalog: TypeCatalog | None = None,
) -> LayerProfile:
    """Convenience wrapper: extract into ``workdir/<short digest>`` and
    profile the result (files are left in place for inspection)."""
    from repro.util.digest import short_digest

    root = extract_to_directory(blob, Path(workdir) / short_digest(digest))
    return profile_directory(digest, len(blob), root, catalog)
