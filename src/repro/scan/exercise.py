"""The ``repro scan --selfcheck`` invariant exercise.

Builds one materialized hub and scans it under every parallel mode, then
reruns warm, asserting the properties the subsystem promises:

1. the cold report is **byte-identical** across serial/thread/process;
2. ``unique_layer_scans`` equals the number of unique digests, and the
   savings ratio is exactly ``naive / unique`` (and >= 1);
3. a warm rerun performs **zero** extractions and reproduces the cold
   report byte-for-byte;
4. no layer fails on a healthy corpus.

Exit code 1 on any violation — this is the CI ``scan-smoke`` job.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import MetricsRegistry, counter_total
from repro.parallel.pool import ParallelConfig
from repro.scan.cache import ScanCache
from repro.scan.report import ScanReport
from repro.scan.scanner import DedupScanner, targets_from_truth
from repro.synth.config import SyntheticHubConfig
from repro.synth.hubgen import generate_dataset
from repro.synth.lineage import (
    LineageConfig,
    PackageModel,
    SyntheticCveDatabase,
    generate_lineage,
)
from repro.synth.materialize import materialize_registry

_MODES = ("serial", "thread", "process")


@dataclass
class ScanExerciseReport:
    """What the selfcheck measured, plus the pass/fail verdict per invariant."""

    seed: int
    scale: str
    modes: tuple[str, ...]
    n_images: int
    n_unique_layers: int
    savings_ratio: float
    warm_extractions: int
    invariants: dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.invariants.values())

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "scale": self.scale,
            "modes": list(self.modes),
            "n_images": self.n_images,
            "n_unique_layers": self.n_unique_layers,
            "savings_ratio": round(self.savings_ratio, 4),
            "warm_extractions": self.warm_extractions,
            "invariants": dict(sorted(self.invariants.items())),
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"scan selfcheck (seed {self.seed}, scale {self.scale}): "
            f"{self.n_images} images / {self.n_unique_layers} unique layers, "
            f"savings {self.savings_ratio:.2f}x",
        ]
        for name, passed in sorted(self.invariants.items()):
            lines.append(f"  [{'ok' if passed else 'FAIL'}] {name}")
        lines.append("selfcheck: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def run_scan_exercise(
    *,
    seed: int = 2017,
    scale: str = "tiny",
    modes: tuple[str, ...] = _MODES,
    workers: int | None = None,
) -> ScanExerciseReport:
    """Run the full selfcheck; deterministic in *seed*."""
    config = getattr(SyntheticHubConfig, scale)(seed=seed)
    dataset = generate_dataset(config)
    registry, truth = materialize_registry(
        dataset,
        fail_share=config.fail_share,
        fail_auth_share=config.fail_auth_share,
        seed=config.seed,
    )
    targets = targets_from_truth(registry, truth)
    lineage = generate_lineage(
        [t.name for t in targets],
        [t.pull_count for t in targets],
        LineageConfig(seed=seed),
    )
    model = PackageModel(seed=seed)
    db = SyntheticCveDatabase(seed=seed)

    def scan(mode: str, cache: ScanCache, metrics: MetricsRegistry) -> ScanReport:
        scanner = DedupScanner(
            registry.blobs,
            db,
            model,
            parallel=ParallelConfig(
                mode=mode, workers=workers, chunk_size=8, min_parallel_items=0
            ),
            cache=cache,
            metrics=metrics,
        )
        return scanner.scan(targets, lineage)

    reports: dict[str, str] = {}
    findings: dict[str, str] = {}
    warm_json = ""
    warm_extractions = 0
    reference: ScanReport | None = None
    with tempfile.TemporaryDirectory() as tmp:
        for mode in modes:
            cache = ScanCache(
                Path(tmp) / mode, db_version=db.version()
            )
            report = scan(mode, cache, MetricsRegistry())
            reports[mode] = report.to_json()
            findings[mode] = report.findings_json()
            if reference is None:
                reference = report
        # warm rerun over the first mode's populated cache
        warm_metrics = MetricsRegistry()
        warm_cache = ScanCache(Path(tmp) / modes[0], db_version=db.version())
        warm_json = scan("serial", warm_cache, warm_metrics).findings_json()
        warm_extractions = int(
            counter_total(warm_metrics, "scan_layers_extracted_total")
        )

    assert reference is not None
    expected_unique = len(
        {d for t in targets for d in t.layer_digests}
    )
    naive = sum(len(t.layer_digests) for t in targets)
    invariants = {
        "reports_identical_across_modes": len(set(reports.values())) == 1,
        "unique_scans_equal_unique_digests": (
            reference.unique_layer_scans == expected_unique
        ),
        "savings_ratio_is_naive_over_unique": (
            reference.savings_ratio * reference.unique_layer_scans == naive
            and reference.savings_ratio >= 1.0
        ),
        "warm_rerun_zero_extractions": warm_extractions == 0,
        "warm_findings_identical": warm_json == findings[modes[0]],
        "no_failed_layers": reference.n_failed_layers == 0,
    }
    return ScanExerciseReport(
        seed=seed,
        scale=scale,
        modes=tuple(modes),
        n_images=reference.n_images,
        n_unique_layers=reference.n_unique_layers,
        savings_ratio=reference.savings_ratio,
        warm_extractions=warm_extractions,
        invariants=invariants,
    )
