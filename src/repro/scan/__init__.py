"""Dedup-aware lineage + vulnerability scanning.

The paper's layer-dedup finding (§IV/§V) applied to security scanning:
each *unique* layer is extracted and matched against the CVE feed exactly
once — O(unique layers) instead of the naive O(images x layers) — with
results memoized in a disk-backed :class:`ScanCache` keyed by (layer
digest, CVE-feed version), and image exposure aggregated up the synthetic
lineage DAG from :mod:`repro.synth.lineage`. Entry point: ``repro scan``.
"""

from repro.scan.cache import ScanCache, ScanCacheStats
from repro.scan.exercise import ScanExerciseReport, run_scan_exercise
from repro.scan.records import LayerScanRecord, record_from_json, record_to_json
from repro.scan.report import DecileRollup, ImageExposure, ScanReport, TypeRollup
from repro.scan.scanner import DedupScanner, ScanTarget, targets_from_truth
from repro.scan.shard import (
    PackageInventory,
    ScanShard,
    ShardInventoryResult,
    build_scan_shards,
    extract_packages,
    scan_shard,
)

__all__ = [
    "DecileRollup",
    "DedupScanner",
    "ImageExposure",
    "LayerScanRecord",
    "PackageInventory",
    "ScanCache",
    "ScanCacheStats",
    "ScanExerciseReport",
    "ScanReport",
    "ScanShard",
    "ScanTarget",
    "ShardInventoryResult",
    "TypeRollup",
    "build_scan_shards",
    "extract_packages",
    "record_from_json",
    "record_to_json",
    "run_scan_exercise",
    "scan_shard",
    "targets_from_truth",
]
