"""The module-level, picklable shard worker for package extraction.

Mirrors :mod:`repro.analyzer.shard`: inventory-extraction work travels as
plain data (:class:`ScanShard`), the worker (:func:`scan_shard`) is a
module-level function any ``ProcessPoolExecutor`` can import on the other
side, and results come back as plain data (:class:`ShardInventoryResult`)
with per-layer failures captured instead of raised — one rotted blob
cannot kill a shard of healthy ones.

Extraction re-hashes the blob against its digest before deriving the
inventory, so at-rest corruption surfaces as a per-layer
``DigestMismatchError`` failure, never as a silently wrong inventory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.partition import partition_work
from repro.registry.blobstore import BlobStore, DiskBlobStore
from repro.registry.errors import DigestMismatchError
from repro.synth.lineage import PackageModel
from repro.util.digest import sha256_bytes


@dataclass(frozen=True)
class PackageInventory:
    """What extraction found inside one layer: its ``name@version`` set."""

    digest: str
    compressed_size: int
    packages: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class ScanShard:
    """One batch of inventory-extraction work, shippable across processes.

    Exactly one blob transport is populated: ``blobs`` (payload bytes
    aligned with ``digests``) or ``blob_root`` (a DiskBlobStore root the
    worker reads from). The :class:`PackageModel` rides along — it is a
    small frozen dataclass, and shipping it keeps the worker a pure
    function of its shard.
    """

    index: int
    digests: tuple[str, ...]
    model: PackageModel
    blobs: tuple[bytes, ...] | None = None
    blob_root: str | None = None

    def __post_init__(self) -> None:
        if (self.blobs is None) == (self.blob_root is None):
            raise ValueError("exactly one of blobs/blob_root must be set")
        if self.blobs is not None and len(self.blobs) != len(self.digests):
            raise ValueError(
                f"{len(self.blobs)} blobs for {len(self.digests)} digests"
            )

    def __len__(self) -> int:
        return len(self.digests)


@dataclass
class ShardInventoryResult:
    """What one shard produced: inventories for the layers that extracted,
    an error string per layer that did not. ``inventories`` keeps the
    shard's digest order; global ordering is the merger's job."""

    index: int
    inventories: list[PackageInventory] = field(default_factory=list)
    failures: dict[str, str] = field(default_factory=dict)


def extract_packages(
    digest: str, blob: bytes, model: PackageModel
) -> PackageInventory:
    """Extract one layer's package inventory from its bytes.

    The blob is re-hashed first: a stored blob whose content no longer
    matches its digest raises :class:`DigestMismatchError` (the scanner
    records it as a failed layer) instead of yielding an inventory for
    bytes nobody pushed.
    """
    actual = sha256_bytes(blob)
    if actual != digest:
        raise DigestMismatchError(expected=digest, actual=actual)
    return PackageInventory(
        digest=digest,
        compressed_size=len(blob),
        packages=model.packages_for_layer(digest),
    )


def scan_shard(shard: ScanShard) -> ShardInventoryResult:
    """Extract every layer in *shard*; never raises for a bad layer."""
    store = DiskBlobStore(shard.blob_root) if shard.blob_root is not None else None
    result = ShardInventoryResult(index=shard.index)
    for i, digest in enumerate(shard.digests):
        try:
            blob = store.get(digest) if store is not None else shard.blobs[i]
            result.inventories.append(extract_packages(digest, blob, shard.model))
        except Exception as exc:  # noqa: BLE001 — per-layer failures are data
            result.failures[digest] = f"{type(exc).__name__}: {exc}"
    return result


def build_scan_shards(
    store: BlobStore,
    digests: list[str],
    n_shards: int,
    model: PackageModel,
) -> tuple[list[ScanShard], dict[str, str]]:
    """Partition *digests* into at most *n_shards* size-balanced shards.

    Same transport rules as the profiling shards: a
    :class:`DiskBlobStore` ships only its root path (workers read their
    own shard locally), in-memory stores ship the bytes. Digests whose
    blobs are already missing are reported in the returned failure map
    rather than shipped.
    """
    if n_shards <= 0:
        raise ValueError(f"need at least one shard, got {n_shards}")
    failures: dict[str, str] = {}
    weights: dict[str, int] = {}
    available: list[str] = []
    for digest in digests:
        try:
            weights[digest] = store.size(digest)
            available.append(digest)
        except Exception as exc:  # noqa: BLE001 — missing blob is a data point
            failures[digest] = f"{type(exc).__name__}: {exc}"

    on_disk = isinstance(store, DiskBlobStore)
    parts = partition_work(
        available,
        min(n_shards, len(available)) or 1,
        weights=[weights[d] for d in available],
    )
    shards: list[ScanShard] = []
    for part in parts:
        if not part:
            continue
        if on_disk:
            shard = ScanShard(
                index=len(shards),
                digests=tuple(part),
                model=model,
                blob_root=str(store.root),
            )
        else:
            shard = ScanShard(
                index=len(shards),
                digests=tuple(part),
                model=model,
                blobs=tuple(store.get(d) for d in part),
            )
        shards.append(shard)
    return shards, failures
