"""The scanner's per-layer result record and its JSON codec.

A :class:`LayerScanRecord` is what scanning one unique layer produces —
the package inventory extracted from its bytes plus every vulnerability
the CVE feed matched against it. It is the scan cache's payload, so the
codec here is the cache's on-disk body format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synth.lineage import SEVERITIES, Vulnerability


@dataclass(frozen=True)
class LayerScanRecord:
    """One unique layer's scan result, valid for one CVE-feed version."""

    digest: str
    compressed_size: int
    packages: tuple[tuple[str, str], ...]
    vulns: tuple[Vulnerability, ...]

    @property
    def n_packages(self) -> int:
        return len(self.packages)

    def severity_counts(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for vuln in self.vulns:
            counts[vuln.severity] += 1
        return counts


def record_to_json(record: LayerScanRecord) -> dict:
    """The canonical JSON document for one layer scan record."""
    return {
        "kind": "layer_scan",
        "digest": record.digest,
        "compressed_size": record.compressed_size,
        "packages": [[name, version] for name, version in record.packages],
        "vulns": [
            [v.id, v.package, v.version, v.severity] for v in record.vulns
        ],
    }


def record_from_json(doc: dict) -> LayerScanRecord:
    """Rebuild a :class:`LayerScanRecord` from :func:`record_to_json`."""
    return LayerScanRecord(
        digest=doc["digest"],
        compressed_size=doc["compressed_size"],
        packages=tuple((name, version) for name, version in doc["packages"]),
        vulns=tuple(
            Vulnerability(id=i, package=p, version=v, severity=s)
            for i, p, v, s in doc["vulns"]
        ),
    )
