"""The scan report: exposure rollups plus the dedup-savings accounting.

Everything here is deterministic data — no wall-clock timings — so a
report is byte-identical for a fixed seed across serial, thread, and
process scans (the property ``repro scan --selfcheck`` asserts). Timing
lives in the obs metrics and the bench harness instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.synth.lineage import SEVERITIES


@dataclass(frozen=True)
class ImageExposure:
    """One image's aggregated vulnerability exposure.

    ``by_severity`` is aligned with :data:`~repro.synth.lineage.SEVERITIES`.
    ``n_inherited`` counts vulnerabilities present in a base image (an
    ancestor in the lineage DAG) but not introduced by this image's own
    layers; ``n_introduced`` the converse. ``partial`` flags images with
    at least one layer that failed to scan — their exposure is a lower
    bound, never silently complete.
    """

    name: str
    official: bool
    parent: str | None
    depth: int
    pull_count: int
    n_layers: int
    n_scanned_layers: int
    partial: bool
    n_vulns: int
    n_inherited: int
    n_introduced: int
    by_severity: tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "official": self.official,
            "parent": self.parent,
            "depth": self.depth,
            "pull_count": self.pull_count,
            "n_layers": self.n_layers,
            "n_scanned_layers": self.n_scanned_layers,
            "partial": self.partial,
            "n_vulns": self.n_vulns,
            "n_inherited": self.n_inherited,
            "n_introduced": self.n_introduced,
            "by_severity": dict(zip(SEVERITIES, self.by_severity)),
        }


@dataclass(frozen=True)
class TypeRollup:
    """Exposure aggregated over one repository type (official/community)."""

    label: str
    n_images: int
    n_vulns_total: int
    mean_vulns_per_image: float
    by_severity: tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "n_images": self.n_images,
            "n_vulns_total": self.n_vulns_total,
            "mean_vulns_per_image": round(self.mean_vulns_per_image, 4),
            "by_severity": dict(zip(SEVERITIES, self.by_severity)),
        }


@dataclass(frozen=True)
class DecileRollup:
    """Exposure aggregated over one popularity decile (0 = most pulled)."""

    decile: int
    n_images: int
    mean_vulns_per_image: float
    max_vulns: int
    images_with_critical: int

    def to_dict(self) -> dict:
        return {
            "decile": self.decile,
            "n_images": self.n_images,
            "mean_vulns_per_image": round(self.mean_vulns_per_image, 4),
            "max_vulns": self.max_vulns,
            "images_with_critical": self.images_with_critical,
        }


@dataclass
class ScanReport:
    """Everything one dedup-aware scan produced.

    The dedup-savings block is the headline: ``naive_layer_scans`` is what
    an O(images x layers) scanner would have extracted,
    ``unique_layer_scans`` what this scanner actually did (== the number
    of unique digests), and ``savings_ratio`` their quotient — the §IV/§V
    layer-sharing result turned into scan throughput.
    """

    db_version: str
    n_images: int
    n_unique_layers: int
    naive_layer_scans: int
    unique_layer_scans: int
    n_extracted: int
    n_cache_hits: int
    n_failed_layers: int
    severity_totals: dict[str, int] = field(default_factory=dict)
    n_unique_vulns: int = 0
    images: list[ImageExposure] = field(default_factory=list)
    by_type: list[TypeRollup] = field(default_factory=list)
    by_decile: list[DecileRollup] = field(default_factory=list)
    failed_layers: dict[str, str] = field(default_factory=dict)

    @property
    def scans_avoided(self) -> int:
        return self.naive_layer_scans - self.unique_layer_scans

    @property
    def savings_ratio(self) -> float:
        if self.unique_layer_scans == 0:
            return 1.0
        return self.naive_layer_scans / self.unique_layer_scans

    def top_images(self, n: int = 10) -> list[ImageExposure]:
        """The *n* most exposed images (deterministic tie-break by name)."""
        return sorted(self.images, key=lambda e: (-e.n_vulns, e.name))[:n]

    def to_dict(self) -> dict:
        return {
            "db_version": self.db_version,
            "n_images": self.n_images,
            "n_unique_layers": self.n_unique_layers,
            "dedup_savings": {
                "naive_layer_scans": self.naive_layer_scans,
                "unique_layer_scans": self.unique_layer_scans,
                "scans_avoided": self.scans_avoided,
                "savings_ratio": round(self.savings_ratio, 4),
            },
            "cache": {
                "extracted": self.n_extracted,
                "hits": self.n_cache_hits,
            },
            "n_failed_layers": self.n_failed_layers,
            "failed_layers": dict(sorted(self.failed_layers.items())),
            "severity_totals": {
                severity: self.severity_totals.get(severity, 0)
                for severity in SEVERITIES
            },
            "n_unique_vulns": self.n_unique_vulns,
            "by_type": [rollup.to_dict() for rollup in self.by_type],
            "by_decile": [rollup.to_dict() for rollup in self.by_decile],
            "images": [exposure.to_dict() for exposure in self.images],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def findings_dict(self) -> dict:
        """:meth:`to_dict` minus the per-run ``cache`` block.

        Extracted-vs-cached is a property of the *run* (a warm rerun does
        less work), not of the corpus; everything else — exposure, rollups,
        savings — must be byte-identical however the layers were resolved.
        """
        doc = self.to_dict()
        del doc["cache"]
        return doc

    def findings_json(self) -> str:
        return json.dumps(self.findings_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """A human-readable summary of the scan."""
        lines = [
            f"scan: {self.n_images:,} images over {self.n_unique_layers:,} "
            f"unique layers (CVE feed {self.db_version})",
            f"  dedup savings: {self.unique_layer_scans:,} unique-layer scans "
            f"vs {self.naive_layer_scans:,} naive per-image scans "
            f"-> {self.savings_ratio:.2f}x ({self.scans_avoided:,} avoided)",
            f"  cache: {self.n_extracted:,} extracted, "
            f"{self.n_cache_hits:,} served from cache, "
            f"{self.n_failed_layers} failed",
            "  vulnerabilities (unique): "
            + ", ".join(
                f"{severity} {self.severity_totals.get(severity, 0):,}"
                for severity in SEVERITIES
            ),
        ]
        for rollup in self.by_type:
            lines.append(
                f"  {rollup.label:<9} {rollup.n_images:>5,} images, "
                f"mean {rollup.mean_vulns_per_image:6.1f} vulns/image"
            )
        top = self.top_images(5)
        if top:
            lines.append("  most exposed:")
            for exposure in top:
                flag = " (partial)" if exposure.partial else ""
                lines.append(
                    f"    {exposure.name:<24} {exposure.n_vulns:>5,} vulns "
                    f"({exposure.n_inherited:,} inherited){flag}"
                )
        return "\n".join(lines)
