"""A disk-backed, content-addressed cache of layer scan results.

The scanning analogue of :class:`~repro.analyzer.cache.ProfileCache`,
built on the same shared framing
(:class:`~repro.util.entrycache.SelfVerifyingCache`). The cache maps

    (layer digest, CVE-feed version)  ->  LayerScanRecord

so a layer scanned once under one feed generation is never extracted or
matched again — and a new feed drop (a bumped
:meth:`~repro.synth.lineage.SyntheticCveDatabase.version`) silently
misses every old entry instead of serving stale verdicts. Entries are
self-verifying (magic + checksum + embedded digest); corrupt entries are
discarded, counted, deleted, and simply re-scanned. Inject that rot with
:func:`repro.faults.corrupt_at_rest` on :attr:`ScanCache.store`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import MetricsRegistry
from repro.registry.blobstore import BlobStore
from repro.scan.records import LayerScanRecord, record_from_json, record_to_json
from repro.util.entrycache import EntryCacheStats, SelfVerifyingCache

_MAGIC = b"repro-scan-cache/v1"

#: the scan cache shares the common stats record.
ScanCacheStats = EntryCacheStats


class ScanCache(SelfVerifyingCache):
    """Persistent (layer digest, CVE-feed version) -> scan-record cache.

    ``root_or_store`` is either a directory (a DiskBlobStore is created
    under it) or any ready-made :class:`BlobStore`. ``db_version`` is the
    feed generation the cached verdicts are valid for — pass
    ``SyntheticCveDatabase.version()``.
    """

    MAGIC = _MAGIC
    METRIC_PREFIX = "scan_cache"

    def __init__(
        self,
        root_or_store: str | Path | BlobStore,
        *,
        db_version: str,
        metrics: MetricsRegistry | None = None,
    ):
        super().__init__(root_or_store, version=db_version, metrics=metrics)

    @property
    def db_version(self) -> str:
        """The CVE-feed generation this cache's verdicts are valid for."""
        return self.version

    # -- codec hooks ----------------------------------------------------------

    def _encode_body(self, record: LayerScanRecord) -> bytes:
        return json.dumps(
            record_to_json(record), separators=(",", ":"), sort_keys=True
        ).encode()

    def _decode_body(self, body: bytes) -> LayerScanRecord:
        return record_from_json(json.loads(body))

    def _digest_of(self, record: LayerScanRecord) -> str:
        return record.digest
