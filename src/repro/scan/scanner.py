"""The dedup-aware vulnerability scanner.

A naive scanner extracts every layer of every image — O(images x layers).
The paper's layer-sharing result (§V-A) says most of that work is
duplicated, so :class:`DedupScanner` does the O(unique layers) version:

1. collect unique layer digests in first-seen order across all targets;
2. resolve each against the :class:`~repro.scan.cache.ScanCache`
   (keyed by CVE-feed version — a new feed drop misses cleanly);
3. extract the misses **once each**, sharded and size-balanced through
   :func:`~repro.parallel.pool.map_shards` (failures come back as data);
4. match inventories against the CVE feed, write the cache, and
   aggregate image exposure up the lineage DAG — a child is exposed to
   everything its base images ship.

Serial, thread, and process runs produce byte-identical reports: shard
results merge in first-seen digest order and every synthetic draw is a
pure function of its seed path.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.obs import MetricsRegistry
from repro.parallel.pool import ParallelConfig, map_shards
from repro.registry.blobstore import BlobStore
from repro.registry.registry import Registry
from repro.scan.cache import ScanCache
from repro.scan.records import LayerScanRecord
from repro.scan.report import DecileRollup, ImageExposure, ScanReport, TypeRollup
from repro.scan.shard import build_scan_shards, scan_shard
from repro.synth.lineage import (
    SEVERITIES,
    ImageLineage,
    PackageModel,
    SyntheticCveDatabase,
    is_official,
)
from repro.synth.materialize import GroundTruth


@dataclass(frozen=True)
class ScanTarget:
    """One image to scan: its manifest's layer digests plus popularity."""

    name: str
    layer_digests: tuple[str, ...]
    pull_count: int = 0


def targets_from_truth(registry: Registry, truth: GroundTruth) -> list[ScanTarget]:
    """Scan targets for every successfully materialized image, in dataset
    order (deterministic, so first-seen digest order is too)."""
    targets: list[ScanTarget] = []
    for name, manifest_digest in truth.images.items():
        manifest = registry.get_manifest(name, manifest_digest)
        targets.append(
            ScanTarget(
                name=name,
                layer_digests=tuple(manifest.layer_digests),
                pull_count=registry.repository(name).pull_count,
            )
        )
    return targets


class DedupScanner:
    """Scans images for vulnerabilities, extracting each unique layer once.

    ``blobs`` is where layer bytes live (the registry's store or a
    downloader's destination), ``db`` the CVE feed to match against,
    ``model`` the package-inventory model. With a ``cache``, layers
    scanned under the same feed version are never extracted again — a
    warm run over an unchanged corpus performs zero extractions.
    """

    def __init__(
        self,
        blobs: BlobStore,
        db: SyntheticCveDatabase,
        model: PackageModel | None = None,
        *,
        parallel: ParallelConfig | None = None,
        cache: ScanCache | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.blobs = blobs
        self.db = db
        self.model = model or PackageModel()
        self.parallel = parallel or ParallelConfig(mode="thread", chunk_size=8)
        if cache is not None and cache.db_version != db.version():
            raise ValueError(
                f"scan cache was built for CVE feed {cache.db_version}, "
                f"this scanner runs {db.version()}"
            )
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- the scan -------------------------------------------------------------

    def scan(
        self,
        targets: list[ScanTarget],
        lineage: ImageLineage | None = None,
    ) -> ScanReport:
        """Scan *targets*, aggregating exposure up *lineage* when given."""
        started = time.perf_counter()

        unique_digests: list[str] = []
        seen: set[str] = set()
        for target in targets:
            for digest in target.layer_digests:
                if digest not in seen:
                    seen.add(digest)
                    unique_digests.append(digest)

        records, failed, n_hits = self._scan_layers(unique_digests)
        report = self._aggregate(
            targets, lineage, records, failed, n_hits, len(unique_digests)
        )

        self.metrics.counter(
            "scan_images_total", "images aggregated by the scanner"
        ).inc(len(targets))
        for severity in SEVERITIES:
            count = report.severity_totals.get(severity, 0)
            if count:
                self.metrics.counter(
                    "scan_vulns_total",
                    "unique vulnerabilities found, by severity",
                    severity=severity,
                ).inc(count)
        self.metrics.histogram(
            "scan_seconds", "wall time of whole scan() calls"
        ).observe(time.perf_counter() - started)
        return report

    # -- layer phase ----------------------------------------------------------

    def _scan_layers(
        self, digests: list[str]
    ) -> tuple[dict[str, LayerScanRecord], dict[str, str], int]:
        """Resolve every digest to a scan record (cache first, then sharded
        extraction) or a failure reason. Returns (records, failures, hits)."""
        records: dict[str, LayerScanRecord] = {}
        failed: dict[str, str] = {}

        to_extract: list[str] = []
        for digest in digests:
            cached = self.cache.get(digest) if self.cache is not None else None
            if cached is not None:
                records[digest] = cached
            else:
                to_extract.append(digest)
        n_hits = len(digests) - len(to_extract)
        self.metrics.counter(
            "scan_layers_cached_total", "layers served from the scan cache"
        ).inc(n_hits)
        if not to_extract:
            self.metrics.counter(
                "scan_layers_extracted_total",
                "layers whose packages were extracted",
            ).inc(0)
            return records, failed, n_hits

        n_shards = max(1, math.ceil(len(to_extract) / self.parallel.chunk_size))
        shards, missing = build_scan_shards(
            self.blobs, to_extract, n_shards, self.model
        )
        failed.update(missing)

        inventories = {}
        for outcome in map_shards(
            scan_shard, shards, self.parallel, metrics=self.metrics
        ):
            if not outcome.ok:
                # the whole shard died; every layer it carried is accounted for
                for digest in shards[outcome.index].digests:
                    failed[digest] = f"shard failed: {outcome.error}"
                continue
            failed.update(outcome.value.failures)
            for inventory in outcome.value.inventories:
                inventories[inventory.digest] = inventory

        # deterministic merge: records enter in first-seen digest order,
        # whatever shard produced them; vuln matching is driver-side so the
        # feed stays in one place
        for digest in to_extract:
            inventory = inventories.get(digest)
            if inventory is None:
                continue
            vulns = tuple(
                vuln
                for name, version in inventory.packages
                for vuln in self.db.vulnerabilities(name, version)
            )
            record = LayerScanRecord(
                digest=digest,
                compressed_size=inventory.compressed_size,
                packages=inventory.packages,
                vulns=vulns,
            )
            records[digest] = record
            if self.cache is not None:
                self.cache.put(record)
            self.metrics.histogram(
                "scan_layer_packages", "packages extracted per layer"
            ).observe(len(inventory.packages))

        self.metrics.counter(
            "scan_layers_extracted_total", "layers whose packages were extracted"
        ).inc(len(to_extract) - sum(1 for d in to_extract if d in failed))
        self.metrics.counter(
            "scan_layers_failed_total", "layers that failed extraction"
        ).inc(sum(1 for d in to_extract if d in failed))
        return records, failed, n_hits

    # -- image aggregation ----------------------------------------------------

    def _aggregate(
        self,
        targets: list[ScanTarget],
        lineage: ImageLineage | None,
        records: dict[str, LayerScanRecord],
        failed: dict[str, str],
        n_hits: int,
        n_unique: int,
    ) -> ScanReport:
        severity_of: dict[tuple[str, str, str], str] = {}
        for record in records.values():
            for vuln in record.vulns:
                severity_of[vuln.key] = vuln.severity

        own_sets: dict[str, set[tuple[str, str, str]]] = {}
        scanned_counts: dict[str, int] = {}
        for target in targets:
            own: set[tuple[str, str, str]] = set()
            n_scanned = 0
            for digest in target.layer_digests:
                record = records.get(digest)
                if record is None:
                    continue
                n_scanned += 1
                own.update(vuln.key for vuln in record.vulns)
            own_sets[target.name] = own
            scanned_counts[target.name] = n_scanned

        exposures: list[ImageExposure] = []
        for target in targets:
            own = own_sets[target.name]
            inherited: set[tuple[str, str, str]] = set()
            parent = None
            depth = 0
            if lineage is not None and target.name in lineage:
                node = lineage.node(target.name)
                parent, depth = node.parent, node.depth
                for ancestor in lineage.ancestors(target.name):
                    ancestor_own = own_sets.get(ancestor)
                    if ancestor_own is not None:
                        inherited.update(ancestor_own)
            exposure = own | inherited
            by_severity = {severity: 0 for severity in SEVERITIES}
            for key in exposure:
                by_severity[severity_of[key]] += 1
            exposures.append(
                ImageExposure(
                    name=target.name,
                    official=is_official(target.name),
                    parent=parent,
                    depth=depth,
                    pull_count=target.pull_count,
                    n_layers=len(target.layer_digests),
                    n_scanned_layers=scanned_counts[target.name],
                    partial=scanned_counts[target.name] < len(target.layer_digests),
                    n_vulns=len(exposure),
                    n_inherited=len(inherited - own),
                    n_introduced=len(own - inherited),
                    by_severity=tuple(
                        by_severity[severity] for severity in SEVERITIES
                    ),
                )
            )

        corpus_by_severity = {severity: 0 for severity in SEVERITIES}
        for key, severity in severity_of.items():
            corpus_by_severity[severity] += 1

        return ScanReport(
            db_version=self.db.version(),
            n_images=len(targets),
            n_unique_layers=n_unique,
            naive_layer_scans=sum(len(t.layer_digests) for t in targets),
            unique_layer_scans=n_unique,
            n_extracted=n_unique - n_hits - len(failed),
            n_cache_hits=n_hits,
            n_failed_layers=len(failed),
            severity_totals=corpus_by_severity,
            n_unique_vulns=len(severity_of),
            images=exposures,
            by_type=_type_rollups(exposures),
            by_decile=_decile_rollups(exposures),
            failed_layers=failed,
        )


def _type_rollups(exposures: list[ImageExposure]) -> list[TypeRollup]:
    rollups = []
    for label, predicate in (
        ("official", lambda e: e.official),
        ("community", lambda e: not e.official),
    ):
        members = [e for e in exposures if predicate(e)]
        if not members:
            continue
        by_severity = tuple(
            sum(e.by_severity[i] for e in members) for i in range(len(SEVERITIES))
        )
        total = sum(e.n_vulns for e in members)
        rollups.append(
            TypeRollup(
                label=label,
                n_images=len(members),
                n_vulns_total=total,
                mean_vulns_per_image=total / len(members),
                by_severity=by_severity,
            )
        )
    return rollups


def _decile_rollups(exposures: list[ImageExposure]) -> list[DecileRollup]:
    if not exposures:
        return []
    critical_index = SEVERITIES.index("critical")
    ranked = sorted(exposures, key=lambda e: (-e.pull_count, e.name))
    buckets: dict[int, list[ImageExposure]] = {}
    for i, exposure in enumerate(ranked):
        buckets.setdefault(i * 10 // len(ranked), []).append(exposure)
    return [
        DecileRollup(
            decile=decile,
            n_images=len(members),
            mean_vulns_per_image=sum(e.n_vulns for e in members) / len(members),
            max_vulns=max(e.n_vulns for e in members),
            images_with_critical=sum(
                1 for e in members if e.by_severity[critical_index] > 0
            ),
        )
        for decile, members in sorted(buckets.items())
    ]
