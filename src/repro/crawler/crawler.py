"""Hub crawler (§III-A of the paper).

Docker Hub had no repository-enumeration API, so the paper's crawler
searched the web UI for ``"/"`` (every non-official repository name contains
one), paged through all results, and deduplicated the entries the sharded
index returned multiple times: 634,412 raw rows → 457,627 distinct
repositories. Official repositories (< 200) come from the curated list.

This crawler does exactly that against the registry substrate's
:class:`~repro.registry.search.HubSearchEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.registry.search import HubSearchEngine

#: Every non-official repository name is ``<user>/<repo>``.
SLASH_QUERY = "/"


@dataclass
class CrawlResult:
    """What a crawl produced, including the §III-A accounting."""

    repositories: list[str] = field(default_factory=list)
    raw_result_count: int = 0
    duplicate_count: int = 0
    pages_fetched: int = 0
    official_count: int = 0

    @property
    def distinct_count(self) -> int:
        return len(self.repositories)

    def summary(self) -> dict[str, int]:
        return {
            "raw_results": self.raw_result_count,
            "duplicates_removed": self.duplicate_count,
            "distinct_repositories": self.distinct_count,
            "official_repositories": self.official_count,
            "pages_fetched": self.pages_fetched,
        }


class HubCrawler:
    """Enumerates all public repositories via search pagination."""

    def __init__(self, search: HubSearchEngine, *, max_pages: int | None = None):
        self.search = search
        self.max_pages = max_pages

    def crawl(self, *, checkpoint=None) -> CrawlResult:
        """Run the full crawl: officials + paged "/" search, deduplicated.

        Deduplication preserves first-seen order, like the paper's list
        (the exact order only matters for reproducibility of downstream
        sampling).

        With a :class:`~repro.crawler.checkpoint.CrawlCheckpoint`, state
        is journaled after every page; a crawler killed mid-run resumes
        from the next unfetched page with no re-counted rows, and a crawl
        the checkpoint marks done returns the stored result untouched.
        """
        result = CrawlResult()
        page_num = 1
        if checkpoint is not None:
            restored = checkpoint.load()
            if restored is not None:
                result, page_num, done = restored
                if done:
                    return result
        seen: set[str] = set(result.repositories)

        if not result.pages_fetched and not result.repositories:
            for name in self.search.official_repositories():
                if name not in seen:
                    seen.add(name)
                    result.repositories.append(name)
            result.official_count = len(result.repositories)
            if checkpoint is not None:
                checkpoint.save(result, next_page=page_num, done=False)

        while True:
            if self.max_pages is not None and page_num > self.max_pages:
                break
            page = self.search.search(SLASH_QUERY, page=page_num)
            result.pages_fetched += 1
            for name in page.results:
                result.raw_result_count += 1
                if name in seen:
                    result.duplicate_count += 1
                else:
                    seen.add(name)
                    result.repositories.append(name)
            if not page.has_next:
                break
            page_num += 1
            if checkpoint is not None:
                checkpoint.save(result, next_page=page_num, done=False)
        if checkpoint is not None:
            checkpoint.save(result, next_page=page_num, done=True)
        return result
