"""The crawler: enumerate every repository in the Hub (§III-A)."""

from repro.crawler.crawler import CrawlResult, HubCrawler

__all__ = ["CrawlResult", "HubCrawler"]
