"""The crawler: enumerate every repository in the Hub (§III-A)."""

from repro.crawler.checkpoint import CrawlCheckpoint
from repro.crawler.crawler import CrawlResult, HubCrawler

__all__ = ["CrawlCheckpoint", "CrawlResult", "HubCrawler"]
