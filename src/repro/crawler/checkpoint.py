"""Journaled crawl checkpoints (§III-A, made kill-safe).

The crawl's accounting — 634,412 raw rows deduplicated to 457,627
distinct repositories — must survive the crawler being killed mid-run
without double-counting a single row. A :class:`CrawlCheckpoint` persists
the full crawl state (ordered repository list, raw/duplicate counters,
next page to fetch) through an atomic :class:`~repro.util.journal.
JournalFile` after every page, so a resumed crawl re-fetches nothing and
its final summary is identical to an uninterrupted run's.
"""

from __future__ import annotations

from repro.crawler.crawler import CrawlResult
from repro.util.journal import JournalFile

_VERSION = 1


class CrawlCheckpoint:
    """Persistence adapter between :class:`HubCrawler` and a journal."""

    def __init__(self, journal: JournalFile):
        self.journal = journal

    def load(self) -> tuple[CrawlResult, int, bool] | None:
        """Restore ``(partial result, next_page, done)``, or None when no
        checkpoint exists yet."""
        state = self.journal.load()
        if state is None:
            return None
        result = CrawlResult(
            repositories=list(state["repositories"]),
            raw_result_count=int(state["raw_result_count"]),
            duplicate_count=int(state["duplicate_count"]),
            pages_fetched=int(state["pages_fetched"]),
            official_count=int(state["official_count"]),
        )
        return result, int(state["next_page"]), bool(state["done"])

    def save(self, result: CrawlResult, *, next_page: int, done: bool) -> None:
        self.journal.save(
            {
                "version": _VERSION,
                "repositories": result.repositories,
                "raw_result_count": result.raw_result_count,
                "duplicate_count": result.duplicate_count,
                "pages_fetched": result.pages_fetched,
                "official_count": result.official_count,
                "next_page": next_page,
                "done": done,
            }
        )
