"""Thread-safe counters, gauges, log-bucketed histograms, and a registry.

Design notes:

* Histograms are **log-bucketed**: bucket upper bounds grow geometrically
  from ``min_bound`` by ``growth``, so six orders of magnitude of latency
  (microseconds to minutes) fit in <100 integer counters with a bounded
  relative quantile error of ``growth - 1``. Quantiles interpolate
  log-linearly inside the winning bucket and are clamped to the observed
  min/max, so degenerate distributions (all samples equal) report exactly.
* Every metric object carries its own lock; the registry's lock only guards
  family creation. Recording never allocates after the first touch of a
  label set.
* Exports are deterministic: families and label sets render in sorted order,
  which keeps loadtest output byte-stable for a fixed seed.
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramSnapshot:
    """A consistent point-in-time view of a histogram."""

    count: int
    sum: float
    min: float
    max: float
    p50: float
    p90: float
    p99: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


class Histogram:
    """Log-bucketed histogram with streaming quantiles.

    Bucket ``i`` holds values in ``(bound[i-1], bound[i]]`` where
    ``bound[i] = min_bound * growth**i``; values above the last bound land
    in an overflow bucket, values at or below ``min_bound`` in the first.
    Defaults cover 1 µs .. ~7 hours with ≤25 % relative quantile error —
    sized for latencies in seconds, but any positive value works.
    """

    def __init__(
        self,
        *,
        min_bound: float = 1e-6,
        growth: float = 1.25,
        n_buckets: int = 108,
    ) -> None:
        if min_bound <= 0 or growth <= 1 or n_buckets < 1:
            raise ValueError(
                f"need min_bound > 0, growth > 1, n_buckets >= 1; "
                f"got {min_bound}, {growth}, {n_buckets}"
            )
        self._bounds = [min_bound * growth**i for i in range(n_buckets)]
        self._counts = [0] * (n_buckets + 1)  # +1 overflow bucket
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample (negative values clamp to the first bucket)."""
        idx = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 <= q <= 1) from the buckets."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for idx, n in enumerate(self._counts):
            seen += n
            if seen >= target and n:
                if idx >= len(self._bounds):  # overflow bucket
                    return self._max
                upper = self._bounds[idx]
                lower = self._bounds[idx - 1] if idx else upper / 2
                frac = 1.0 - (seen - target) / n
                est = lower * (upper / lower) ** frac  # log-linear
                return min(max(est, self._min), self._max)
        return self._max

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                count=self.count,
                sum=self.sum,
                min=self._min if self.count else 0.0,
                max=self._max if self.count else 0.0,
                p50=self._quantile_locked(0.50),
                p90=self._quantile_locked(0.90),
                p99=self._quantile_locked(0.99),
            )

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for non-empty buckets
        (plus +inf), the shape Prometheus histogram samples take."""
        with self._lock:
            out: list[tuple[float, int]] = []
            seen = 0
            for idx, n in enumerate(self._counts[:-1]):
                seen += n
                if n:
                    out.append((self._bounds[idx], seen))
            out.append((math.inf, self.count))
            return out


@contextmanager
def timed(histogram: Histogram):
    """Observe the wall-clock seconds spent inside the ``with`` block."""
    start = time.perf_counter()
    try:
        yield histogram
    finally:
        histogram.observe(time.perf_counter() - start)


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All series of one metric name: one type, one label-key set."""

    __slots__ = ("name", "mtype", "help", "label_names", "series")

    def __init__(self, name: str, mtype: str, help: str, label_names: tuple[str, ...]):
        self.name = name
        self.mtype = mtype
        self.help = help
        self.label_names = label_names
        self.series: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}


class MetricsRegistry:
    """Labeled metric families, created on first touch.

    >>> reg = MetricsRegistry()
    >>> reg.counter("requests_total", "served requests", endpoint="blob").inc()
    >>> reg.histogram("latency_seconds", endpoint="blob").observe(0.012)
    >>> print(reg.render_prometheus())  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- metric accessors -----------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter for *name* and this label set (created on demand)."""
        return self._series(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge for *name* and this label set (created on demand)."""
        return self._series(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        min_bound: float = 1e-6,
        growth: float = 1.25,
        n_buckets: int = 108,
        **labels: str,
    ) -> Histogram:
        """The histogram for *name* and this label set (created on demand)."""
        factory = lambda: Histogram(  # noqa: E731
            min_bound=min_bound, growth=growth, n_buckets=n_buckets
        )
        return self._series(name, "histogram", help, labels, factory)

    @contextmanager
    def timed(self, name: str, help: str = "", **labels: str):
        """Time a ``with`` block into ``histogram(name, **labels)``."""
        with timed(self.histogram(name, help, **labels)) as hist:
            yield hist

    def _series(self, name, mtype, help, labels, factory):
        _check_name(name)
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name: {key!r}")
        label_names = tuple(sorted(labels))
        label_values = tuple(str(labels[k]) for k in label_names)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, mtype, help, label_names)
                self._families[name] = family
            if family.mtype != mtype:
                raise ValueError(
                    f"{name!r} already registered as {family.mtype}, not {mtype}"
                )
            if family.label_names != label_names:
                raise ValueError(
                    f"{name!r} uses labels {family.label_names}, got {label_names}"
                )
            series = family.series.get(label_values)
            if series is None:
                series = factory()
                family.series[label_values] = series
            return series

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> dict[str, dict]:
        """A deterministic nested-dict dump of every family and series."""
        out: dict[str, dict] = {}
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            rows = []
            for values in sorted(family.series):
                metric = family.series[values]
                row: dict = {"labels": dict(zip(family.label_names, values))}
                if isinstance(metric, Histogram):
                    row.update(metric.snapshot().to_dict())
                else:
                    row["value"] = metric.value
                rows.append(row)
            out[family.name] = {
                "type": family.mtype,
                "help": family.help,
                "series": rows,
            }
        return out

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (v0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.mtype}")
            for values in sorted(family.series):
                metric = family.series[values]
                labels = dict(zip(family.label_names, values))
                if isinstance(metric, Histogram):
                    for bound, cumulative in metric.cumulative_buckets():
                        le = "+Inf" if math.isinf(bound) else _fmt(bound)
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_labelstr({**labels, 'le': le})} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_labelstr(labels)} {_fmt(metric.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_labelstr(labels)} {metric.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_labelstr(labels)} {_fmt(metric.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labelstr(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{v.replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def counter_total(registry: MetricsRegistry, name: str, **labels: str) -> float:
    """Sum a counter/gauge family across its series.

    ``labels`` filters: only series whose label set includes every given
    ``key=value`` pair contribute. A family that was never touched sums to
    0 — absence of traffic, not an error. This is the one blessed way to
    read a total back out of a registry; reports should use it instead of
    hand-rolling ``to_dict()`` walks.
    """
    total = 0.0
    for row in registry.to_dict().get(name, {}).get("series", []):
        row_labels = row.get("labels", {})
        if all(row_labels.get(k) == v for k, v in labels.items()):
            total += row.get("value", row.get("count", 0))
    return total
