"""Observability: a thread-safe metrics core for the serving subsystem.

Every hot path in the serving stack (the HTTP registry, the downloader, the
caching proxy, the load generator) reports into the same small vocabulary:

* :class:`Counter` — a monotone count (requests, retries, errors);
* :class:`Gauge` — a point-in-time value (cached bytes, in-flight requests);
* :class:`Histogram` — log-bucketed value distribution with p50/p90/p99/max
  (request latency, object sizes);
* :class:`MetricsRegistry` — labeled metric families with dict/JSON export
  and Prometheus text-format rendering, plus a :meth:`~MetricsRegistry.timed`
  context manager for wall-clock latency sections.

The core has no dependencies and no background threads; recording a sample
is a lock plus O(1) work, cheap enough to live inside the request path.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    counter_total,
    timed,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "counter_total",
    "timed",
]
