"""Streaming columnar analysis: §IV/§V statistics from mergeable partials.

The in-memory figure pipeline gathers occurrence-sized temporaries (sizes,
types, repeat bincounts, full sorts) over the whole dataset at once. This
module computes the same characterization and dedup statistics from bounded
:class:`~repro.synth.streamgen.DatasetChunk` slices instead: every chunk
collapses to a small :class:`ColumnarPartial` — dense type bincounts,
log-bucketed histograms (merged exactly via
:meth:`~repro.stats.histogram.Histogram.merge`), a sorted unique-file
:class:`~repro.dedup.streaming.FileDedupState`, and per-layer sharing
tallies — and partials fold associatively into one merged state that
finalizes to a :class:`ColumnarReport`.

Exactness contract: every partial quantity is an integer (or an integer
histogram), so merging is bit-exact in any grouping. The report built from
one whole-dataset "chunk" (:func:`report_from_dataset`) is therefore
**byte-for-byte identical** to the report merged from any chunking of the
same dataset, whether the chunks were analyzed serially, by a thread pool,
or by a process pool (``tests/core/test_colstream.py`` pins all of it).

Worker dispatch goes through ``repro.parallel.map_shards`` with picklable
:class:`~repro.synth.streamgen.ChunkSpec` handles: each worker loads one
spilled ``.npz`` chunk, reduces it to a partial, and only the partial
(kilobytes) crosses back over the process boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.dedup.streaming import FileDedupState, merge_dedup_states
from repro.filetypes.catalog import (
    RARE_TYPE_BASE,
    TypeCatalog,
    TypeGroup,
    default_catalog,
)
from repro.model.dataset import HubDataset
from repro.obs import MetricsRegistry
from repro.parallel.pool import ParallelConfig, map_shards
from repro.stats.histogram import Histogram, log_bins
from repro.synth.streamgen import ChunkSpec, DatasetChunk, chunks_from_dataset

REPORT_SCHEMA = "columnar-report-v1"

#: Shared closed-form binnings — both engines histogram into the same edges,
#: which is what makes per-chunk histograms a lossless partial aggregate.
#: Zero-valued samples (empty files, empty layers) land in ``underflow``.
OCC_SIZE_EDGES = log_bins(1.0, 2.0**40, per_decade=4)
LAYER_FILE_EDGES = log_bins(1.0, 1e7, per_decade=4)
LAYER_FLS_EDGES = log_bins(1.0, 2.0**44, per_decade=4)
REPEAT_EDGES = log_bins(1.0, 1e9, per_decade=4)
LAYER_REF_EDGES = log_bins(1.0, 1e7, per_decade=4)

#: The paper's common-type criterion (> 7 GB per type at 167 TB total),
#: applied relatively so it scales — same constant as ``taxonomy_summary``.
COMMON_CAPACITY_SHARE = 7e9 / 167e12


def _segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum *values* over CSR segments (empty-segment-safe, exact int64)."""
    csum = np.zeros(values.size + 1, dtype=np.int64)
    np.cumsum(values, out=csum[1:])
    return csum[offsets[1:]] - csum[offsets[:-1]]


def _dense_type_sums(
    occ_types: np.ndarray, occ_sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Exact per-type-code occurrence counts and byte sums.

    Sort + ``reduceat`` groupby keeps the byte sums in int64 — unlike
    ``np.bincount(weights=...)``, which accumulates in float64 and would
    make merge exactness depend on magnitudes staying under 2⁵³.
    """
    if occ_types.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    order = np.argsort(occ_types, kind="stable")
    sorted_types = occ_types[order]
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(sorted_types)) + 1]
    ).astype(np.int64)
    codes = sorted_types[starts].astype(np.int64)
    run_bytes = np.add.reduceat(occ_sizes[order], starts)
    run_counts = np.diff(np.concatenate([starts, [sorted_types.size]]))
    n_codes = int(codes[-1]) + 1
    counts = np.zeros(n_codes, dtype=np.int64)
    nbytes = np.zeros(n_codes, dtype=np.int64)
    counts[codes] = run_counts
    nbytes[codes] = run_bytes
    return counts, nbytes


@dataclass
class ColumnarPartial:
    """One chunk's contribution to the §IV/§V statistics.

    Everything in here is integer-valued and mergeable: scalars add (or
    max), dense arrays pad-and-add, histograms bucket-sum, and the dedup
    state set-unions. A partial is a few KB however many occurrences the
    chunk held, and pickles cleanly back from process workers.
    """

    n_chunks: int
    n_layers: int
    n_empty_layers: int
    n_occurrences: int
    fls_bytes: int
    cls_bytes: int
    type_counts: np.ndarray  # int64 [max code + 1], dense
    type_bytes: np.ndarray  # int64 [max code + 1], dense
    occ_size_hist: Histogram
    layer_file_hist: Histogram
    layer_fls_hist: Histogram
    repeat_hist_placeholder: None  # repeats exist only after the full merge
    dedup: FileDedupState
    # -- layer sharing (§V-A) over this chunk's layer range -------------------
    referenced_layers: int
    single_ref_layers: int
    double_ref_layers: int
    max_refs: int
    empty_layer_refs: int  # max refs among zero-file layers
    ref_hist: Histogram
    shared_slot_bytes: int  # sum over images of per-slot CLS (no sharing)
    referenced_cls_bytes: int  # CLS stored once per referenced layer

    def merge(self, other: "ColumnarPartial") -> "ColumnarPartial":
        n = max(self.type_counts.size, other.type_counts.size)

        def _padded(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            out = np.zeros(n, dtype=np.int64)
            out[: a.size] += a
            out[: b.size] += b
            return out

        return ColumnarPartial(
            n_chunks=self.n_chunks + other.n_chunks,
            n_layers=self.n_layers + other.n_layers,
            n_empty_layers=self.n_empty_layers + other.n_empty_layers,
            n_occurrences=self.n_occurrences + other.n_occurrences,
            fls_bytes=self.fls_bytes + other.fls_bytes,
            cls_bytes=self.cls_bytes + other.cls_bytes,
            type_counts=_padded(self.type_counts, other.type_counts),
            type_bytes=_padded(self.type_bytes, other.type_bytes),
            occ_size_hist=self.occ_size_hist.merge(other.occ_size_hist),
            layer_file_hist=self.layer_file_hist.merge(other.layer_file_hist),
            layer_fls_hist=self.layer_fls_hist.merge(other.layer_fls_hist),
            repeat_hist_placeholder=None,
            dedup=self.dedup.merge(other.dedup),
            referenced_layers=self.referenced_layers + other.referenced_layers,
            single_ref_layers=self.single_ref_layers + other.single_ref_layers,
            double_ref_layers=self.double_ref_layers + other.double_ref_layers,
            max_refs=max(self.max_refs, other.max_refs),
            empty_layer_refs=max(self.empty_layer_refs, other.empty_layer_refs),
            ref_hist=self.ref_hist.merge(other.ref_hist),
            shared_slot_bytes=self.shared_slot_bytes + other.shared_slot_bytes,
            referenced_cls_bytes=(
                self.referenced_cls_bytes + other.referenced_cls_bytes
            ),
        )


def partial_from_chunk(chunk: DatasetChunk) -> ColumnarPartial:
    """Reduce one chunk's occurrence columns to its partial aggregates."""
    counts, nbytes = _dense_type_sums(chunk.occ_types, chunk.occ_sizes)
    layer_file_counts = np.diff(chunk.file_offsets)
    layer_fls = _segment_sums(chunk.occ_sizes, chunk.file_offsets)
    refs = chunk.layer_ref_counts
    referenced = refs > 0
    empty_layers = layer_file_counts == 0
    empty_refs = refs[empty_layers]
    return ColumnarPartial(
        n_chunks=1,
        n_layers=chunk.n_layers,
        n_empty_layers=int(np.count_nonzero(empty_layers)),
        n_occurrences=chunk.n_occurrences,
        fls_bytes=int(chunk.occ_sizes.sum()),
        cls_bytes=int(chunk.layer_cls.sum()),
        type_counts=counts,
        type_bytes=nbytes,
        occ_size_hist=Histogram.from_values(chunk.occ_sizes, OCC_SIZE_EDGES),
        layer_file_hist=Histogram.from_values(layer_file_counts, LAYER_FILE_EDGES),
        layer_fls_hist=Histogram.from_values(layer_fls, LAYER_FLS_EDGES),
        repeat_hist_placeholder=None,
        dedup=FileDedupState.from_occurrences(chunk.file_ids, chunk.occ_sizes),
        referenced_layers=int(np.count_nonzero(referenced)),
        single_ref_layers=int(np.count_nonzero(refs == 1)),
        double_ref_layers=int(np.count_nonzero(refs == 2)),
        max_refs=int(refs.max()) if refs.size else 0,
        empty_layer_refs=int(empty_refs.max()) if empty_refs.size else 0,
        ref_hist=Histogram.from_values(refs[referenced], LAYER_REF_EDGES),
        shared_slot_bytes=int((chunk.layer_cls * refs).sum()),
        referenced_cls_bytes=int(chunk.layer_cls[referenced].sum()),
    )


def partial_from_spec(spec: ChunkSpec) -> ColumnarPartial:
    """Module-level worker for ``map_shards``: load one spilled chunk,
    reduce it, return only the partial (must pickle into process pools)."""
    return partial_from_chunk(spec.load())


def merge_partials(partials: list[ColumnarPartial]) -> ColumnarPartial:
    """Fold partials as a balanced tree (same exactness, near-linear cost)."""
    if not partials:
        raise ValueError("no partials to merge")
    level = list(partials)
    while len(level) > 1:
        merged = [
            level[i].merge(level[i + 1]) if i + 1 < len(level) else level[i]
            for i in range(0, len(level), 2)
        ]
        level = merged
    # dedup states were folded pairwise already inside merge(); nothing more
    return level[0]


# -- the report -----------------------------------------------------------------


@dataclass(frozen=True)
class ColumnarReport:
    """The §IV/§V statistics document, JSON-canonical for byte comparison."""

    doc: dict

    def to_json(self) -> str:
        return json.dumps(self.doc, indent=2, sort_keys=True)

    def render(self) -> str:
        t = self.doc["totals"]
        d = self.doc["dedup"]
        s = self.doc["sharing"]
        g_rows = ", ".join(
            f"{row['label']} {row['count']:,}" for row in self.doc["groups"][:4]
        )
        return "\n".join([
            f"columnar report ({self.doc['schema']})",
            f"  layers {t['layers']:,} ({t['empty_layers']:,} empty), "
            f"occurrences {t['occurrences']:,}, unique files {t['unique_files']:,}",
            f"  FLS {t['fls_bytes']:,} B, CLS {t['cls_bytes']:,} B, "
            f"deduplicated {t['unique_file_bytes']:,} B",
            f"  top groups: {g_rows}",
            f"  file dedup: {d['unique_fraction']:.1%} unique, "
            f"{d['count_ratio']:.1f}x count / {d['capacity_ratio']:.1f}x capacity "
            "(paper 3.2% / 31.5x / 6.9x)",
            f"  layer sharing: {s['single_ref_fraction']:.1%} single-ref, "
            f"saves {s['sharing_ratio']:.2f}x (paper ~90% / 1.8x)",
        ])


def finalize_report(
    merged: ColumnarPartial, catalog: TypeCatalog | None = None
) -> ColumnarReport:
    """Turn the fully merged partial into the canonical report document.

    Every float in the document is derived from merged integers by the same
    expression regardless of engine, so serialized reports compare equal
    byte-for-byte across chunkings and parallel modes.
    """
    catalog = catalog or default_catalog()
    dedup = merged.dedup.summary() if merged.dedup.n_unique else None

    # group breakdown (Fig. 14) from the dense per-code sums
    max_code = merged.type_counts.size - 1
    group_rows: list[dict] = []
    if max_code >= 0:
        table = catalog.group_of_code_table(max_code).astype(np.int64)
        n_groups = max(int(g) for g in TypeGroup) + 1
        g_counts = np.zeros(n_groups, dtype=np.int64)
        g_bytes = np.zeros(n_groups, dtype=np.int64)
        np.add.at(g_counts, table, merged.type_counts)
        np.add.at(g_bytes, table, merged.type_bytes)
        rows = [
            {
                "label": TypeGroup(g).name.lower(),
                "count": int(g_counts[g]),
                "bytes": int(g_bytes[g]),
            }
            for g in sorted(int(g) for g in TypeGroup)
            if g_counts[g] > 0
        ]
        rows.sort(key=lambda r: -r["count"])
        group_rows = rows

    # common/rare type split (Fig. 13) under the relative capacity criterion
    present = merged.type_counts > 0
    total_bytes = int(merged.type_bytes.sum())
    threshold = COMMON_CAPACITY_SHARE * total_bytes
    common = present & (merged.type_bytes >= threshold)
    total_count = int(merged.type_counts.sum())
    rare_present = int(np.count_nonzero(present[RARE_TYPE_BASE:]))
    types_summary = {
        "total_types": int(np.count_nonzero(present)),
        "common_types": int(np.count_nonzero(common)),
        "rare_types": rare_present,
        "common_capacity_share": (
            int(merged.type_bytes[common].sum()) / total_bytes if total_bytes else 0.0
        ),
        "common_count_share": (
            int(merged.type_counts[common].sum()) / total_count if total_count else 0.0
        ),
    }

    # repeats histogram exists only now: copy counts are a post-merge quantity
    repeat_hist = (
        Histogram.from_values(merged.dedup.counts, REPEAT_EDGES)
        if merged.dedup.n_unique
        else Histogram.empty(REPEAT_EDGES)
    )

    referenced = merged.referenced_layers
    sharing = {
        "referenced_layers": referenced,
        "single_ref_fraction": (
            merged.single_ref_layers / referenced if referenced else 0.0
        ),
        "double_ref_fraction": (
            merged.double_ref_layers / referenced if referenced else 0.0
        ),
        "max_refs": merged.max_refs,
        "empty_layer_refs": merged.empty_layer_refs,
        "shared_bytes": merged.shared_slot_bytes,
        "unique_bytes": merged.referenced_cls_bytes,
        "sharing_ratio": (
            merged.shared_slot_bytes / merged.referenced_cls_bytes
            if merged.referenced_cls_bytes
            else 0.0
        ),
    }

    doc = {
        "schema": REPORT_SCHEMA,
        # NB: no chunk count in here — the document must be identical for
        # every chunking of the same dataset; engine metadata stays out.
        "totals": {
            "layers": merged.n_layers,
            "empty_layers": merged.n_empty_layers,
            "occurrences": merged.n_occurrences,
            "unique_files": merged.dedup.n_unique,
            "fls_bytes": merged.fls_bytes,
            "cls_bytes": merged.cls_bytes,
            "unique_file_bytes": merged.dedup.unique_bytes,
        },
        "groups": group_rows,
        "types": types_summary,
        "dedup": dedup,
        "sharing": sharing,
        "histograms": {
            "occurrence_size": merged.occ_size_hist.as_dict(),
            "layer_file_count": merged.layer_file_hist.as_dict(),
            "layer_fls": merged.layer_fls_hist.as_dict(),
            "file_repeats": repeat_hist.as_dict(),
            "layer_refs": merged.ref_hist.as_dict(),
        },
    }
    return ColumnarReport(doc=doc)


# -- engines --------------------------------------------------------------------


def streaming_report(
    specs: list[ChunkSpec],
    *,
    parallel: ParallelConfig | None = None,
    catalog: TypeCatalog | None = None,
    metrics: MetricsRegistry | None = None,
) -> ColumnarReport:
    """Analyze a spilled chunk store: dispatch specs through ``map_shards``,
    merge the partials, finalize.

    A failed shard aborts the whole report — unlike layer extraction, a
    missing chunk is not a tolerable data condition; the statistics would
    silently be about a different dataset.
    """
    if not specs:
        raise ValueError("no chunks to analyze")
    outcomes = map_shards(partial_from_spec, specs, parallel, metrics=metrics)
    failures = [o for o in outcomes if not o.ok]
    if failures:
        raise RuntimeError(
            f"{len(failures)} chunk(s) failed to analyze; first: "
            f"chunk {failures[0].index}: {failures[0].error}"
        )
    return finalize_report(
        merge_partials([o.value for o in outcomes]), catalog
    )


def report_from_chunks(
    chunks, *, catalog: TypeCatalog | None = None
) -> ColumnarReport:
    """Serial in-process engine over an in-memory chunk iterator."""
    partials = [partial_from_chunk(chunk) for chunk in chunks]
    if not partials:
        raise ValueError("no chunks to analyze")
    return finalize_report(merge_partials(partials), catalog)


def report_from_dataset(
    dataset: HubDataset, *, catalog: TypeCatalog | None = None
) -> ColumnarReport:
    """The in-memory reference engine: the whole dataset as one chunk.

    This is the monolithic computation the streaming engine must reproduce
    byte-for-byte — one pass over the full occurrence arrays, no chunk
    merge involved.
    """
    whole = next(
        chunks_from_dataset(
            dataset, chunk_occurrences=max(1, dataset.n_file_occurrences + 1)
        )
    )
    return finalize_report(partial_from_chunk(whole), catalog)
