"""One compute function per paper figure (§IV–§V).

Each returns a :class:`FigureResult` holding the plotted series (CDFs,
histograms, breakdown rows), the headline metrics as measured, and the
paper's published values for the same metrics. The benchmark harness calls
:func:`compute_figure` per figure and EXPERIMENTS.md is rendered from the
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core import characterization as ch
from repro.core.paper_targets import PAPER_TARGETS
from repro.dedup.bytype import dedup_by_figure_label, dedup_by_group
from repro.dedup.cross import cross_duplicate_report
from repro.dedup.engine import file_dedup_report
from repro.dedup.growth import dedup_growth
from repro.dedup.layer_sharing import layer_sharing_report
from repro.filetypes.catalog import TypeGroup
from repro.model.dataset import HubDataset
from repro.stats.cdf import EmpiricalCDF
from repro.stats.histogram import Histogram, linear_bins, log_bins
from repro.util.units import MiB


@dataclass
class FigureResult:
    figure_id: str
    title: str
    metrics: dict[str, float]
    paper: dict[str, float] = field(default_factory=dict)
    series: dict[str, object] = field(default_factory=dict)

    def ratio(self, metric: str) -> float:
        """measured / paper, NaN when the paper has no such target."""
        target = self.paper.get(metric)
        if not target:
            return float("nan")
        return self.metrics[metric] / target


def _result(figure_id: str, title: str, metrics: dict, series: dict) -> FigureResult:
    paper = PAPER_TARGETS.get(figure_id, {})
    return FigureResult(
        figure_id=figure_id,
        title=title,
        metrics=metrics,
        paper={k: v for k, v in paper.items() if k in metrics},
        series=series,
    )


def _size_hist(values: np.ndarray, *, up_to: float = 128 * MiB) -> Histogram:
    return Histogram.from_values(values, linear_bins(0.0, up_to, 5 * MiB))


# --------------------------------------------------------------------------
# §IV-A layers


def layer_sizes(ds: HubDataset) -> FigureResult:
    """Fig. 3: CDF + histogram of CLS and FLS."""
    cls_cdf = EmpiricalCDF(ds.layer_cls)
    fls_cdf = EmpiricalCDF(ds.layer_fls)
    metrics = {
        "cls_median": cls_cdf.median(),
        "cls_p90": cls_cdf.percentile(90),
        "fls_median": fls_cdf.median(),
        "fls_p90": fls_cdf.percentile(90),
        "frac_cls_below_4mb": cls_cdf.fraction_at_most(4e6),
        "frac_fls_below_4mb": fls_cdf.fraction_at_most(4e6),
    }
    series = {
        "cls_cdf": cls_cdf,
        "fls_cdf": fls_cdf,
        "cls_hist": _size_hist(ds.layer_cls),
        "fls_hist": _size_hist(ds.layer_fls),
    }
    return _result("fig3", "Layer size distribution (CLS/FLS)", metrics, series)


def compression_ratios(ds: HubDataset) -> FigureResult:
    """Fig. 4: FLS-to-CLS compression ratio CDF + histogram (non-empty
    layers only; an empty layer has no meaningful ratio)."""
    ratios = ds.compression_ratios
    ratios = ratios[ds.layer_fls > 0]
    cdf = EmpiricalCDF(ratios)
    hist = Histogram.from_values(ratios, linear_bins(0.0, 10.0, 1.0))
    metrics = {
        "ratio_median": cdf.median(),
        "ratio_p90": cdf.percentile(90),
        "ratio_max": cdf.max,
        "frac_1_2": cdf.fraction_below(2) - cdf.fraction_below(1),
        "frac_2_3": cdf.fraction_below(3) - cdf.fraction_below(2),
    }
    return _result(
        "fig4", "Layer compression ratio (FLS-to-CLS)", metrics,
        {"ratio_cdf": cdf, "ratio_hist": hist},
    )


def layer_file_counts(ds: HubDataset) -> FigureResult:
    """Fig. 5: files per layer."""
    counts = ds.layer_file_counts
    cdf = EmpiricalCDF(counts)
    metrics = {
        "files_median": cdf.median(),
        "files_p90": cdf.percentile(90),
        "files_max": cdf.max,
        "empty_fraction": float((counts == 0).mean()),
        "single_fraction": float((counts == 1).mean()),
    }
    return _result("fig5", "Files per layer", metrics, {"files_cdf": cdf})


def layer_dir_counts(ds: HubDataset) -> FigureResult:
    """Fig. 6: directories per layer."""
    cdf = EmpiricalCDF(ds.layer_dir_counts)
    metrics = {
        "dirs_median": cdf.median(),
        "dirs_p90": cdf.percentile(90),
        "dirs_max": cdf.max,
    }
    return _result("fig6", "Directories per layer", metrics, {"dirs_cdf": cdf})


def layer_depths(ds: HubDataset) -> FigureResult:
    """Fig. 7: max directory depth per layer (CDF + histogram)."""
    depths = ds.layer_max_depths
    nonempty = depths[ds.layer_file_counts > 0]
    cdf = EmpiricalCDF(depths)
    hist = Histogram.from_values(depths, linear_bins(0.0, 32.0, 1.0))
    values, counts = np.unique(nonempty, return_counts=True)
    metrics = {
        "depth_median": cdf.median(),
        "depth_p90": cdf.percentile(90),
        "depth_mode": float(values[np.argmax(counts)]) if values.size else 0.0,
    }
    return _result(
        "fig7", "Layer directory depth", metrics, {"depth_cdf": cdf, "depth_hist": hist}
    )


# --------------------------------------------------------------------------
# §IV-B images


def popularity(ds: HubDataset) -> FigureResult:
    """Fig. 8: repository pull-count distribution."""
    pulls = ds.pull_counts
    if pulls.size == 0:
        raise ValueError("dataset carries no pull counts")
    cdf = EmpiricalCDF(pulls)
    hist = Histogram.from_values(
        pulls[pulls > 0].astype(np.float64), log_bins(1.0, max(10.0, float(pulls.max())), 4)
    )
    metrics = {
        "pulls_median": cdf.median(),
        "pulls_p90": cdf.percentile(90),
        "pulls_max": cdf.max,
    }
    return _result(
        "fig8", "Repository popularity (pulls)", metrics,
        {"pulls_cdf": cdf, "pulls_hist": hist},
    )


def image_sizes(ds: HubDataset) -> FigureResult:
    """Fig. 9: image size distribution (CIS/FIS)."""
    cis_cdf = EmpiricalCDF(ds.image_cls)
    fis_cdf = EmpiricalCDF(ds.image_fls)
    metrics = {
        "cis_median": cis_cdf.median(),
        "cis_p90": cis_cdf.percentile(90),
        "fis_median": fis_cdf.median(),
        "fis_p90": fis_cdf.percentile(90),
        "fis_max": fis_cdf.max,
    }
    return _result(
        "fig9", "Image size distribution (CIS/FIS)", metrics,
        {"cis_cdf": cis_cdf, "fis_cdf": fis_cdf},
    )


def image_layer_counts(ds: HubDataset) -> FigureResult:
    """Fig. 10: layers per image (CDF + histogram)."""
    counts = ds.image_layer_counts
    cdf = EmpiricalCDF(counts)
    hist = Histogram.from_values(counts, linear_bins(0.0, 64.0, 1.0))
    values, freq = np.unique(counts, return_counts=True)
    metrics = {
        "layers_median": cdf.median(),
        "layers_p90": cdf.percentile(90),
        "layers_max": cdf.max,
        "layers_mode": float(values[np.argmax(freq)]),
        "single_layer_fraction": float((counts == 1).mean()),
    }
    return _result(
        "fig10", "Layers per image", metrics, {"layers_cdf": cdf, "layers_hist": hist}
    )


def image_dir_counts(ds: HubDataset) -> FigureResult:
    """Fig. 11: directories per image."""
    cdf = EmpiricalCDF(ds.image_dir_counts)
    metrics = {"dirs_median": cdf.median(), "dirs_p90": cdf.percentile(90)}
    return _result("fig11", "Directories per image", metrics, {"dirs_cdf": cdf})


def image_file_counts(ds: HubDataset) -> FigureResult:
    """Fig. 12: files per image."""
    cdf = EmpiricalCDF(ds.image_file_counts)
    metrics = {"files_median": cdf.median(), "files_p90": cdf.percentile(90)}
    return _result("fig12", "Files per image", metrics, {"files_cdf": cdf})


# --------------------------------------------------------------------------
# §IV-C files


def taxonomy(ds: HubDataset) -> FigureResult:
    """Fig. 13: common vs non-common type concentration."""
    summary = ch.taxonomy_summary(ds)
    metrics = {
        "common_type_count": summary.common_types,
        "common_capacity_share": summary.common_capacity_share,
        "total_type_count": summary.total_types,
    }
    return _result("fig13", "Type taxonomy concentration", metrics, {"summary": summary})


def group_shares(ds: HubDataset) -> FigureResult:
    """Fig. 14: file count % and capacity % by type group."""
    breakdown = ch.group_breakdown(ds)
    metrics: dict[str, float] = {}
    for label in ("document", "source", "eol", "script", "media"):
        metrics[f"count_share_{label}"] = breakdown.count_share(label)
    for label in ("eol", "archive", "document"):
        metrics[f"capacity_share_{label}"] = breakdown.capacity_share(label)
    return _result("fig14", "Shares by type group", metrics, {"breakdown": breakdown})


def group_avg_sizes(ds: HubDataset) -> FigureResult:
    """Fig. 15: average file size per type group."""
    breakdown = ch.group_breakdown(ds)
    metrics = {
        f"avg_size_{row.label}": row.avg_size() for row in breakdown.rows
    }
    return _result("fig15", "Average file size by group", metrics, {"breakdown": breakdown})


def _detail_metrics(breakdown: ch.Breakdown, mapping: dict[str, str]) -> dict[str, float]:
    """Build count/capacity-share metrics from figure labels.

    ``mapping`` maps metric suffix -> figure label.
    """
    metrics: dict[str, float] = {}
    for suffix, label in mapping.items():
        try:
            metrics[f"count_share_{suffix}"] = breakdown.count_share(label)
            metrics[f"capacity_share_{suffix}"] = breakdown.capacity_share(label)
            metrics[f"avg_size_{suffix}"] = breakdown.avg_size(label)
        except KeyError:
            continue  # type absent at this scale
    return metrics


def eol_detail(ds: HubDataset) -> FigureResult:
    """Fig. 16: EOL specific types."""
    breakdown = ch.label_breakdown(ds, TypeGroup.EOL)
    metrics = _detail_metrics(
        breakdown, {"elf": "ELF", "com": "Com.", "pe": "PE", "coff": "COFF", "library": "Lib."}
    )
    return _result("fig16", "EOL file types", metrics, {"breakdown": breakdown})


def source_detail(ds: HubDataset) -> FigureResult:
    """Fig. 17: source-code types."""
    breakdown = ch.label_breakdown(ds, TypeGroup.SOURCE)
    metrics = _detail_metrics(
        breakdown, {"c_cpp": "C/C++", "perl5": "Perl5", "ruby": "Ruby"}
    )
    return _result("fig17", "Source code types", metrics, {"breakdown": breakdown})


def script_detail(ds: HubDataset) -> FigureResult:
    """Fig. 18: script types."""
    breakdown = ch.label_breakdown(ds, TypeGroup.SCRIPT)
    metrics = _detail_metrics(
        breakdown, {"python": "Python", "shell": "Bash/shell", "ruby": "Ruby"}
    )
    return _result("fig18", "Script types", metrics, {"breakdown": breakdown})


def document_detail(ds: HubDataset) -> FigureResult:
    """Fig. 19: document types."""
    breakdown = ch.label_breakdown(ds, TypeGroup.DOCUMENT)
    metrics = _detail_metrics(
        breakdown, {"ascii": "ASCII", "utf": "UTF8/16", "xml_html": "XML/HTML"}
    )
    text_bytes = sum(
        row.bytes for row in breakdown.rows if row.label in ("ASCII", "UTF8/16", "ISO-8859")
    )
    metrics["text_capacity_share"] = (
        text_bytes / breakdown.total_bytes if breakdown.total_bytes else 0.0
    )
    return _result("fig19", "Document types", metrics, {"breakdown": breakdown})


def archive_detail(ds: HubDataset) -> FigureResult:
    """Fig. 20: archival types."""
    breakdown = ch.label_breakdown(ds, TypeGroup.ARCHIVE)
    metrics = _detail_metrics(
        breakdown,
        {"zip_gzip": "Zip/Gzip", "bzip2": "Bzip2", "tar": "Tar", "xz": "XZ"},
    )
    return _result("fig20", "Archival types", metrics, {"breakdown": breakdown})


def database_detail(ds: HubDataset) -> FigureResult:
    """Fig. 21: database types."""
    breakdown = ch.label_breakdown(ds, TypeGroup.DATABASE)
    metrics = _detail_metrics(
        breakdown, {"berkeley": "BerkeleyDB", "mysql": "MySQL", "sqlite": "SQLite"}
    )
    return _result("fig21", "Database types", metrics, {"breakdown": breakdown})


def media_detail(ds: HubDataset) -> FigureResult:
    """Fig. 22: image-data (media) types."""
    breakdown = ch.label_breakdown(ds, TypeGroup.MEDIA)
    metrics = _detail_metrics(breakdown, {"png": "PNG", "jpeg": "JPEG", "svg": "SVG"})
    return _result("fig22", "Media types", metrics, {"breakdown": breakdown})


# --------------------------------------------------------------------------
# §V deduplication


def layer_sharing(ds: HubDataset) -> FigureResult:
    """Fig. 23: layer reference counts + the no-sharing blowup."""
    report = layer_sharing_report(ds)
    n_images = max(1, ds.n_images)
    top_nonempty = 0
    for layer_id, refs in report.top_refs:
        if ds.layer_file_counts[layer_id] > 0:
            top_nonempty = refs
            break
    metrics = {
        "single_ref_fraction": report.single_ref_fraction,
        "double_ref_fraction": report.double_ref_fraction,
        "empty_layer_ref_share": report.empty_layer_refs / n_images,
        "top_stack_ref_share": top_nonempty / n_images,
        "sharing_ratio": report.sharing_ratio,
    }
    return _result("fig23", "Layer sharing", metrics, {"report": report})


def file_dedup(ds: HubDataset) -> FigureResult:
    """Fig. 24: file-level dedup and repeat counts."""
    report = file_dedup_report(ds)
    metrics = {
        "unique_fraction": report.unique_fraction,
        "count_ratio": report.count_ratio,
        "capacity_ratio": report.capacity_ratio,
        "copies_median": report.repeat_cdf.median(),
        "copies_p90": report.repeat_cdf.percentile(90),
        "multi_copy_fraction": report.multi_copy_fraction,
        "max_repeat_occurrence_share": report.max_repeat / max(1, report.n_occurrences),
    }
    return _result("fig24", "File-level deduplication", metrics, {"report": report})


def dedup_growth_figure(ds: HubDataset) -> FigureResult:
    """Fig. 25: dedup ratio vs dataset size."""
    points = dedup_growth(ds)
    if not points:
        raise ValueError("no growth points computed")
    metrics = {
        "count_ratio_small": points[0].count_ratio,
        "count_ratio_full": points[-1].count_ratio,
        "capacity_ratio_small": points[0].capacity_ratio,
        "capacity_ratio_full": points[-1].capacity_ratio,
    }
    return _result("fig25", "Dedup ratio growth", metrics, {"points": points})


def cross_duplicates(ds: HubDataset) -> FigureResult:
    """Fig. 26: cross-layer/cross-image duplicate ratios."""
    report = cross_duplicate_report(ds)
    metrics = {"layer_p10": report.layer_p10, "image_p10": report.image_p10}
    return _result("fig26", "Cross-layer/image duplicates", metrics, {"report": report})


def dedup_by_group_figure(ds: HubDataset) -> FigureResult:
    """Fig. 27: eliminated capacity per type group."""
    rows = dedup_by_group(ds)
    by_label = {row.label: row for row in rows}
    name_of_label = {
        "Scr.": "script", "SC.": "source", "Doc.": "document", "EOL": "eol",
        "Arch.": "archive", "Img.": "media", "DB.": "database",
    }
    metrics: dict[str, float] = {}
    for label, name in name_of_label.items():
        if label in by_label:
            metrics[name] = by_label[label].eliminated_capacity_fraction
    report = file_dedup_report(ds)
    metrics["overall"] = report.eliminated_capacity_fraction
    return _result("fig27", "Dedup by type group", metrics, {"rows": rows})


def dedup_eol_figure(ds: HubDataset) -> FigureResult:
    """Fig. 28: eliminated capacity per EOL type."""
    rows = dedup_by_figure_label(ds, TypeGroup.EOL)
    by_label = {row.label: row for row in rows}
    metrics: dict[str, float] = {}
    for label, name in {
        "ELF": "elf", "Com.": "com", "PE": "pe", "COFF": "coff", "Lib.": "library",
    }.items():
        if label in by_label:
            metrics[name] = by_label[label].eliminated_capacity_fraction
    total_redundant = sum(r.redundant_bytes for r in rows)
    if "ELF" in by_label and total_redundant:
        metrics["elf_redundant_capacity_share"] = (
            by_label["ELF"].redundant_bytes / total_redundant
        )
    return _result("fig28", "Dedup of EOL types", metrics, {"rows": rows})


def dedup_source_figure(ds: HubDataset) -> FigureResult:
    """Fig. 29: eliminated capacity per source-code type."""
    rows = dedup_by_figure_label(ds, TypeGroup.SOURCE)
    by_label = {row.label: row for row in rows}
    metrics: dict[str, float] = {}
    for label, name in {"C/C++": "c_cpp", "Perl5": "perl5", "Ruby": "ruby"}.items():
        if label in by_label:
            metrics[name] = by_label[label].eliminated_capacity_fraction
    total_redundant = sum(r.redundant_bytes for r in rows)
    if "C/C++" in by_label and total_redundant:
        metrics["c_cpp_redundant_capacity_share"] = (
            by_label["C/C++"].redundant_bytes / total_redundant
        )
    return _result("fig29", "Dedup of source-code types", metrics, {"rows": rows})


# --------------------------------------------------------------------------
# registry

FIGURES: dict[str, Callable[[HubDataset], FigureResult]] = {
    "fig3": layer_sizes,
    "fig4": compression_ratios,
    "fig5": layer_file_counts,
    "fig6": layer_dir_counts,
    "fig7": layer_depths,
    "fig8": popularity,
    "fig9": image_sizes,
    "fig10": image_layer_counts,
    "fig11": image_dir_counts,
    "fig12": image_file_counts,
    "fig13": taxonomy,
    "fig14": group_shares,
    "fig15": group_avg_sizes,
    "fig16": eol_detail,
    "fig17": source_detail,
    "fig18": script_detail,
    "fig19": document_detail,
    "fig20": archive_detail,
    "fig21": database_detail,
    "fig22": media_detail,
    "fig23": layer_sharing,
    "fig24": file_dedup,
    "fig25": dedup_growth_figure,
    "fig26": cross_duplicates,
    "fig27": dedup_by_group_figure,
    "fig28": dedup_eol_figure,
    "fig29": dedup_source_figure,
}


def compute_figure(dataset: HubDataset, figure_id: str) -> FigureResult:
    try:
        fn = FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        ) from None
    return fn(dataset)


def compute_all_figures(dataset: HubDataset) -> list[FigureResult]:
    """Compute every figure the paper publishes, in paper order."""
    return [fn(dataset) for fn in FIGURES.values()]
