"""The pipeline benchmark harness behind ``repro bench``.

Measures the analysis phase of the materialized pipeline — the paper's
§III-C hot path — across the full execution matrix:

    {serial, thread, process}  x  {cold cache, warm cache}

at two or three synthetic-hub scales, and writes the result as
``BENCH_pipeline.json``. Each scale materializes, crawls, and downloads
once; every matrix cell then re-analyzes the same downloaded blobs, so the
numbers isolate exactly what the sharded analyzer changed. Every cell also
re-checks that its dataset is byte-identical to the serial reference —
a benchmark that got a different answer faster measures nothing.

The cold/warm pair quantifies the profile cache: a warm run on an
unchanged corpus should skip (close to) 100 % of extractions, the
repeat-analysis analogue of the paper's §V-A layer-sharing saving.

The document also carries one dedup-scan cell (``scan`` key): a cold and
a warm :class:`~repro.scan.scanner.DedupScanner` pass over the smallest
scale, timing unique-layer extraction throughput and checking that the
warm pass extracts nothing.

``repro bench --columnar`` runs the streaming columnar family instead
(``columnar`` key): each scale spills the chunked synthetic hub once, then
times :func:`~repro.core.colstream.streaming_report` over the store for
every mode, cold (fresh store, page cache empty-ish) and warm (second pass
over the same store). Every cell's serialized report is byte-compared to
the serial reference, and — because the whole point is that streaming is a
pure refactor of the monolithic computation — each scale also checks the
streaming report against the in-memory :func:`report_from_dataset` answer.
Format version 3 adds this family plus per-run ``effective_workers`` and
``cpu_count``.

Format version 4 adds the ``tiers`` section: the tiered cache hierarchy
sweep from ``repro tiers --bench-out`` (per-tier hit ratios, origin
offload, and virtual-time p99 per (edge capacity x policy) cell), merged
into the document by :func:`attach_tiers_section`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.analyzer.analyzer import Analyzer
from repro.analyzer.cache import ProfileCache
from repro.crawler.crawler import HubCrawler
from repro.downloader.downloader import Downloader
from repro.downloader.session import SimulatedSession
from repro.obs import MetricsRegistry
from repro.parallel.pool import ParallelConfig
from repro.registry.search import HubSearchEngine
from repro.synth.config import SyntheticHubConfig
from repro.synth.hubgen import generate_dataset
from repro.synth.materialize import materialize_registry
from repro.util.timer import Timer

BENCH_FORMAT_VERSION = 4

#: scales the harness knows how to build, smallest first. ``mid`` is a
#: bench-only preset: tiny's layer shape at 4x the image count, so the
#: default matrix finishes in well under a minute even on one core.
#: ``small`` keeps the heavier integration-test shape and is opt-in.
BENCH_SCALES = ("tiny", "mid", "small")

_DEFAULT_SCALES = ("tiny", "mid")
_DEFAULT_MODES = ("serial", "thread", "process")

#: columnar-only scales on top of :data:`BENCH_SCALES`. ``10m`` crosses the
#: issue's 10⁷-occurrence bar (~10.2 M file occurrences); ``full`` is the
#: whole bench preset (~38 M occurrences, ~0.7 % of paper image count).
COLUMNAR_SCALES = BENCH_SCALES + ("10m", "full")
DEFAULT_COLUMNAR_SCALES = ("mid", "10m")


def _scale_config(scale: str, seed: int) -> SyntheticHubConfig:
    if scale == "mid":
        return replace(
            SyntheticHubConfig.tiny(seed=seed),
            n_images=120,
            n_rare_types=40,
            n_official=10,
        )
    if scale not in BENCH_SCALES:
        raise ValueError(
            f"unknown bench scale {scale!r}; expected one of {BENCH_SCALES}"
        )
    return getattr(SyntheticHubConfig, scale)(seed=seed)


def _columnar_scale_config(scale: str, seed: int) -> SyntheticHubConfig:
    if scale == "10m":
        return replace(SyntheticHubConfig.bench(seed=seed), n_images=800)
    if scale == "full":
        return SyntheticHubConfig.bench(seed=seed)
    if scale not in BENCH_SCALES:
        raise ValueError(
            f"unknown columnar scale {scale!r}; expected one of {COLUMNAR_SCALES}"
        )
    return _scale_config(scale, seed)


def _pool_workers(metrics: MetricsRegistry, mode: str) -> int:
    """Read back how many workers the last dispatch actually started."""
    from repro.obs import counter_total

    return int(counter_total(metrics, "parallel_pool_workers", mode=mode))


@dataclass
class BenchRun:
    """One cell of the mode x cache matrix."""

    mode: str
    cache: str  # "cold" | "warm"
    analyze_s: float
    n_layers: int
    n_images: int
    n_file_occurrences: int
    layers_per_s: float
    files_per_s: float
    cache_stats: dict[str, int]
    extraction_skip_fraction: float
    identical_to_serial: bool
    effective_workers: int  # from the parallel_pool_workers gauge
    cpu_count: int

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "cache": self.cache,
            "analyze_s": round(self.analyze_s, 6),
            "n_layers": self.n_layers,
            "n_images": self.n_images,
            "n_file_occurrences": self.n_file_occurrences,
            "layers_per_s": round(self.layers_per_s, 3),
            "files_per_s": round(self.files_per_s, 3),
            "cache_stats": self.cache_stats,
            "extraction_skip_fraction": round(self.extraction_skip_fraction, 4),
            "identical_to_serial": self.identical_to_serial,
            "effective_workers": self.effective_workers,
            "cpu_count": self.cpu_count,
        }


@dataclass
class ScaleBench:
    """Everything measured at one hub scale."""

    scale: str
    n_images: int
    n_layers: int
    setup_s: float
    download_s: float
    runs: list[BenchRun] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "n_images": self.n_images,
            "n_layers": self.n_layers,
            "setup_s": round(self.setup_s, 6),
            "download_s": round(self.download_s, 6),
            "runs": [run.to_dict() for run in self.runs],
        }


def _fingerprint(analysis) -> tuple:
    """A dataset identity check that is cheap and order-sensitive."""
    dataset = analysis.dataset
    return (
        analysis.n_layers,
        analysis.n_images,
        dataset.layer_fls.tolist(),
        dataset.file_sizes.tolist(),
        sorted(analysis.failed_layers),
    )


def bench_scale(
    scale: str,
    *,
    seed: int = 2017,
    modes: tuple[str, ...] = _DEFAULT_MODES,
    workers: int | None = None,
    repeats: int = 1,
    cache_root: str | Path | None = None,
) -> ScaleBench:
    """Run the mode x cache matrix at one scale.

    ``repeats`` re-times each cell and keeps the fastest run (cold cells
    reset their cache directory each repeat, warm cells keep it warm).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    config = _scale_config(scale, seed)
    with Timer() as setup_t:
        template = generate_dataset(config)
        registry, truth = materialize_registry(
            template,
            fail_share=config.fail_share,
            fail_auth_share=config.fail_auth_share,
            seed=config.seed,
        )
        crawl = HubCrawler(HubSearchEngine(registry, seed=config.seed)).crawl()
    with Timer() as download_t:
        downloader = Downloader(
            SimulatedSession(registry, seed=config.seed),
            parallel=ParallelConfig(mode="thread", workers=workers),
        )
        images = downloader.download_all(crawl.repositories)
    pull_counts = {r.name: r.pull_count for r in registry.repositories()}

    def analyze(mode: str, cache: ProfileCache | None):
        parallel = ParallelConfig(
            mode=mode, workers=workers, chunk_size=8, min_parallel_items=0
        )
        metrics = MetricsRegistry()
        analyzer = Analyzer(
            downloader.dest,
            parallel=parallel,
            cache=cache,
            metrics=metrics,
        )
        with Timer() as t:
            analysis = analyzer.analyze(images, pull_counts)
        return analysis, t.elapsed, metrics

    reference_analysis, _, _ = analyze("serial", None)
    reference = _fingerprint(reference_analysis)
    bench = ScaleBench(
        scale=scale,
        n_images=reference_analysis.n_images,
        n_layers=reference_analysis.n_layers,
        setup_s=setup_t.elapsed,
        download_s=download_t.elapsed,
    )

    own_tmp = tempfile.TemporaryDirectory() if cache_root is None else None
    root = Path(own_tmp.name if own_tmp is not None else cache_root)
    try:
        for mode in modes:
            cache_dir = root / scale / mode
            for cache_state in ("cold", "warm"):
                best: BenchRun | None = None
                for _ in range(repeats):
                    if cache_state == "cold" and cache_dir.exists():
                        _clear_tree(cache_dir)
                    analysis, elapsed, metrics = analyze(mode, ProfileCache(cache_dir))
                    totals = analysis.dataset.totals()
                    stats = analysis.cache_stats
                    lookups = stats["hits"] + stats["misses"]
                    run = BenchRun(
                        mode=mode,
                        cache=cache_state,
                        analyze_s=elapsed,
                        n_layers=analysis.n_layers,
                        n_images=analysis.n_images,
                        n_file_occurrences=int(totals.n_file_occurrences),
                        layers_per_s=(
                            analysis.n_layers / elapsed if elapsed > 0 else 0.0
                        ),
                        files_per_s=(
                            totals.n_file_occurrences / elapsed
                            if elapsed > 0
                            else 0.0
                        ),
                        cache_stats=stats,
                        extraction_skip_fraction=(
                            stats["hits"] / lookups if lookups else 0.0
                        ),
                        identical_to_serial=_fingerprint(analysis) == reference,
                        effective_workers=_pool_workers(metrics, mode),
                        cpu_count=os.cpu_count() or 1,
                    )
                    if best is None or run.analyze_s < best.analyze_s:
                        best = run
                assert best is not None
                bench.runs.append(best)
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
    return bench


def _clear_tree(path: Path) -> None:
    import shutil

    shutil.rmtree(path, ignore_errors=True)


@dataclass
class ScanBench:
    """Cold/warm throughput of one dedup-aware vulnerability scan."""

    scale: str
    mode: str
    n_images: int
    n_unique_layers: int
    cold_s: float
    warm_s: float
    cold_layers_per_s: float
    warm_extractions: int
    savings_ratio: float
    findings_identical: bool

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "mode": self.mode,
            "n_images": self.n_images,
            "n_unique_layers": self.n_unique_layers,
            "cold_s": round(self.cold_s, 6),
            "warm_s": round(self.warm_s, 6),
            "cold_layers_per_s": round(self.cold_layers_per_s, 3),
            "warm_extractions": self.warm_extractions,
            "savings_ratio": round(self.savings_ratio, 4),
            "findings_identical": self.findings_identical,
        }


def bench_scan(
    scale: str = "tiny",
    *,
    seed: int = 2017,
    mode: str = "thread",
    workers: int | None = None,
) -> ScanBench:
    """Time a cold then a warm :class:`DedupScanner` pass over one hub."""
    from repro.obs import counter_total
    from repro.scan.cache import ScanCache
    from repro.scan.scanner import DedupScanner, targets_from_truth
    from repro.synth.lineage import (
        LineageConfig,
        PackageModel,
        SyntheticCveDatabase,
        generate_lineage,
    )

    config = _scale_config(scale, seed)
    dataset = generate_dataset(config)
    registry, truth = materialize_registry(
        dataset,
        fail_share=config.fail_share,
        fail_auth_share=config.fail_auth_share,
        seed=config.seed,
    )
    targets = targets_from_truth(registry, truth)
    lineage = generate_lineage(
        [t.name for t in targets],
        [t.pull_count for t in targets],
        LineageConfig(seed=seed),
    )
    db = SyntheticCveDatabase(seed=seed)
    model = PackageModel(seed=seed)
    parallel = ParallelConfig(
        mode=mode, workers=workers, chunk_size=8, min_parallel_items=0
    )

    def scan(cache: ScanCache, metrics: MetricsRegistry):
        scanner = DedupScanner(
            registry.blobs, db, model,
            parallel=parallel, cache=cache, metrics=metrics,
        )
        with Timer() as t:
            report = scanner.scan(targets, lineage)
        return report, t.elapsed

    with tempfile.TemporaryDirectory() as tmp:
        cold_report, cold_s = scan(ScanCache(tmp, db_version=db.version()),
                                   MetricsRegistry())
        warm_metrics = MetricsRegistry()
        warm_report, warm_s = scan(ScanCache(tmp, db_version=db.version()),
                                   warm_metrics)
        warm_extractions = int(
            counter_total(warm_metrics, "scan_layers_extracted_total")
        )

    return ScanBench(
        scale=scale,
        mode=mode,
        n_images=cold_report.n_images,
        n_unique_layers=cold_report.n_unique_layers,
        cold_s=cold_s,
        warm_s=warm_s,
        cold_layers_per_s=(
            cold_report.n_unique_layers / cold_s if cold_s > 0 else 0.0
        ),
        warm_extractions=warm_extractions,
        savings_ratio=cold_report.savings_ratio,
        findings_identical=(
            cold_report.findings_json() == warm_report.findings_json()
        ),
    )


@dataclass
class ColumnarRun:
    """One cell of the columnar mode x store-temperature matrix."""

    mode: str
    cache: str  # "cold" | "warm"
    analyze_s: float
    n_chunks: int
    n_occurrences: int
    files_per_s: float
    identical_to_serial: bool
    effective_workers: int
    cpu_count: int

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "cache": self.cache,
            "analyze_s": round(self.analyze_s, 6),
            "n_chunks": self.n_chunks,
            "n_occurrences": self.n_occurrences,
            "files_per_s": round(self.files_per_s, 3),
            "identical_to_serial": self.identical_to_serial,
            "effective_workers": self.effective_workers,
            "cpu_count": self.cpu_count,
        }


@dataclass
class ColumnarScaleBench:
    """Streaming columnar analysis measured at one hub scale."""

    scale: str
    n_layers: int
    n_chunks: int
    n_occurrences: int
    chunk_occurrences: int
    generate_spill_s: float
    store_bytes: int
    in_memory_identical: bool | None  # None when the check was skipped
    runs: list[ColumnarRun] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "n_layers": self.n_layers,
            "n_chunks": self.n_chunks,
            "n_occurrences": self.n_occurrences,
            "chunk_occurrences": self.chunk_occurrences,
            "generate_spill_s": round(self.generate_spill_s, 6),
            "store_bytes": self.store_bytes,
            "in_memory_identical": self.in_memory_identical,
            "runs": [run.to_dict() for run in self.runs],
        }


def bench_columnar(
    scale: str,
    *,
    seed: int = 2017,
    modes: tuple[str, ...] = _DEFAULT_MODES,
    workers: int | None = None,
    repeats: int = 1,
    chunk_occurrences: int | None = None,
    check_in_memory: bool = True,
) -> ColumnarScaleBench:
    """Run the streaming columnar matrix at one scale.

    Generates and spills the chunked hub once (timed as setup, not as a
    cell), then times :func:`streaming_report` per mode: ``cold`` is the
    first pass over the freshly written store, ``warm`` the best of
    *repeats* further passes. Every cell byte-compares its serialized
    report to the serial cold reference; with *check_in_memory* the scale
    additionally proves the streaming answer equals the monolithic
    :func:`report_from_dataset` one — that comparison regenerates the hub
    as a full in-memory dataset, so switch it off for scales that only fit
    chunked.
    """
    from repro.core.colstream import report_from_dataset, streaming_report
    from repro.synth.hubgen import generate_dataset
    from repro.synth.streamgen import (
        DEFAULT_CHUNK_OCCURRENCES,
        iter_dataset_chunks,
        open_chunk_store,
        spill_chunks,
    )

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if scale not in COLUMNAR_SCALES:
        raise ValueError(
            f"unknown columnar scale {scale!r}; expected one of {COLUMNAR_SCALES}"
        )
    config = _columnar_scale_config(scale, seed)
    budget = chunk_occurrences or DEFAULT_CHUNK_OCCURRENCES

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "chunks"
        with Timer() as setup_t:
            spill_chunks(
                iter_dataset_chunks(config, chunk_occurrences=budget), store
            )
        specs = open_chunk_store(store)
        store_bytes = sum(p.stat().st_size for p in store.iterdir())
        n_occurrences = sum(s.n_occurrences for s in specs)

        def run_report(mode: str):
            metrics = MetricsRegistry()
            parallel = ParallelConfig(
                mode=mode, workers=workers, min_parallel_items=0
            )
            with Timer() as t:
                report = streaming_report(
                    specs, parallel=parallel, metrics=metrics
                )
            return report.to_json(), t.elapsed, _pool_workers(metrics, mode)

        reference, _, _ = run_report("serial")
        bench = ColumnarScaleBench(
            scale=scale,
            n_layers=specs[-1].layer_end if specs else 0,
            n_chunks=len(specs),
            n_occurrences=n_occurrences,
            chunk_occurrences=budget,
            generate_spill_s=setup_t.elapsed,
            store_bytes=store_bytes,
            in_memory_identical=None,
        )
        for mode in modes:
            for cache_state in ("cold", "warm"):
                best: ColumnarRun | None = None
                for _ in range(1 if cache_state == "cold" else repeats):
                    got, elapsed, eff = run_report(mode)
                    run = ColumnarRun(
                        mode=mode,
                        cache=cache_state,
                        analyze_s=elapsed,
                        n_chunks=len(specs),
                        n_occurrences=n_occurrences,
                        files_per_s=(
                            n_occurrences / elapsed if elapsed > 0 else 0.0
                        ),
                        identical_to_serial=got == reference,
                        effective_workers=eff,
                        cpu_count=os.cpu_count() or 1,
                    )
                    if best is None or run.analyze_s < best.analyze_s:
                        best = run
                assert best is not None
                bench.runs.append(best)

    if check_in_memory:
        dataset = generate_dataset(config)
        bench.in_memory_identical = (
            report_from_dataset(dataset).to_json() == reference
        )
    return bench


def run_columnar_bench(
    *,
    scales: tuple[str, ...] = DEFAULT_COLUMNAR_SCALES,
    modes: tuple[str, ...] = _DEFAULT_MODES,
    seed: int = 2017,
    workers: int | None = None,
    repeats: int = 1,
    chunk_occurrences: int | None = None,
    check_in_memory: bool = True,
    out: str | Path | None = None,
) -> dict:
    """Benchmark the streaming columnar engine and write the v3 record."""
    results = [
        bench_columnar(
            scale,
            seed=seed,
            modes=modes,
            workers=workers,
            repeats=repeats,
            chunk_occurrences=chunk_occurrences,
            check_in_memory=check_in_memory,
        )
        for scale in scales
    ]
    largest = results[-1]
    warm_best = {
        run.mode: run.files_per_s
        for run in largest.runs
        if run.cache == "warm"
    }
    serial_warm = warm_best.get("serial", 0.0)
    process_warm = warm_best.get("process", 0.0)
    doc = {
        "version": BENCH_FORMAT_VERSION,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "repeats": repeats,
        "columnar": [bench.to_dict() for bench in results],
        "summary": {
            "all_identical_to_serial": all(
                run.identical_to_serial
                for bench in results
                for run in bench.runs
            ),
            "all_in_memory_identical": all(
                bench.in_memory_identical in (True, None) for bench in results
            ),
            "largest_scale": largest.scale,
            "largest_n_occurrences": largest.n_occurrences,
            "largest_warm_files_per_s": {
                mode: round(v, 3) for mode, v in sorted(warm_best.items())
            },
            "process_vs_serial_warm_speedup": (
                round(process_warm / serial_warm, 3) if serial_warm > 0 else None
            ),
        },
    }
    if out is not None:
        Path(out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def run_pipeline_bench(
    *,
    scales: tuple[str, ...] = _DEFAULT_SCALES,
    modes: tuple[str, ...] = _DEFAULT_MODES,
    seed: int = 2017,
    workers: int | None = None,
    repeats: int = 1,
    out: str | Path | None = None,
) -> dict:
    """Benchmark every scale and write the JSON record to *out*.

    The returned document (and file) carries per-cell throughput, the
    cold-vs-warm extraction-skip fraction, and a summary comparing
    process-mode to serial cold-run throughput at the largest scale.
    """
    results = [
        bench_scale(
            scale,
            seed=seed,
            modes=modes,
            workers=workers,
            repeats=repeats,
        )
        for scale in scales
    ]

    def cell(bench: ScaleBench, mode: str, cache: str) -> BenchRun | None:
        for run in bench.runs:
            if run.mode == mode and run.cache == cache:
                return run
        return None

    scan = bench_scan(scales[0], seed=seed, workers=workers)

    largest = results[-1]
    serial_cold = cell(largest, "serial", "cold")
    process_cold = cell(largest, "process", "cold")
    warm_skips = [
        run.extraction_skip_fraction
        for bench in results
        for run in bench.runs
        if run.cache == "warm"
    ]
    doc = {
        "version": BENCH_FORMAT_VERSION,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "repeats": repeats,
        "scales": [bench.to_dict() for bench in results],
        "scan": scan.to_dict(),
        "summary": {
            "all_identical_to_serial": all(
                run.identical_to_serial for bench in results for run in bench.runs
            ),
            "process_vs_serial_cold_speedup": (
                round(process_cold.layers_per_s / serial_cold.layers_per_s, 3)
                if process_cold is not None
                and serial_cold is not None
                and serial_cold.layers_per_s > 0
                else None
            ),
            "min_warm_extraction_skip_fraction": (
                round(min(warm_skips), 4) if warm_skips else None
            ),
            "scan_warm_zero_extractions": scan.warm_extractions == 0,
        },
    }
    if out is not None:
        Path(out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def attach_tiers_section(path: Path | str, tiers_doc: dict) -> dict:
    """Merge a tiered-cache sweep report into a BENCH_pipeline.json.

    Loads the existing document (or starts a fresh stub when *path* does
    not exist yet), sets its ``tiers`` key, and stamps the current
    ``BENCH_FORMAT_VERSION`` — the sweep is part of the versioned bench
    record, not a side file. Returns the merged document.
    """
    path = Path(path)
    if path.exists():
        doc = json.loads(path.read_text())
    else:
        doc = {"seed": tiers_doc.get("config", {}).get("seed"), "cpu_count": os.cpu_count()}
    doc["tiers"] = tiers_doc
    doc["version"] = BENCH_FORMAT_VERSION
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def render_bench(doc: dict) -> str:
    """A human-readable table of a :func:`run_pipeline_bench` or
    :func:`run_columnar_bench` document."""
    lines = [
        f"pipeline bench (seed {doc['seed']}, {doc['cpu_count']} cpus, "
        f"workers {doc['workers'] or 'auto'})"
    ]
    for bench in doc.get("scales", []):
        lines.append(
            f"  {bench['scale']}: {bench['n_images']} images / "
            f"{bench['n_layers']} layers "
            f"(setup {bench['setup_s']:.2f}s, download {bench['download_s']:.2f}s)"
        )
        for run in bench["runs"]:
            check = "ok" if run["identical_to_serial"] else "MISMATCH"
            lines.append(
                f"    {run['mode']:>7}/{run['cache']:<4} "
                f"{run['analyze_s']:8.3f}s  "
                f"{run['layers_per_s']:10.1f} layers/s  "
                f"skip {run['extraction_skip_fraction']:6.1%}  [{check}]"
            )
    scan = doc.get("scan")
    if scan is not None:
        check = "ok" if scan["findings_identical"] else "MISMATCH"
        lines.append(
            f"  scan ({scan['scale']}/{scan['mode']}): "
            f"{scan['n_unique_layers']} unique layers, "
            f"cold {scan['cold_s']:.3f}s "
            f"({scan['cold_layers_per_s']:.1f} layers/s), "
            f"warm {scan['warm_s']:.3f}s "
            f"({scan['warm_extractions']} extractions), "
            f"dedup {scan['savings_ratio']:.2f}x  [{check}]"
        )
    for bench in doc.get("columnar", []):
        mem = bench["in_memory_identical"]
        mem_note = (
            "in-memory ok" if mem else
            ("in-memory check skipped" if mem is None else "IN-MEMORY MISMATCH")
        )
        lines.append(
            f"  columnar/{bench['scale']}: {bench['n_occurrences']:,} occurrences "
            f"in {bench['n_chunks']} chunks "
            f"({bench['store_bytes'] / 1e6:.1f} MB store, "
            f"spill {bench['generate_spill_s']:.2f}s)  [{mem_note}]"
        )
        for run in bench["runs"]:
            check = "ok" if run["identical_to_serial"] else "MISMATCH"
            lines.append(
                f"    {run['mode']:>7}/{run['cache']:<4} "
                f"{run['analyze_s']:8.3f}s  "
                f"{run['files_per_s']:12,.0f} files/s  "
                f"workers {run['effective_workers']:>2}  [{check}]"
            )
    summary = doc["summary"]
    speedup = summary.get("process_vs_serial_cold_speedup")
    if speedup is not None:
        lines.append(f"  process/serial cold speedup: {speedup:.2f}x")
    warm_speedup = summary.get("process_vs_serial_warm_speedup")
    if warm_speedup is not None:
        lines.append(f"  process/serial warm speedup: {warm_speedup:.2f}x")
    min_skip = summary.get("min_warm_extraction_skip_fraction")
    if min_skip is not None:
        lines.append(f"  min warm extraction skip: {min_skip:.1%}")
    lines.append(
        "  results identical to serial: "
        + ("yes" if summary["all_identical_to_serial"] else "NO")
    )
    if "all_in_memory_identical" in summary:
        lines.append(
            "  streaming identical to in-memory: "
            + ("yes" if summary["all_in_memory_identical"] else "NO")
        )
    return "\n".join(lines)
