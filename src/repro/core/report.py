"""Rendering: figure results → terminal report / EXPERIMENTS.md."""

from __future__ import annotations

from repro.core.figures import FigureResult


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "-"
    if abs(value) >= 1e12 or (value != 0 and abs(value) < 1e-3):
        return f"{value:.3g}"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.3f}"


def render_figure(result: FigureResult) -> str:
    """One figure's paper-vs-measured block, as fixed-width text."""
    lines = [f"{result.figure_id}  {result.title}"]
    for metric, measured in result.metrics.items():
        target = result.paper.get(metric)
        if target is not None and target != 0:
            lines.append(
                f"  {metric:<34} measured {_fmt(measured):>14}"
                f"   paper {_fmt(target):>14}   x{measured / target:.2f}"
            )
        else:
            lines.append(f"  {metric:<34} measured {_fmt(measured):>14}")
    return "\n".join(lines)


def render_report(results: list[FigureResult]) -> str:
    """The full multi-figure text report."""
    return "\n\n".join(render_figure(r) for r in results)


def render_experiments_markdown(
    results: list[FigureResult],
    *,
    preamble: str = "",
) -> str:
    """EXPERIMENTS.md body: one table per figure, paper vs measured.

    Only metrics with a paper target get a ratio column; extra measured
    metrics are listed for completeness.
    """
    out: list[str] = ["# EXPERIMENTS — paper vs. measured", ""]
    if preamble:
        out += [preamble, ""]
    for result in results:
        out.append(f"## {result.figure_id}: {result.title}")
        out.append("")
        out.append("| metric | measured | paper | measured/paper |")
        out.append("|---|---:|---:|---:|")
        for metric, measured in result.metrics.items():
            target = result.paper.get(metric)
            if target:
                out.append(
                    f"| {metric} | {_fmt(measured)} | {_fmt(target)} "
                    f"| {measured / target:.2f} |"
                )
            else:
                out.append(f"| {metric} | {_fmt(measured)} | – | – |")
        out.append("")
    return "\n".join(out)
