"""Shared breakdown helpers for the file-level figures (Figs. 13–22).

All functions are vectorized over the columnar dataset and aggregate by
type group or by a group's figure labels (the categories the paper plots,
e.g. ELF / Com. / PE / COFF / Pkg. / Lib. for Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.filetypes.catalog import RARE_TYPE_BASE, TypeCatalog, TypeGroup, default_catalog
from repro.model.dataset import HubDataset


@dataclass(frozen=True)
class BreakdownRow:
    """One bar of a count/capacity breakdown figure."""

    label: str
    count: int
    bytes: int

    def avg_size(self) -> float:
        return self.bytes / self.count if self.count else 0.0


@dataclass(frozen=True)
class Breakdown:
    rows: list[BreakdownRow]

    @property
    def total_count(self) -> int:
        return sum(r.count for r in self.rows)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes for r in self.rows)

    def count_share(self, label: str) -> float:
        total = self.total_count
        return self._row(label).count / total if total else 0.0

    def capacity_share(self, label: str) -> float:
        total = self.total_bytes
        return self._row(label).bytes / total if total else 0.0

    def avg_size(self, label: str) -> float:
        return self._row(label).avg_size()

    def labels(self) -> list[str]:
        return [r.label for r in self.rows]

    def _row(self, label: str) -> BreakdownRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labelled {label!r}")


def _aggregate(
    dataset: HubDataset, key_of_code: np.ndarray, labels: dict[int, str]
) -> Breakdown:
    occ_keys = key_of_code[dataset.occurrence_types]
    sizes = dataset.occurrence_sizes
    valid = occ_keys >= 0
    n_keys = max(labels) + 1 if labels else 0
    if n_keys == 0:
        return Breakdown(rows=[])
    counts = np.bincount(occ_keys[valid], minlength=n_keys)
    nbytes = np.bincount(occ_keys[valid], weights=sizes[valid], minlength=n_keys)
    rows = [
        BreakdownRow(label=labels[k], count=int(counts[k]), bytes=int(nbytes[k]))
        for k in sorted(labels)
        if counts[k] > 0
    ]
    rows.sort(key=lambda r: -r.count)
    return Breakdown(rows=rows)


def _max_code(dataset: HubDataset) -> int:
    return int(dataset.file_types.max()) if dataset.n_files else 0


def group_breakdown(
    dataset: HubDataset, catalog: TypeCatalog | None = None
) -> Breakdown:
    """Fig. 14: occurrences and capacity per type group."""
    catalog = catalog or default_catalog()
    key_of_code = catalog.group_of_code_table(_max_code(dataset)).astype(np.int64)
    labels = {int(g): g.name.lower() for g in TypeGroup}
    return _aggregate(dataset, key_of_code, labels)


def label_breakdown(
    dataset: HubDataset, group: TypeGroup, catalog: TypeCatalog | None = None
) -> Breakdown:
    """Figs. 16–22: occurrences and capacity per figure label inside a group."""
    catalog = catalog or default_catalog()
    codes = np.arange(_max_code(dataset) + 1)
    key_of_code = np.full(codes.size, -1)
    label_keys: dict[str, int] = {}
    labels: dict[int, str] = {}
    for c in codes:
        ftype = catalog.try_by_code(int(c))
        if ftype is None or ftype.group is not group:
            continue
        key = label_keys.setdefault(ftype.figure_label, len(label_keys))
        labels[key] = ftype.figure_label
        key_of_code[c] = key
    return _aggregate(dataset, key_of_code, labels)


@dataclass(frozen=True)
class TaxonomySummary:
    """Fig. 13's headline: how concentrated capacity is in common types."""

    total_types: int
    common_types: int
    common_capacity_share: float
    common_count_share: float


def taxonomy_summary(
    dataset: HubDataset,
    catalog: TypeCatalog | None = None,
    *,
    capacity_threshold_share: float | None = None,
) -> TaxonomySummary:
    """Classify types into common/non-common by capacity.

    The paper's criterion is absolute (> 7 GB per type at 167 TB total,
    i.e. ~0.004 % of total capacity); we apply the same *relative*
    threshold so the split scales with dataset size.
    """
    catalog = catalog or default_catalog()
    threshold_share = (
        capacity_threshold_share if capacity_threshold_share is not None else 7e9 / 167e12
    )
    occ_types = dataset.occurrence_types
    sizes = dataset.occurrence_sizes
    n_codes = _max_code(dataset) + 1
    type_bytes = np.bincount(occ_types, weights=sizes, minlength=n_codes)
    type_counts = np.bincount(occ_types, minlength=n_codes)
    present = type_counts > 0
    total_bytes = type_bytes.sum()
    threshold = threshold_share * total_bytes
    common = present & (type_bytes >= threshold)
    return TaxonomySummary(
        total_types=int(present.sum()),
        common_types=int(common.sum()),
        common_capacity_share=float(type_bytes[common].sum() / total_bytes)
        if total_bytes
        else 0.0,
        common_count_share=float(type_counts[common].sum() / type_counts.sum())
        if type_counts.sum()
        else 0.0,
    )


def rare_type_count(dataset: HubDataset) -> int:
    """Distinct non-common (synthetic long-tail) types present."""
    occ_types = np.unique(dataset.occurrence_types)
    return int((occ_types >= RARE_TYPE_BASE).sum())
