"""Every number the paper publishes, keyed by figure id and metric name.

These are the comparison baselines EXPERIMENTS.md reports against. Units are
bytes for sizes, plain counts/ratios otherwise; names match the keys the
figure compute functions emit.
"""

from __future__ import annotations

MB = 1_000_000
GB = 1_000_000_000

#: figure id -> {metric name -> paper value}
PAPER_TARGETS: dict[str, dict[str, float]] = {
    "fig3": {  # layer size distribution
        "cls_median": 4 * MB,
        "cls_p90": 63 * MB,
        "fls_median": 4 * MB,
        "fls_p90": 177 * MB,
    },
    "fig4": {  # compression ratios
        "ratio_median": 2.6,
        "ratio_p90": 4.0,
        "ratio_max": 1026.0,
        "frac_1_2": 300_000 / 1_792_609,
        "frac_2_3": 600_000 / 1_792_609,
    },
    "fig5": {  # files per layer
        "files_median": 30,
        "files_p90": 7410,
        "empty_fraction": 0.07,
        "single_fraction": 0.27,
        "files_max": 826_196,
    },
    "fig6": {  # directories per layer
        "dirs_median": 11,
        "dirs_p90": 826,
        "dirs_max": 111_940,
    },
    "fig7": {  # layer directory depth
        "depth_median": 4,
        "depth_p90": 10,
        "depth_mode": 3,
    },
    "fig8": {  # repository popularity
        "pulls_median": 40,
        "pulls_p90": 333,
        "pulls_max": 650e6,
    },
    "fig9": {  # image sizes
        "cis_median": 17 * MB,
        "cis_p90": 0.48 * GB,
        "fis_median": 94 * MB,
        "fis_p90": 1.3 * GB,
        "fis_max": 498 * GB,
    },
    "fig10": {  # layers per image
        "layers_median": 8,
        "layers_p90": 18,
        "layers_mode": 8,
        "layers_max": 120,
        "single_layer_fraction": 7_060 / 355_319,
    },
    "fig11": {  # directories per image
        "dirs_median": 296,
        "dirs_p90": 7_344,
    },
    "fig12": {  # files per image
        "files_median": 1_090,
        "files_p90": 64_780,
    },
    "fig13": {  # taxonomy
        "common_type_count": 133,
        "common_capacity_share": 0.984,
        "total_type_count": 1_500,
    },
    "fig14": {  # type-group shares
        "count_share_document": 0.44,
        "count_share_source": 0.13,
        "count_share_eol": 0.11,
        "count_share_script": 0.09,
        "count_share_media": 0.04,
        "capacity_share_eol": 0.37,
        "capacity_share_archive": 0.23,
        "capacity_share_document": 0.14,
    },
    "fig15": {  # average file size by group (bytes)
        "avg_size_database": 978_800,
        "avg_size_eol": 100_000,
        "avg_size_archive": 100_000,
    },
    "fig16": {  # EOL types
        "count_share_com": 0.64,
        "count_share_elf": 0.30,
        "capacity_share_elf": 0.84,
        "count_share_pe": 0.02,
        "avg_size_elf": 312_000,
        "avg_size_com": 9_000,
    },
    "fig17": {  # source code types
        "count_share_c_cpp": 0.803,
        "capacity_share_c_cpp": 0.80,
        "count_share_perl5": 0.09,
        "capacity_share_perl5": 0.11,
        "count_share_ruby": 0.08,
        "capacity_share_ruby": 0.03,
    },
    "fig18": {  # script types
        "count_share_python": 0.535,
        "capacity_share_python": 0.66,
        "count_share_shell": 0.20,
        "capacity_share_shell": 0.06,
        "count_share_ruby": 0.10,
        "capacity_share_ruby": 0.05,
    },
    "fig19": {  # document types
        "count_share_ascii": 0.80,
        "count_share_utf": 0.05,
        "count_share_xml_html": 0.13,
        "capacity_share_xml_html": 0.18,
        "text_capacity_share": 0.70,
    },
    "fig20": {  # archival types
        "count_share_zip_gzip": 0.963,
        "capacity_share_zip_gzip": 0.70,
        "avg_size_zip_gzip": 67_000,
        "avg_size_bzip2": 199_000,
        "avg_size_tar": 466_000,
        "avg_size_xz": 534_000,
    },
    "fig21": {  # database types
        "count_share_berkeley": 0.33,
        "count_share_mysql": 0.30,
        "count_share_sqlite": 0.07,
        "capacity_share_sqlite": 0.57,
    },
    "fig22": {  # media types
        "count_share_png": 0.67,
        "capacity_share_png": 0.45,
        "capacity_share_jpeg": 0.20,
    },
    "fig23": {  # layer sharing
        "single_ref_fraction": 0.90,
        "double_ref_fraction": 0.05,
        "empty_layer_ref_share": 184_171 / 355_319,
        "top_stack_ref_share": 33_413 / 355_319,
        "sharing_ratio": 85 / 47,
    },
    "fig24": {  # file-level dedup
        "unique_fraction": 0.032,
        "count_ratio": 31.5,
        "capacity_ratio": 6.9,
        "copies_median": 4,
        "copies_p90": 10,
        "multi_copy_fraction": 0.994,
        "max_repeat_occurrence_share": 53_654_306 / 5_278_465_130,
    },
    "fig25": {  # dedup growth
        "count_ratio_small": 3.6,
        "count_ratio_full": 31.5,
        "capacity_ratio_small": 1.9,
        "capacity_ratio_full": 6.9,
    },
    "fig26": {  # cross-layer/image duplicates
        "layer_p10": 0.976,
        "image_p10": 0.994,
    },
    "fig27": {  # dedup by group (eliminated capacity fraction)
        "overall": 0.8569,
        "script": 0.98,
        "source": 0.968,
        "document": 0.92,
        "eol": 0.86,
        "archive": 0.86,
        "media": 0.86,
        "database": 0.76,
    },
    "fig28": {  # EOL dedup
        "elf": 0.87,
        "com": 0.87,
        "pe": 0.87,
        "coff": 0.61,
        "library": 0.535,
        "elf_redundant_capacity_share": 0.734,
    },
    "fig29": {  # source-code dedup
        "c_cpp": 0.90,
        "perl5": 0.90,
        "ruby": 0.90,
        "c_cpp_redundant_capacity_share": 0.77,
    },
    "table1": {  # §III dataset totals
        "distinct_repositories": 457_627,
        "raw_search_results": 634_412,
        "images_downloaded": 355_319,
        "images_failed": 111_384,
        "failed_auth_share": 0.13,
        "failed_no_latest_share": 0.87,
        "unique_layers": 1_792_609,
        "file_occurrences": 5_278_465_130,
        "compressed_bytes": 47e12,
        "uncompressed_bytes": 167e12,
    },
}


def paper_value(figure_id: str, metric: str) -> float:
    """Look up one published number; raises KeyError with a helpful message."""
    try:
        return PAPER_TARGETS[figure_id][metric]
    except KeyError:
        raise KeyError(f"no paper target for {figure_id}/{metric}") from None
