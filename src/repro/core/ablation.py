"""Ablation experiments for the design choices the paper's analysis motivates.

A1 — *store small layers uncompressed* (§IV-A discussion): the paper
observes that most layers are small with low compression ratios, and that
client-side decompression dominates pull latency, so storing small layers
uncompressed could cut pull latency at a modest storage cost. We model pull
latency as network transfer + client decompression and sweep the
"store-uncompressed-below-T" threshold.

A2 — *popularity caching* (§IV-B discussion): pulls are extremely skewed, so
a small cache of popular repositories absorbs most pull traffic. We sweep
the cache size (most-popular-first, the offline-optimal policy for a static
popularity distribution) and report the request hit ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.downloader.session import NetworkModel
from repro.model.dataset import HubDataset

#: Client-side gunzip throughput; the paper cites decompression as a major
#: pull-latency source (via Slacker). ~60 MB/s of *uncompressed* output is a
#: representative single-core figure for gzip -6 era hardware.
DECOMPRESS_BYTES_PER_S = 60e6


@dataclass(frozen=True)
class UncompressedPoint:
    """One threshold of the A1 sweep."""

    threshold_bytes: int
    layers_uncompressed_fraction: float
    mean_pull_latency_s: float
    p90_pull_latency_s: float
    registry_bytes: int
    registry_blowup: float  # vs all-compressed storage


def pull_latency_model(
    cls: np.ndarray,
    fls: np.ndarray,
    uncompressed: np.ndarray,
    network: NetworkModel,
) -> np.ndarray:
    """Per-layer pull latency.

    Compressed layers: transfer CLS bytes, then decompress to FLS bytes.
    Uncompressed layers: transfer FLS bytes, no decompression.
    """
    transfer_bytes = np.where(uncompressed, fls, cls)
    latency = network.request_overhead_s + transfer_bytes / network.bandwidth_bytes_per_s
    latency = latency + np.where(uncompressed, 0.0, fls / DECOMPRESS_BYTES_PER_S)
    return latency


def uncompressed_small_layers(
    dataset: HubDataset,
    thresholds: list[int] | None = None,
    network: NetworkModel | None = None,
) -> list[UncompressedPoint]:
    """A1: sweep the store-uncompressed threshold.

    Latency is averaged over layer *pulls* — each unique layer weighted by
    its image reference count, since popular base layers are pulled more.
    """
    network = network or NetworkModel()
    cls = dataset.layer_cls.astype(np.float64)
    fls = dataset.layer_fls.astype(np.float64)
    weights = np.maximum(dataset.layer_ref_counts, 1).astype(np.float64)
    if thresholds is None:
        thresholds = [0, 1_000_000, 4_000_000, 16_000_000, 64_000_000, int(fls.max()) + 1]

    points: list[UncompressedPoint] = []
    baseline_storage = float(cls.sum())
    for threshold in thresholds:
        uncompressed = fls < threshold
        latency = pull_latency_model(cls, fls, uncompressed, network)
        registry_bytes = float(np.where(uncompressed, fls, cls).sum())
        order = np.argsort(latency)
        csum = np.cumsum(weights[order])
        p90_idx = int(np.searchsorted(csum, 0.9 * csum[-1]))
        points.append(
            UncompressedPoint(
                threshold_bytes=int(threshold),
                layers_uncompressed_fraction=float(uncompressed.mean()),
                mean_pull_latency_s=float(np.average(latency, weights=weights)),
                p90_pull_latency_s=float(latency[order][min(p90_idx, latency.size - 1)]),
                registry_bytes=int(registry_bytes),
                registry_blowup=registry_bytes / baseline_storage if baseline_storage else 0.0,
            )
        )
    return points


@dataclass(frozen=True)
class CachePoint:
    """One cache size of the A2 sweep."""

    cached_repositories: int
    cached_fraction: float
    hit_ratio: float  # fraction of pulls served from cache
    cache_bytes: int  # compressed bytes pinned


def popularity_cache(
    dataset: HubDataset,
    cache_fractions: list[float] | None = None,
) -> list[CachePoint]:
    """A2: hit ratio of a most-popular-first repository cache."""
    pulls = dataset.pull_counts.astype(np.float64)
    if pulls.size == 0 or pulls.sum() == 0:
        raise ValueError("dataset carries no pull counts")
    if cache_fractions is None:
        cache_fractions = [0.001, 0.01, 0.05, 0.10, 0.25, 0.50]
    order = np.argsort(pulls)[::-1]
    sorted_pulls = pulls[order]
    image_bytes = dataset.image_cls.astype(np.float64)[order]
    cum_pulls = np.cumsum(sorted_pulls)
    cum_bytes = np.cumsum(image_bytes)
    total = cum_pulls[-1]

    points: list[CachePoint] = []
    for fraction in cache_fractions:
        if not (0 < fraction <= 1):
            raise ValueError(f"cache fraction out of (0,1]: {fraction}")
        k = max(1, int(round(fraction * pulls.size)))
        points.append(
            CachePoint(
                cached_repositories=k,
                cached_fraction=k / pulls.size,
                hit_ratio=float(cum_pulls[k - 1] / total),
                cache_bytes=int(cum_bytes[k - 1]),
            )
        )
    return points
