"""Compression-method study — future work the paper names explicitly:
"we will further analyze how layer hierarchy and compression methods impact
access latency."

Given real layer tarballs, recompress each layer's uncompressed tar stream
with every candidate codec (store/gzip at several levels/bzip2/lzma),
measure actual compression ratios and (de)compression wall time, and fold
both into the pull-latency model: a pull transfers the compressed bytes and
then decompresses them client-side, so the best codec depends on the
client's bandwidth — fast links favour cheap decompression, slow links
favour density.
"""

from __future__ import annotations

import bz2
import gzip
import lzma
import time
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.downloader.session import NetworkModel

#: codec name -> (compress, decompress)
_CODECS: dict[str, tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]] = {
    "store": (lambda data: data, lambda data: data),
    "gzip-1": (lambda data: gzip.compress(data, compresslevel=1), gzip.decompress),
    "gzip-6": (lambda data: gzip.compress(data, compresslevel=6), gzip.decompress),
    "gzip-9": (lambda data: gzip.compress(data, compresslevel=9), gzip.decompress),
    "bzip2": (bz2.compress, bz2.decompress),
    "xz": (
        lambda data: lzma.compress(data, preset=1),
        lzma.decompress,
    ),
}


def codec_names() -> list[str]:
    return list(_CODECS)


@dataclass(frozen=True)
class CodecResult:
    """Aggregate measurements for one codec over a layer sample."""

    codec: str
    n_layers: int
    raw_bytes: int  # uncompressed tar bytes
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.compressed_bytes if self.compressed_bytes else 0.0

    @property
    def decompress_throughput(self) -> float:
        """Uncompressed bytes produced per second of decompression."""
        if self.decompress_seconds <= 0:
            return float("inf")
        return self.raw_bytes / self.decompress_seconds

    def mean_pull_latency(self, network: NetworkModel) -> float:
        """Per-layer pull latency: request + transfer + client decompress."""
        if self.n_layers == 0:
            return 0.0
        transfer = self.compressed_bytes / network.bandwidth_bytes_per_s
        return (
            network.request_overhead_s
            + (transfer + self.decompress_seconds) / self.n_layers
        )


def study_compression(
    raw_layers: list[bytes],
    codecs: list[str] | None = None,
) -> list[CodecResult]:
    """Measure every codec over *uncompressed* layer tar streams."""
    if not raw_layers:
        raise ValueError("need at least one layer to study")
    names = codecs if codecs is not None else codec_names()
    results: list[CodecResult] = []
    for name in names:
        try:
            compress, decompress = _CODECS[name]
        except KeyError:
            raise ValueError(f"unknown codec {name!r}; known: {codec_names()}") from None
        raw_total = 0
        compressed_total = 0
        compress_s = 0.0
        decompress_s = 0.0
        for raw in raw_layers:
            raw_total += len(raw)
            t0 = time.perf_counter()
            packed = compress(raw)
            compress_s += time.perf_counter() - t0
            compressed_total += len(packed)
            t0 = time.perf_counter()
            out = decompress(packed)
            decompress_s += time.perf_counter() - t0
            if out != raw:
                raise AssertionError(f"codec {name} is not lossless")
        results.append(
            CodecResult(
                codec=name,
                n_layers=len(raw_layers),
                raw_bytes=raw_total,
                compressed_bytes=compressed_total,
                compress_seconds=compress_s,
                decompress_seconds=decompress_s,
            )
        )
    return results


def decompress_gzip_layers(blobs: list[bytes]) -> list[bytes]:
    """Registry layers travel gzip'd; recover the raw tar streams."""
    return [gzip.decompress(blob) for blob in blobs]


def best_codec_by_latency(
    results: list[CodecResult], network: NetworkModel
) -> CodecResult:
    """The codec minimizing mean pull latency under a given network."""
    if not results:
        raise ValueError("no codec results to compare")
    return min(results, key=lambda r: r.mean_pull_latency(network))
