"""ASCII rendering of the paper's figure types.

No plotting dependency is available offline, so the report layer renders
CDFs and histograms as fixed-width terminal charts — enough to eyeball the
shapes against the paper's figures (log-x CDFs, bar histograms, share
bars).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.characterization import Breakdown
from repro.stats.cdf import EmpiricalCDF
from repro.stats.histogram import Histogram
from repro.util.units import format_size

_BAR = "█"
_HALF = "▌"


def _format_x(value: float, as_bytes: bool) -> str:
    if as_bytes:
        return format_size(value)
    if value >= 1e6 or (value != 0 and abs(value) < 1e-2):
        return f"{value:.2g}"
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:.2f}"


def render_cdf(
    cdf: EmpiricalCDF,
    *,
    title: str = "",
    width: int = 60,
    height: int = 12,
    log_x: bool = True,
    as_bytes: bool = False,
) -> str:
    """Render an empirical CDF as an ASCII curve (log x-axis by default,
    matching the paper's size/count CDF plots)."""
    if width < 12 or height < 4:
        raise ValueError("chart too small to draw")
    x, frac = cdf.steps(max_points=4 * width)
    x = x.astype(np.float64)
    lo = max(float(x.min()), 1e-12)
    hi = max(float(x.max()), lo * (1 + 1e-9))
    use_log = log_x and hi / lo > 10

    def to_col(value: float) -> int:
        if hi == lo:
            return 0
        if use_log:
            pos = (math.log10(max(value, lo)) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
        else:
            pos = (value - lo) / (hi - lo)
        return min(width - 1, max(0, int(round(pos * (width - 1)))))

    # per column, the max CDF value reached
    levels = np.zeros(width)
    for value, f in zip(x, frac):
        col = to_col(float(value))
        levels[col] = max(levels[col], f)
    # forward-fill so the curve is monotone across empty columns
    running = 0.0
    for i in range(width):
        running = max(running, levels[i])
        levels[i] = running

    rows: list[str] = []
    if title:
        rows.append(title)
    for row in range(height, 0, -1):
        threshold = row / height
        line = "".join(_BAR if level >= threshold - 1e-12 else " " for level in levels)
        label = f"{threshold:4.0%} |" if row in (height, height // 2, 1) else "     |"
        rows.append(label + line)
    axis = "     +" + "-" * width
    rows.append(axis)
    left = _format_x(lo, as_bytes)
    right = _format_x(hi, as_bytes)
    mid = _format_x(math.sqrt(lo * hi) if use_log else (lo + hi) / 2, as_bytes)
    gap = max(1, width - len(left) - len(mid) - len(right))
    rows.append(
        "      " + left + " " * (gap // 2) + mid + " " * (gap - gap // 2) + right
        + ("  (log)" if use_log else "")
    )
    return "\n".join(rows)


def render_histogram(
    hist: Histogram,
    *,
    title: str = "",
    width: int = 48,
    max_rows: int = 16,
    as_bytes: bool = False,
) -> str:
    """Render a histogram as horizontal bars (top-count bins, in order)."""
    rows: list[str] = []
    if title:
        rows.append(title)
    counts = hist.counts
    if counts.size == 0 or counts.max() == 0:
        return (title + "\n" if title else "") + "  (empty)"
    keep = min(max_rows, counts.size)
    peak = counts.max()
    for i in range(keep):
        lo, hi = hist.edges[i], hist.edges[i + 1]
        label = f"[{_format_x(lo, as_bytes)}, {_format_x(hi, as_bytes)})"
        filled = counts[i] / peak * width
        bar = _BAR * int(filled) + (_HALF if filled - int(filled) >= 0.5 else "")
        rows.append(f"  {label:>24} {bar:<{width}} {counts[i]:,}")
    hidden = counts.size - keep
    tail = int(counts[keep:].sum()) + hist.overflow
    if hidden > 0 or hist.overflow:
        rows.append(f"  {'...':>24} ({hidden} more bins / {tail:,} values)")
    return "\n".join(rows)


def render_share_bars(
    breakdown: Breakdown,
    *,
    title: str = "",
    by: str = "count",
    width: int = 40,
) -> str:
    """Render a count/capacity share breakdown (Figs. 14-22 style)."""
    if by not in ("count", "bytes"):
        raise ValueError(f"by must be 'count' or 'bytes', got {by!r}")
    rows: list[str] = []
    if title:
        rows.append(title)
    total = breakdown.total_count if by == "count" else breakdown.total_bytes
    if total == 0:
        return (title + "\n" if title else "") + "  (empty)"
    ordered = sorted(
        breakdown.rows, key=lambda r: -(r.count if by == "count" else r.bytes)
    )
    for row in ordered:
        value = row.count if by == "count" else row.bytes
        share = value / total
        bar = _BAR * max(1 if value else 0, int(round(share * width)))
        rows.append(f"  {row.label:>12} {bar:<{width}} {share:6.1%}")
    return "\n".join(rows)
