"""End-to-end pipelines (§III, Fig. 2: Crawler → Downloader → Analyzer).

Two entry points:

* :func:`run_materialized_pipeline` — the full-fidelity path. Generates a
  small synthetic hub, materializes it into a real registry (tarballs,
  manifests, failure population), then crawls, downloads, extracts, and
  profiles real bytes. This is the path integration tests verify against
  ground truth.
* :func:`run_columnar_pipeline` — the scale path. Generates the calibrated
  columnar dataset directly (the statistical equivalent of what the
  materialized path measures) and computes every figure on it. The benchmark
  harness uses this at ~10⁴ layers / ~10⁷ file occurrences.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analyzer.analyzer import AnalysisResult, Analyzer
from repro.analyzer.cache import ProfileCache
from repro.obs import MetricsRegistry
from repro.core.figures import FigureResult, compute_all_figures
from repro.crawler.crawler import CrawlResult, HubCrawler
from repro.downloader.downloader import Downloader, DownloadStats
from repro.downloader.session import NetworkModel, SimulatedSession
from repro.model.dataset import DatasetTotals, HubDataset
from repro.parallel.pool import ParallelConfig
from repro.registry.registry import Registry
from repro.registry.search import HubSearchEngine
from repro.synth.config import SyntheticHubConfig
from repro.synth.hubgen import generate_dataset
from repro.synth.materialize import GroundTruth, materialize_registry


@dataclass
class MaterializedPipelineResult:
    """Everything the full-fidelity run produced."""

    registry: Registry
    truth: GroundTruth
    crawl: CrawlResult
    download_stats: DownloadStats
    analysis: AnalysisResult
    figures: list[FigureResult]

    @property
    def dataset(self) -> HubDataset:
        return self.analysis.dataset

    def totals(self) -> DatasetTotals:
        return self.dataset.totals()


@dataclass
class ColumnarPipelineResult:
    """The scale run: the generated dataset plus all figure results."""

    dataset: HubDataset
    figures: list[FigureResult]

    def totals(self) -> DatasetTotals:
        return self.dataset.totals()


def run_materialized_pipeline(
    config: SyntheticHubConfig | None = None,
    *,
    network: NetworkModel | None = None,
    parallel: ParallelConfig | None = None,
    compute_figures: bool = True,
    cache_dir: str | Path | None = None,
    metrics: MetricsRegistry | None = None,
) -> MaterializedPipelineResult:
    """Generate → materialize → crawl → download → analyze, on real bytes.

    Use :meth:`SyntheticHubConfig.tiny` (default) or ``small``; larger
    configs would build every tarball for real and take accordingly long.
    ``cache_dir`` enables the persistent profile cache there — rerunning
    against an unchanged corpus skips extraction for every cached layer
    (see ``analysis.cache_stats``). ``metrics`` collects the pool and
    cache counters of the analysis phase.
    """
    config = config or SyntheticHubConfig.tiny()
    template = generate_dataset(config)
    registry, truth = materialize_registry(
        template,
        fail_share=config.fail_share,
        fail_auth_share=config.fail_auth_share,
        seed=config.seed,
    )

    search = HubSearchEngine(registry, seed=config.seed)
    crawl = HubCrawler(search).crawl()

    session = SimulatedSession(registry, network, seed=config.seed)
    downloader = Downloader(session, parallel=parallel)
    images = downloader.download_all(crawl.repositories)

    pull_counts = {
        repo.name: repo.pull_count for repo in registry.repositories()
    }
    analyzer = Analyzer(
        downloader.dest,
        parallel=parallel,
        cache=ProfileCache(cache_dir) if cache_dir is not None else None,
        metrics=metrics,
    )
    analysis = analyzer.analyze(images, pull_counts)

    figures = compute_all_figures(analysis.dataset) if compute_figures else []
    return MaterializedPipelineResult(
        registry=registry,
        truth=truth,
        crawl=crawl,
        download_stats=downloader.stats,
        analysis=analysis,
        figures=figures,
    )


def run_columnar_pipeline(
    config: SyntheticHubConfig | None = None,
) -> ColumnarPipelineResult:
    """Generate the calibrated dataset at scale and compute every figure."""
    config = config or SyntheticHubConfig.bench()
    dataset = generate_dataset(config)
    return ColumnarPipelineResult(
        dataset=dataset, figures=compute_all_figures(dataset)
    )


def run_http_pipeline(
    config: SyntheticHubConfig | None = None,
    *,
    parallel: ParallelConfig | None = None,
    compute_figures: bool = True,
    cache_dir: str | Path | None = None,
) -> MaterializedPipelineResult:
    """The materialized pipeline, but over a real HTTP socket.

    Spins up the Docker Registry v2 HTTP server on localhost, then runs the
    crawler (via the HTTP search endpoint) and downloader (via the HTTP v2
    API) against it — the §III pipeline across an actual network boundary.
    """
    from repro.registry.http import (
        HTTPSearchClient,
        HTTPSession,
        RegistryHTTPServer,
    )

    config = config or SyntheticHubConfig.tiny()
    template = generate_dataset(config)
    registry, truth = materialize_registry(
        template,
        fail_share=config.fail_share,
        fail_auth_share=config.fail_auth_share,
        seed=config.seed,
    )
    search = HubSearchEngine(registry, seed=config.seed)
    with RegistryHTTPServer(registry, search) as server:
        crawl = HubCrawler(HTTPSearchClient(server.base_url)).crawl()
        downloader = Downloader(HTTPSession(server.base_url), parallel=parallel)
        images = downloader.download_all(crawl.repositories)
        pull_counts = {r.name: r.pull_count for r in registry.repositories()}
        analyzer = Analyzer(
            downloader.dest,
            parallel=parallel,
            cache=ProfileCache(cache_dir) if cache_dir is not None else None,
        )
        analysis = analyzer.analyze(images, pull_counts)
    figures = compute_all_figures(analysis.dataset) if compute_figures else []
    return MaterializedPipelineResult(
        registry=registry,
        truth=truth,
        crawl=crawl,
        download_stats=downloader.stats,
        analysis=analysis,
        figures=figures,
    )
