"""The figure/report layer: everything §IV–§V reports, reproducible.

* :mod:`paper_targets` — every number the paper publishes, keyed by figure;
* :mod:`characterization` — shared breakdown helpers (type shares, sizes);
* :mod:`figures` — one compute function per paper figure, returning series
  plus headline metrics side-by-side with the paper's values;
* :mod:`report` — text/markdown rendering (EXPERIMENTS.md comes from here);
* :mod:`pipeline` — the end-to-end crawl→download→analyze→characterize run;
* :mod:`ablation` — the design-choice experiments the paper's discussion
  motivates (uncompressed small layers, popularity caching).
"""

from repro.core.colstream import (
    ColumnarPartial,
    ColumnarReport,
    finalize_report,
    merge_partials,
    partial_from_chunk,
    report_from_chunks,
    report_from_dataset,
    streaming_report,
)
from repro.core.figures import FIGURES, FigureResult, compute_all_figures, compute_figure
from repro.core.paper_targets import PAPER_TARGETS, paper_value
from repro.core.pipeline import (
    ColumnarPipelineResult,
    MaterializedPipelineResult,
    run_columnar_pipeline,
    run_http_pipeline,
    run_materialized_pipeline,
)
from repro.core.experiments import write_experiments
from repro.core.growth_projection import GrowthProjection, project_growth
from repro.core.paper_curves import (
    PAPER_CURVES,
    score_figure_curves,
    worst_scale_free_deviation,
)
from repro.core.report import render_experiments_markdown, render_report

__all__ = [
    "FIGURES",
    "ColumnarPartial",
    "ColumnarPipelineResult",
    "ColumnarReport",
    "FigureResult",
    "GrowthProjection",
    "MaterializedPipelineResult",
    "PAPER_CURVES",
    "PAPER_TARGETS",
    "compute_all_figures",
    "compute_figure",
    "finalize_report",
    "merge_partials",
    "paper_value",
    "partial_from_chunk",
    "project_growth",
    "render_experiments_markdown",
    "render_report",
    "report_from_chunks",
    "report_from_dataset",
    "streaming_report",
    "run_columnar_pipeline",
    "run_http_pipeline",
    "run_materialized_pipeline",
    "score_figure_curves",
    "worst_scale_free_deviation",
    "write_experiments",
]
