"""Anchor points read off the paper's CDF figures, and agreement scoring.

Scalar metrics (medians, p90s) compare magnitudes; the *curves* carry more
information. For each CDF figure we record the anchor points the paper
states in its text ("90 % of layers are smaller than 177 MB", "half of the
layers have less than 30 files", ...) as ``(x, F(x))`` pairs, and score a
measured CDF by the vertical deviation at each anchor — the same quantity a
reader checks by eye when comparing plots.

Vertical deviation is the right metric here: horizontal (x) deviation
conflates scale (our corpus is ~0.7 % of the paper's) with shape, while
``F(x)`` at a given x is exactly the fraction statement the paper makes.
Anchors marked ``scale_free=False`` involve absolute sizes that shift with
corpus scale and are reported but not held to the tight band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.figures import FigureResult
from repro.stats.cdf import EmpiricalCDF

MB = 1_000_000
GB = 1_000_000_000


@dataclass(frozen=True)
class CurveAnchor:
    """One published point of a CDF: ``F(x) == fraction`` per the paper."""

    x: float
    fraction: float
    source: str  # the sentence/figure the anchor comes from
    scale_free: bool = True


@dataclass(frozen=True)
class AnchorScore:
    anchor: CurveAnchor
    measured_fraction: float

    @property
    def deviation(self) -> float:
        return abs(self.measured_fraction - self.anchor.fraction)


#: figure id -> series name -> anchors
PAPER_CURVES: dict[str, dict[str, list[CurveAnchor]]] = {
    "fig3": {
        "cls_cdf": [
            CurveAnchor(4 * MB, 0.50, "§IV-A: ~half of layers < 4 MB compressed", False),
            CurveAnchor(63 * MB, 0.90, "§IV-A: 90% of layers < 63 MB compressed", False),
        ],
        "fls_cdf": [
            CurveAnchor(4 * MB, 0.50, "§IV-A: ~half of layers < 4 MB uncompressed", False),
            CurveAnchor(177 * MB, 0.90, "§IV-A: 90% of layers < 177 MB uncompressed", False),
        ],
    },
    "fig4": {
        "ratio_cdf": [
            CurveAnchor(2.6, 0.50, "§IV-A: median compression ratio 2.6"),
            CurveAnchor(4.0, 0.90, "§IV-A: 90% of layers have ratio < 4"),
        ],
    },
    "fig5": {
        "files_cdf": [
            CurveAnchor(1, 0.34, "§IV-A: 7% empty + 27% single-file layers"),
            # the small/tiny presets scale per-layer counts down, so the
            # count anchors are meaningful only at bench scale
            CurveAnchor(30, 0.50, "§IV-A: half of layers have < 30 files", False),
            CurveAnchor(7410, 0.90, "§IV-A: 90% of layers < 7,410 files", False),
        ],
    },
    "fig6": {
        "dirs_cdf": [
            CurveAnchor(11, 0.50, "§IV-A: half of layers < 11 directories", False),
            CurveAnchor(826, 0.90, "§IV-A: 90% of layers < 826 directories", False),
        ],
    },
    "fig7": {
        "depth_cdf": [
            CurveAnchor(4, 0.50, "§IV-A: 50% of layers have depth < 4"),
            CurveAnchor(10, 0.90, "§IV-A: 90% of layers have depth < 10"),
        ],
    },
    "fig8": {
        "pulls_cdf": [
            CurveAnchor(40, 0.50, "§IV-B: median image pulled 40 times"),
            CurveAnchor(333, 0.90, "§IV-B: p90 pull count 333"),
        ],
    },
    "fig9": {
        "cis_cdf": [
            CurveAnchor(17 * MB, 0.50, "§IV-B: median compressed image 17 MB", False),
            CurveAnchor(0.48 * GB, 0.90, "§IV-B: 90% of compressed images < 0.48 GB", False),
        ],
        "fis_cdf": [
            CurveAnchor(94 * MB, 0.50, "§IV-B: median uncompressed image 94 MB", False),
            CurveAnchor(1.3 * GB, 0.90, "§IV-B: 90% of images < 1.3 GB", False),
        ],
    },
    "fig10": {
        "layers_cdf": [
            CurveAnchor(8, 0.50, "§IV-B: half of images have < 8 layers"),
            CurveAnchor(18, 0.90, "§IV-B: 90% of images < 18 layers"),
        ],
    },
    "fig11": {
        "dirs_cdf": [
            CurveAnchor(296, 0.50, "§IV-B: median 296 directories per image", False),
            CurveAnchor(7344, 0.90, "§IV-B: 90% of images < 7,344 directories", False),
        ],
    },
    "fig12": {
        "files_cdf": [
            CurveAnchor(1090, 0.50, "§IV-B: median 1,090 files per image", False),
            CurveAnchor(64_780, 0.90, "§IV-B: 90% of images < 64,780 files", False),
        ],
    },
    "fig24": {
        # Fig 24's CDF is over unique files by repeat count
        "repeat_cdf": [
            CurveAnchor(1, 0.006, "§V-B: >99.4% of files have more than one copy"),
            CurveAnchor(4, 0.50, "§V-B: ~50% of files have exactly 4 copies"),
            CurveAnchor(10, 0.90, "§V-B: 90% of files have <= 10 copies"),
        ],
    },
}


def _series_cdf(result: FigureResult, series_name: str) -> EmpiricalCDF:
    if series_name == "repeat_cdf":
        return result.series["report"].repeat_cdf
    series = result.series[series_name]
    if not isinstance(series, EmpiricalCDF):
        raise TypeError(f"{result.figure_id}/{series_name} is not a CDF")
    return series


def score_figure_curves(result: FigureResult) -> dict[str, list[AnchorScore]]:
    """Deviation at every anchor the paper publishes for this figure."""
    anchors = PAPER_CURVES.get(result.figure_id)
    if not anchors:
        return {}
    out: dict[str, list[AnchorScore]] = {}
    for series_name, points in anchors.items():
        cdf = _series_cdf(result, series_name)
        out[series_name] = [
            AnchorScore(
                anchor=anchor,
                measured_fraction=cdf.fraction_at_most(anchor.x),
            )
            for anchor in points
        ]
    return out


def worst_scale_free_deviation(results: list[FigureResult]) -> float:
    """The largest anchor deviation among scale-free anchors — the single
    number summarizing how faithfully the curve shapes reproduce."""
    worst = 0.0
    for result in results:
        for scores in score_figure_curves(result).values():
            for score in scores:
                if score.anchor.scale_free:
                    worst = max(worst, score.deviation)
    return worst


def curves_markdown(results: list[FigureResult]) -> str:
    """A per-anchor markdown table for EXPERIMENTS.md."""
    lines = ["## Curve anchors: F(x) at the paper's published points", ""]
    lines.append("| figure | series | x | paper F(x) | measured F(x) | deviation | scale-free |")
    lines.append("|---|---|---:|---:|---:|---:|---|")
    for result in results:
        for series_name, scores in score_figure_curves(result).items():
            for score in scores:
                a = score.anchor
                lines.append(
                    f"| {result.figure_id} | {series_name} | {a.x:g} "
                    f"| {a.fraction:.3f} | {score.measured_fraction:.3f} "
                    f"| {score.deviation:.3f} | {'yes' if a.scale_free else 'no'} |"
                )
    lines.append("")
    return "\n".join(lines)
