"""Registry growth projection (§I's motivating observation).

The paper observed Docker Hub growing linearly at **1,241 public
repositories per day** (June–September 2017) and argues that storage
optimizations matter because the dataset only gets bigger. This module
turns that observation plus the measured per-repository footprint into a
capacity-planning projection: raw storage demand over time under each
storage design (blob-per-layer, layer sharing only, layer sharing +
file-level dedup), including the scale-dependence of the dedup ratio that
Fig. 25 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dedup.engine import file_dedup_report
from repro.dedup.growth import dedup_growth
from repro.dedup.layer_sharing import layer_sharing_report
from repro.model.dataset import HubDataset

#: the paper's measured creation rate (repositories/day, §I)
PAPER_REPOS_PER_DAY = 1_241.0


@dataclass(frozen=True)
class ProjectionPoint:
    day: float
    repositories: float
    no_sharing_bytes: float  # every image stores private copies
    shared_layers_bytes: float  # today's design (the 47 TB axis)
    file_dedup_bytes: float  # the paper's proposal


@dataclass(frozen=True)
class GrowthProjection:
    points: list[ProjectionPoint]
    bytes_per_repo_compressed: float
    sharing_ratio: float
    dedup_exponent: float  # capacity-dedup scale exponent fit from Fig. 25

    def final_savings(self) -> float:
        last = self.points[-1]
        if last.shared_layers_bytes == 0:
            return 0.0
        return 1.0 - last.file_dedup_bytes / last.shared_layers_bytes


def _fit_dedup_exponent(dataset: HubDataset, seed: int) -> float:
    """Fit capacity-dedup ~ (n_layers)^e from the Fig. 25 growth samples.

    Fig. 25 shows dedup ratios rising roughly linearly in log-scale dataset
    size; a power-law fit extrapolates our measured ratio toward larger
    deployments without pretending precision it can't have (the exponent is
    clamped to a conservative range).
    """
    points = dedup_growth(dataset, seed=seed)
    sizes = np.array([p.n_layers for p in points], dtype=np.float64)
    ratios = np.array([max(p.capacity_ratio, 1.0) for p in points])
    if sizes.size < 2:
        return 0.0
    slope = np.polyfit(np.log(sizes), np.log(ratios), 1)[0]
    return float(np.clip(slope, 0.0, 0.5))


def project_growth(
    dataset: HubDataset,
    *,
    days: int = 365,
    n_points: int = 13,
    repos_per_day: float = PAPER_REPOS_PER_DAY,
    seed: int = 0,
) -> GrowthProjection:
    """Project registry storage demand from the dataset's measured economics.

    Per-repository compressed footprint, the sharing ratio, and the dedup
    ratio (with its Fig. 25 scale exponent) all come from *dataset*; the
    growth rate is the paper's measured 1,241 repos/day unless overridden.
    """
    if days <= 0 or n_points < 2:
        raise ValueError("need a positive horizon and at least two points")
    totals = dataset.totals()
    if totals.n_images == 0:
        raise ValueError("dataset has no images to extrapolate from")
    bytes_per_repo = totals.compressed_bytes / totals.n_images
    sharing = layer_sharing_report(dataset)
    dedup = file_dedup_report(dataset)
    exponent = _fit_dedup_exponent(dataset, seed)
    layers_per_repo = totals.n_layers / totals.n_images

    base_capacity_ratio = max(1.0, dedup.capacity_ratio)
    # capacity after compression: apply the (uncompressed) dedup ratio to the
    # compressed footprint — compressed redundancy tracks uncompressed
    # redundancy since duplicates compress identically
    points: list[ProjectionPoint] = []
    for day in np.linspace(0, days, n_points):
        repos = repos_per_day * day + totals.n_images
        shared_bytes = repos * bytes_per_repo
        no_sharing = shared_bytes * sharing.sharing_ratio
        scale = (repos * layers_per_repo) / max(1, totals.n_layers)
        capacity_ratio = base_capacity_ratio * scale**exponent
        points.append(
            ProjectionPoint(
                day=float(day),
                repositories=float(repos),
                no_sharing_bytes=float(no_sharing),
                shared_layers_bytes=float(shared_bytes),
                file_dedup_bytes=float(shared_bytes / capacity_ratio),
            )
        )
    return GrowthProjection(
        points=points,
        bytes_per_repo_compressed=float(bytes_per_repo),
        sharing_ratio=float(sharing.sharing_ratio),
        dedup_exponent=exponent,
    )
