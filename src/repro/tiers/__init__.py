"""Tiered cache hierarchy simulation (client -> edge -> sharded origin)."""

from repro.tiers.exercise import ExerciseReport, run_tiers_exercise
from repro.tiers.sim import (
    DEFAULT_EDGE_FRACS,
    DEFAULT_POLICIES,
    TIERS_REPORT_VERSION,
    TiersConfig,
    TiersReport,
    simulate_tiers,
)

__all__ = [
    "DEFAULT_EDGE_FRACS",
    "DEFAULT_POLICIES",
    "TIERS_REPORT_VERSION",
    "ExerciseReport",
    "TiersConfig",
    "TiersReport",
    "run_tiers_exercise",
    "simulate_tiers",
]
