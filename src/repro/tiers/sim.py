"""Virtual-time simulation of the tiered pull hierarchy at paper scale.

The paper's dataset is the artifact of ~10⁶ distinct users pulling through
Docker's default client-side store, and §VI argues a *single* registry-side
cache captures most of the re-reference traffic. This module models the full
hierarchy those users actually sit in:

1. **client tier** — one cache per distinct client, fill-until-full with
   *no eviction*: Docker's local image store keeps every pulled layer until
   the disk fills (there is no automatic GC), so a client cache admits
   first-pulls in arrival order until its capacity is spent and then stops.
   This tier is exactly vectorizable (first occurrence of each
   ``(client, image)`` pair + a per-client prefix-sum admission rule), which
   is what makes 10⁶ clients tractable in one numpy pass.
2. **edge tier** — a fleet of pull-through proxies running the real
   :mod:`repro.cache.policies` replacement policies; each client is pinned
   to one edge by a seeded region hash, exactly how a geo CDN assigns POPs.
3. **origin** — the sharded registry: distinct objects place onto shards by
   the consistent-hash ring from :mod:`repro.ha.ring`, so the report can
   show how residual misses spread over shards.

Manifest freshness is modeled the way the HTTP layer now implements it
(:meth:`~repro.registry.http.HTTPSession.get_manifest_conditional`): every
pull revalidates the tag at the origin, but only the *first* pull of an
image through a given edge pays the manifest body — every later one is a
``304`` costing one request overhead and zero payload bytes.

Everything is seeded and runs in virtual time: the same config produces a
byte-identical report, which the ``tiers-smoke`` CI job pins.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.cache.policies import CachePolicy, make_policy
from repro.cache.simulate import simulate as simulate_single_tier
from repro.cache.simulate import static_top_policy
from repro.cache.trace import PullTrace, generate_trace
from repro.ha.ring import HashRing
from repro.model.dataset import HubDataset

TIERS_REPORT_VERSION = 1

DEFAULT_POLICIES = ("lru", "lfu", "gdsf", "static-top")
DEFAULT_EDGE_FRACS = (0.01, 0.05, 0.20)

#: virtual-time cost model, per tier. Client hits read the local SSD;
#: edge hits ride the metro network (the loadgen's DEFAULT_HIT_MODEL);
#: origin fetches pay the crawler-grade WAN model from SimulatedSession.
CLIENT_HIT_OVERHEAD_S = 0.0005
CLIENT_HIT_BANDWIDTH = 2e9
EDGE_HIT_OVERHEAD_S = 0.002
EDGE_HIT_BANDWIDTH = 500e6
ORIGIN_OVERHEAD_S = 0.080
ORIGIN_BANDWIDTH = 30e6
#: nominal manifest body size for the one full fetch per (edge, image)
MANIFEST_BYTES = 2048


@dataclass(frozen=True)
class TiersConfig:
    """Knobs of one tiered simulation.

    ``n_clients`` distinct clients issue ``n_requests`` image pulls: every
    client appears at least once (the paper's user base is defined by
    having pulled *something*), and the surplus requests are drawn from a
    Zipf over clients so a heavy-user tail exists, then the arrival order
    is shuffled. ``edge_capacity_fracs`` size each edge cache as a fraction
    of the trace's working set; the sweep crosses them with ``policies``.
    """

    n_clients: int = 1_000_000
    n_requests: int = 1_200_000
    n_edges: int = 32
    n_shards: int = 4
    client_capacity_bytes: int = 2 << 30
    edge_capacity_fracs: tuple[float, ...] = DEFAULT_EDGE_FRACS
    policies: tuple[str, ...] = DEFAULT_POLICIES
    locality: float = 0.2
    temper: float = 0.5
    heavy_user_zipf: float = 1.5
    seed: int = 2017

    def __post_init__(self) -> None:
        if self.n_requests < self.n_clients:
            raise ValueError(
                f"need n_requests >= n_clients so every client appears: "
                f"{self.n_requests} < {self.n_clients}"
            )
        if self.n_edges < 1 or self.n_shards < 1:
            raise ValueError("need at least one edge and one shard")

    def to_dict(self) -> dict:
        return {
            "n_clients": self.n_clients,
            "n_requests": self.n_requests,
            "n_edges": self.n_edges,
            "n_shards": self.n_shards,
            "client_capacity_bytes": self.client_capacity_bytes,
            "edge_capacity_fracs": list(self.edge_capacity_fracs),
            "policies": list(self.policies),
            "locality": self.locality,
            "temper": self.temper,
            "heavy_user_zipf": self.heavy_user_zipf,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class TierCell:
    """One (policy, edge capacity) cell of the sweep."""

    policy: str
    edge_capacity_frac: float
    edge_capacity_bytes: int
    edge_requests: int
    edge_hits: int
    origin_requests: int
    origin_bytes: int
    origin_shard_requests: tuple[int, ...]
    p99_virtual_s: float
    mean_virtual_s: float
    single_tier_hit_ratio: float

    @property
    def edge_hit_ratio(self) -> float:
        return self.edge_hits / self.edge_requests if self.edge_requests else 0.0

    def origin_offload(self, n_requests: int) -> float:
        """Fraction of all pulls that never reached the origin for bytes."""
        return 1.0 - self.origin_requests / n_requests if n_requests else 0.0

    def to_dict(self, n_requests: int) -> dict:
        return {
            "policy": self.policy,
            "edge_capacity_frac": self.edge_capacity_frac,
            "edge_capacity_bytes": self.edge_capacity_bytes,
            "edge_requests": self.edge_requests,
            "edge_hits": self.edge_hits,
            "edge_hit_ratio": self.edge_hit_ratio,
            "origin_requests": self.origin_requests,
            "origin_bytes": self.origin_bytes,
            "origin_offload": self.origin_offload(n_requests),
            "origin_shard_requests": list(self.origin_shard_requests),
            "p99_virtual_s": self.p99_virtual_s,
            "mean_virtual_s": self.mean_virtual_s,
            "single_tier_hit_ratio": self.single_tier_hit_ratio,
        }


@dataclass(frozen=True)
class TiersReport:
    """The full sweep result; ``to_json`` is byte-identical per config."""

    config: TiersConfig
    n_distinct_clients: int
    n_objects: int
    working_set_bytes: int
    total_bytes_requested: int
    client_hits: int
    client_byte_hits: int
    manifest_revalidations_304: int
    manifest_full_fetches: int
    cells: tuple[TierCell, ...] = field(default_factory=tuple)

    @property
    def client_hit_ratio(self) -> float:
        n = self.config.n_requests
        return self.client_hits / n if n else 0.0

    def to_dict(self) -> dict:
        n = self.config.n_requests
        return {
            "version": TIERS_REPORT_VERSION,
            "config": self.config.to_dict(),
            "workload": {
                "n_requests": n,
                "n_distinct_clients": self.n_distinct_clients,
                "n_objects": self.n_objects,
                "working_set_bytes": self.working_set_bytes,
                "total_bytes_requested": self.total_bytes_requested,
                "manifest_revalidations_304": self.manifest_revalidations_304,
                "manifest_full_fetches": self.manifest_full_fetches,
            },
            "client_tier": {
                "capacity_bytes": self.config.client_capacity_bytes,
                "hits": self.client_hits,
                "hit_ratio": self.client_hit_ratio,
                "byte_hits": self.client_byte_hits,
            },
            "cells": [cell.to_dict(n) for cell in self.cells],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# -- workload construction ---------------------------------------------------------


def _assign_clients(
    rng: np.random.Generator, n_clients: int, n_requests: int, zipf_a: float
) -> np.ndarray:
    """Client id per request: every client exactly once, surplus drawn from
    a Zipf heavy-user tail, arrival order shuffled. The distinct-client
    count is therefore exactly ``n_clients`` by construction."""
    base = np.arange(n_clients, dtype=np.int64)
    extra_n = n_requests - n_clients
    if extra_n > 0:
        extra = (rng.zipf(zipf_a, size=extra_n).astype(np.int64) - 1) % n_clients
        clients = np.concatenate([base, extra])
    else:
        clients = base
    rng.shuffle(clients)
    return clients


def _edge_of(clients: np.ndarray, n_edges: int, seed: int) -> np.ndarray:
    """Seeded region hash pinning each client to one edge (murmur fmix)."""
    x = clients.astype(np.uint64) + np.uint64((seed * 0x9E3779B97F4A7C15) & (2**64 - 1))
    x ^= x >> np.uint64(33)
    x *= np.uint64(0xFF51AFD7ED558CCD)
    x ^= x >> np.uint64(33)
    x *= np.uint64(0xC4CEB9FE1A85EC53)
    x ^= x >> np.uint64(33)
    return (x % np.uint64(n_edges)).astype(np.int64)


def _client_tier_hits(
    clients: np.ndarray,
    object_ids: np.ndarray,
    request_sizes: np.ndarray,
    n_objects: int,
    capacity: int,
) -> np.ndarray:
    """Boolean hit mask for the no-eviction client tier, fully vectorized.

    A request hits iff its ``(client, object)`` pair occurred before AND the
    pair's first occurrence was admitted. Admission is the prefix rule: a
    client admits first-pulls in arrival order while its cumulative admitted
    bytes stay within capacity, then never again (full disk, no GC).
    """
    key = clients * np.int64(n_objects) + object_ids
    uniq, first_idx, inverse = np.unique(key, return_index=True, return_inverse=True)
    # walk first occurrences in arrival order, grouped by client
    rank = np.argsort(first_idx)  # uniq slots ordered by first-occurrence time
    fo_pos = first_idx[rank]
    fo_clients = clients[fo_pos]
    fo_sizes = request_sizes[fo_pos].astype(np.int64)
    by_client = np.argsort(fo_clients, kind="stable")
    grouped_sizes = fo_sizes[by_client]
    grouped_clients = fo_clients[by_client]
    cum = np.cumsum(grouped_sizes)
    starts = np.flatnonzero(np.r_[True, grouped_clients[1:] != grouped_clients[:-1]])
    base = np.zeros(grouped_clients.size, dtype=np.int64)
    if starts.size > 1:
        base[starts[1:]] = cum[starts[1:] - 1]
    base = np.maximum.accumulate(base)
    admitted_grouped = (cum - base) <= capacity
    admitted_rank = np.empty(rank.size, dtype=bool)
    admitted_rank[by_client] = admitted_grouped
    admitted_uniq = np.empty(uniq.size, dtype=bool)
    admitted_uniq[rank] = admitted_rank
    seen_before = np.arange(key.size, dtype=np.int64) != first_idx[inverse]
    return seen_before & admitted_uniq[inverse]


def _first_pair_mask(a: np.ndarray, b: np.ndarray, b_cardinality: int) -> np.ndarray:
    """True where ``(a, b)`` occurs for the first time."""
    key = a * np.int64(b_cardinality) + b
    _, first_idx = np.unique(key, return_index=True)
    mask = np.zeros(key.size, dtype=bool)
    mask[first_idx] = True
    return mask


def _shard_of_objects(n_objects: int, n_shards: int, seed: int) -> np.ndarray:
    """Object id -> origin shard index via the consistent-hash ring."""
    ring = HashRing(
        [f"shard-{i}" for i in range(n_shards)], k=1, seed=seed
    )
    index = {f"shard-{i}": i for i in range(n_shards)}
    return np.array(
        [index[ring.owners(f"sha256:{obj:064x}")[0]] for obj in range(n_objects)],
        dtype=np.int64,
    )


def _edge_policies(
    name: str, capacity: int, n_edges: int, trace: PullTrace
) -> list[CachePolicy]:
    if name == "static-top":
        return [static_top_policy(trace, capacity) for _ in range(n_edges)]
    return [make_policy(name, capacity) for _ in range(n_edges)]


def _p99(latencies: np.ndarray) -> float:
    """Exact order-statistic p99 — index arithmetic, no interpolation, so
    reruns are byte-identical."""
    ordered = np.sort(latencies)
    return float(ordered[min(ordered.size - 1, math.ceil(0.99 * ordered.size) - 1)])


# -- the simulation ----------------------------------------------------------------


def simulate_tiers(dataset: HubDataset, config: TiersConfig) -> TiersReport:
    """Run the full client -> edge -> sharded-origin sweep on one dataset."""
    rng = np.random.default_rng(config.seed)
    trace = generate_trace(
        dataset,
        config.n_requests,
        granularity="image",
        locality=config.locality,
        temper=config.temper,
        seed=config.seed,
    )
    object_ids = trace.object_ids
    sizes_by_object = trace.object_sizes
    request_sizes = sizes_by_object[object_ids].astype(np.int64)
    n = object_ids.size
    working_set = trace.working_set_bytes()

    clients = _assign_clients(
        rng, config.n_clients, n, config.heavy_user_zipf
    )
    edges = _edge_of(clients, config.n_edges, config.seed)

    client_hit = _client_tier_hits(
        clients, object_ids, request_sizes,
        trace.n_objects, config.client_capacity_bytes,
    )
    client_hits = int(client_hit.sum())
    client_byte_hits = int(request_sizes[client_hit].sum())

    # manifest accounting is capacity-independent: every pull revalidates at
    # the origin; only the first (edge, image) sighting pays the body
    first_manifest = _first_pair_mask(edges, object_ids, trace.n_objects)
    manifest_full = int(first_manifest.sum())
    manifest_304 = n - manifest_full

    # the post-client-tier miss stream feeding the edge fleet
    miss_positions = np.flatnonzero(~client_hit)
    miss_edges = edges[miss_positions].tolist()
    miss_objects = object_ids[miss_positions].tolist()
    miss_sizes = request_sizes[miss_positions].tolist()

    shard_of = _shard_of_objects(trace.n_objects, config.n_shards, config.seed)

    # latency components shared by every cell
    base_latency = np.full(n, ORIGIN_OVERHEAD_S)
    base_latency[first_manifest] += MANIFEST_BYTES / ORIGIN_BANDWIDTH
    base_latency[client_hit] += (
        CLIENT_HIT_OVERHEAD_S + request_sizes[client_hit] / CLIENT_HIT_BANDWIDTH
    )

    cells: list[TierCell] = []
    for frac in config.edge_capacity_fracs:
        capacity = max(1, int(frac * working_set))
        for policy_name in config.policies:
            policies = _edge_policies(
                policy_name, capacity, config.n_edges, trace
            )
            edge_hit = np.zeros(len(miss_positions), dtype=bool)
            for j, (e, obj, size) in enumerate(
                zip(miss_edges, miss_objects, miss_sizes)
            ):
                edge_hit[j] = policies[e].request(obj, size)

            origin_mask = ~edge_hit
            origin_objs = np.asarray(miss_objects, dtype=np.int64)[origin_mask]
            origin_sizes = np.asarray(miss_sizes, dtype=np.int64)[origin_mask]
            shard_requests = np.bincount(
                shard_of[origin_objs], minlength=config.n_shards
            )

            latency = base_latency.copy()
            hit_pos = miss_positions[edge_hit]
            miss_pos = miss_positions[origin_mask]
            latency[hit_pos] += (
                EDGE_HIT_OVERHEAD_S + request_sizes[hit_pos] / EDGE_HIT_BANDWIDTH
            )
            latency[miss_pos] += (
                EDGE_HIT_OVERHEAD_S
                + request_sizes[miss_pos] / EDGE_HIT_BANDWIDTH
                + ORIGIN_OVERHEAD_S
                + request_sizes[miss_pos] / ORIGIN_BANDWIDTH
            )

            single = simulate_single_tier(
                trace,
                static_top_policy(trace, capacity)
                if policy_name == "static-top"
                else make_policy(policy_name, capacity),
            )
            cells.append(
                TierCell(
                    policy=policy_name,
                    edge_capacity_frac=float(frac),
                    edge_capacity_bytes=capacity,
                    edge_requests=len(miss_positions),
                    edge_hits=int(edge_hit.sum()),
                    origin_requests=int(origin_mask.sum()),
                    origin_bytes=int(origin_sizes.sum()),
                    origin_shard_requests=tuple(int(x) for x in shard_requests),
                    p99_virtual_s=_p99(latency),
                    mean_virtual_s=float(latency.mean()),
                    single_tier_hit_ratio=single.hit_ratio,
                )
            )

    return TiersReport(
        config=config,
        n_distinct_clients=int(np.unique(clients).size),
        n_objects=trace.n_objects,
        working_set_bytes=working_set,
        total_bytes_requested=int(request_sizes.sum()),
        client_hits=client_hits,
        client_byte_hits=client_byte_hits,
        manifest_revalidations_304=manifest_304,
        manifest_full_fetches=manifest_full,
        cells=tuple(cells),
    )


def render_report(report: TiersReport) -> str:
    """Human-readable sweep table."""
    lines = []
    doc = report.to_dict()
    w = doc["workload"]
    lines.append(
        f"{w['n_requests']:,} pulls from {w['n_distinct_clients']:,} distinct "
        f"clients over {report.config.n_edges} edges / "
        f"{report.config.n_shards} origin shards"
    )
    lines.append(
        f"client tier: hit {report.client_hit_ratio:6.2%} "
        f"(capacity {report.config.client_capacity_bytes:,} B/client, no eviction)"
    )
    lines.append(
        f"manifests: {w['manifest_revalidations_304']:,} revalidated via 304, "
        f"{w['manifest_full_fetches']:,} full fetches"
    )
    lines.append(
        f"{'policy':>11} {'edge cap':>9} {'edge hit':>9} {'offload':>9} "
        f"{'1-tier hit':>10} {'p99 (s)':>9}"
    )
    n = report.config.n_requests
    for cell in report.cells:
        lines.append(
            f"{cell.policy:>11} {cell.edge_capacity_frac:>8.0%} "
            f"{cell.edge_hit_ratio:>9.2%} {cell.origin_offload(n):>9.2%} "
            f"{cell.single_tier_hit_ratio:>10.2%} {cell.p99_virtual_s:>9.3f}"
        )
    return "\n".join(lines)
