"""The ``tiers-smoke`` exercise: a reduced sweep plus invariant gating.

Runs a small tiered simulation twice and a real-HTTP revalidation loop, and
checks the invariants the CI job gates on:

* **determinism** — the seeded report is byte-identical across reruns;
* **coverage** — the simulation really saw the configured distinct-client
  population, and shard counts add up;
* **monotonicity** — for every policy, origin offload does not *decrease*
  when every edge cache grows from the smallest to the largest swept size;
* **revalidation** — the live HTTP layer actually serves ``304`` manifest
  revalidations and ``206`` ranged blob reads, observed from both the
  server's metrics and the client's accounting.

Any violated invariant lands in ``violations``; the CLI exits non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import counter_total
from repro.registry.errors import AuthRequiredError
from repro.tiers.sim import TiersConfig, TiersReport, simulate_tiers


@dataclass
class ExerciseReport:
    report: TiersReport
    http_counters: dict[str, float] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "violations": list(self.violations),
            "http_counters": dict(self.http_counters),
            "report": self.report.to_dict(),
        }


def _check_monotone_offload(report: TiersReport, violations: list[str]) -> None:
    n = report.config.n_requests
    fracs = sorted(report.config.edge_capacity_fracs)
    if len(fracs) < 2:
        return
    for policy in report.config.policies:
        by_frac = {
            cell.edge_capacity_frac: cell.origin_offload(n)
            for cell in report.cells
            if cell.policy == policy
        }
        smallest, largest = by_frac[fracs[0]], by_frac[fracs[-1]]
        if largest + 1e-12 < smallest:
            violations.append(
                f"origin offload shrank as {policy} edge caches grew: "
                f"{smallest:.4f} @ {fracs[0]:.0%} -> {largest:.4f} @ {fracs[-1]:.0%}"
            )


def _check_report(report: TiersReport, rerun: TiersReport, violations: list[str]) -> None:
    if report.to_json() != rerun.to_json():
        violations.append("seeded rerun produced a different report (nondeterminism)")
    if report.n_distinct_clients != report.config.n_clients:
        violations.append(
            f"expected {report.config.n_clients} distinct clients, "
            f"saw {report.n_distinct_clients}"
        )
    if report.manifest_revalidations_304 <= 0:
        violations.append("no manifest 304 revalidations in the workload")
    for cell in report.cells:
        if sum(cell.origin_shard_requests) != cell.origin_requests:
            violations.append(
                f"shard counts disagree with origin total in cell "
                f"({cell.policy}, {cell.edge_capacity_frac:.0%})"
            )
    _check_monotone_offload(report, violations)


def _exercise_http(violations: list[str]) -> dict[str, float]:
    """Drive the real 304/206 paths: a caching proxy revalidating a
    manifest over HTTP, and a ranged blob read, verified on both ends."""
    from repro.downloader.proxy import CachingProxySession
    from repro.registry.http import HTTPSession, RegistryHTTPServer
    from repro.synth.config import SyntheticHubConfig
    from repro.synth.hubgen import generate_dataset
    from repro.synth.materialize import materialize_registry

    dataset = generate_dataset(SyntheticHubConfig.tiny(seed=5))
    registry, _ = materialize_registry(dataset, fail_share=0.0, seed=5)
    with RegistryHTTPServer(registry) as server:
        session = HTTPSession(server.base_url)
        repo = tag = None
        for candidate in registry.catalog():
            try:
                tags = session.list_tags(candidate)
            except AuthRequiredError:
                continue
            if tags:
                repo, tag = candidate, tags[0]
                break
        if repo is None:
            violations.append("no public repository to exercise over HTTP")
            return {}
        proxy = CachingProxySession(session)
        first = proxy.get_manifest(repo, tag)
        again = proxy.get_manifest(repo, tag)
        if again != first:
            violations.append("revalidated manifest differs from the original")
        if proxy.stats.manifest_revalidations_304 < 1:
            violations.append("proxy recorded no 304 revalidation")

        digest = first.layers[0].digest
        full = session.get_blob(digest)
        half = max(1, len(full) // 2)
        part, total = session.get_blob_range(digest, 0, half - 1)
        if part != full[:half] or total != len(full):
            violations.append("ranged blob read returned wrong bytes")

        counters = {
            "registry_http_conditional_not_modified": counter_total(
                server.metrics, "registry_http_conditional_total",
                outcome="not_modified",
            ),
            "registry_http_range_partial": counter_total(
                server.metrics, "registry_http_range_total", outcome="partial"
            ),
        }
    if counters["registry_http_conditional_not_modified"] < 1:
        violations.append("server served no 304 (conditional counter is zero)")
    if counters["registry_http_range_partial"] < 1:
        violations.append("server served no 206 (range counter is zero)")
    return counters


def smoke_config(seed: int = 2017) -> TiersConfig:
    """The reduced sweep the CI job runs: small enough for seconds, large
    enough that every tier and both swept dimensions do real work."""
    return TiersConfig(
        n_clients=20_000,
        n_requests=60_000,
        n_edges=4,
        n_shards=2,
        client_capacity_bytes=1 << 30,
        edge_capacity_fracs=(0.02, 0.20),
        policies=("lru", "gdsf", "static-top"),
        seed=seed,
    )


def run_tiers_exercise(dataset, config: TiersConfig | None = None) -> ExerciseReport:
    """Run the reduced sweep + live-HTTP checks; see the module docstring."""
    config = config if config is not None else smoke_config()
    violations: list[str] = []
    report = simulate_tiers(dataset, config)
    rerun = simulate_tiers(dataset, config)
    _check_report(report, rerun, violations)
    http_counters = _exercise_http(violations)
    return ExerciseReport(
        report=report, http_counters=http_counters, violations=violations
    )
