"""Layer restructuring: turn the paper's dedup findings into a layout.

§V-D shows >97 % of layer files are duplicated across layers — layer-level
sharing can't see file-level redundancy. The fix the paper's ecosystem
proposed (Skourtis et al., HotCloud'19 — reference [30]) is to *re-carve*
layers: group files by which images actually need them, emit one shared
layer per co-occurrence group, and keep per-image leftovers private. This
package implements that restructuring over the columnar dataset and
quantifies the storage/layer-count trade-off.
"""

from repro.restructure.carve import (
    CarveConfig,
    RestructureResult,
    file_image_signatures,
    restructure,
)

__all__ = [
    "CarveConfig",
    "RestructureResult",
    "file_image_signatures",
    "restructure",
]
