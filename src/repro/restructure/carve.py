"""Carving layers from file↔image co-occurrence.

Algorithm (the Skourtis-style ideal, made laptop-scale):

1. Compute each unique file's *image signature* — the exact set of images
   whose layers contain it. Files with identical signatures always travel
   together, so they can share a layer with zero pull overhead. Signatures
   are computed vectorized: distinct (file, image) pairs are sorted by
   file, and a commutative 128-bit hash of each file's image-id run stands
   in for the set itself (two independent random projections; collision
   probability ~2^-64 per pair).
2. Signature groups referenced by >= ``min_shared_images`` images and at
   least ``min_group_bytes`` big are *candidate shared layers*. Candidates
   are accepted greedily by the registry bytes they save
   (``bytes * (images - 1)``), subject to every member image's layer
   budget (``max_layers_per_image - 1``; Docker caps layers per image) —
   the knapsack-flavoured heart of the carving problem.
3. Everything else joins each image's single **private layer** (duplicated
   per image that needs it, like today's private layers).

The result quantifies the §V headline end to end: how close a real layout
can get to perfect file dedup, and what it costs in layers per image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.dataset import HubDataset


@dataclass(frozen=True)
class CarveConfig:
    min_shared_images: int = 2
    min_group_bytes: int = 64 * 1024
    max_layers_per_image: int = 100  # Docker caps layers per image at ~127


@dataclass(frozen=True)
class RestructureResult:
    # original layout
    original_layer_bytes: int  # sum of unique layers' FLS today
    original_layers_per_image_p50: float
    original_layers_per_image_max: int
    # restructured layout
    n_shared_layers: int
    shared_bytes: int  # stored once
    private_bytes: int  # stored once per image needing it
    layers_per_image_p50: float
    layers_per_image_max: int
    # bounds
    perfect_dedup_bytes: int  # every unique file exactly once
    final_min_group_bytes: int

    @property
    def restructured_bytes(self) -> int:
        return self.shared_bytes + self.private_bytes

    @property
    def savings_vs_original(self) -> float:
        if self.original_layer_bytes == 0:
            return 0.0
        return 1.0 - self.restructured_bytes / self.original_layer_bytes

    @property
    def overhead_vs_perfect(self) -> float:
        """How far above the perfect-dedup floor the layout lands (1.0 = at
        the floor)."""
        if self.perfect_dedup_bytes == 0:
            return 0.0
        return self.restructured_bytes / self.perfect_dedup_bytes

    def summary(self) -> dict[str, float]:
        return {
            "original_bytes": self.original_layer_bytes,
            "restructured_bytes": self.restructured_bytes,
            "perfect_dedup_bytes": self.perfect_dedup_bytes,
            "savings_vs_original": self.savings_vs_original,
            "overhead_vs_perfect": self.overhead_vs_perfect,
            "shared_layers": self.n_shared_layers,
            "layers_per_image_p50": self.layers_per_image_p50,
            "layers_per_image_max": self.layers_per_image_max,
        }


def _distinct_file_image_pairs(ds: HubDataset) -> tuple[np.ndarray, np.ndarray]:
    """Distinct (file, image) pairs, sorted by file then image."""
    image_of_slot = np.repeat(
        np.arange(ds.n_images, dtype=np.int64), ds.image_layer_counts
    )
    slot_layers = ds.image_layer_ids
    slot_counts = ds.layer_file_counts[slot_layers]
    total = int(slot_counts.sum())
    if total == 0:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    seg_starts = np.concatenate([[0], np.cumsum(slot_counts[:-1])])
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, slot_counts)
    take = np.repeat(ds.layer_file_offsets[slot_layers], slot_counts) + within
    occ_file = ds.layer_file_ids[take]
    occ_image = np.repeat(image_of_slot, slot_counts)
    keys = occ_file * ds.n_images + occ_image
    keys = np.sort(keys)
    mask = np.empty(keys.size, dtype=bool)
    mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=mask[1:])
    keys = keys[mask]
    return keys // ds.n_images, keys % ds.n_images


def file_image_signatures(ds: HubDataset, *, seed: int = 0) -> np.ndarray:
    """128-bit-ish commutative signature of each unique file's image set.

    Returns a complex-viewable (n_files, 2) uint64 array; files sharing a
    row share an image set (w.h.p.). Unused files get the zero signature.
    """
    pair_files, pair_images = _distinct_file_image_pairs(ds)
    rng = np.random.default_rng(seed)
    h1 = rng.integers(1, 2**63 - 1, size=ds.n_images, dtype=np.int64).astype(np.uint64)
    h2 = rng.integers(1, 2**63 - 1, size=ds.n_images, dtype=np.int64).astype(np.uint64)
    sig = np.zeros((ds.n_files, 2), dtype=np.uint64)
    np.add.at(sig[:, 0], pair_files, h1[pair_images])
    np.add.at(sig[:, 1], pair_files, h2[pair_images] * h2[pair_images])
    return sig


def restructure(ds: HubDataset, config: CarveConfig | None = None) -> RestructureResult:
    """Carve a shared/private layer layout and measure it."""
    config = config or CarveConfig()
    pair_files, pair_images = _distinct_file_image_pairs(ds)
    if pair_files.size == 0:
        raise ValueError("dataset has no file occurrences to restructure")

    used = ds.file_repeat_counts > 0
    images_per_file = np.bincount(pair_files, minlength=ds.n_files)

    sig = file_image_signatures(ds)
    # group id per unique file: index into the distinct signature table
    flat = sig[:, 0] * np.uint64(0x9E3779B97F4A7C15) ^ sig[:, 1]
    _, group_of_file = np.unique(flat, return_inverse=True)
    n_groups = int(group_of_file.max()) + 1

    sizes = ds.file_sizes
    group_bytes = np.bincount(
        group_of_file[used], weights=sizes[used], minlength=n_groups
    )
    # images per group == images per file for any member (identical sets)
    group_images = np.zeros(n_groups, dtype=np.int64)
    group_images[group_of_file[used]] = images_per_file[used]

    # every quantity is over image-reachable content: a layer no manifest
    # references was never downloaded, so it belongs to no storage design
    reachable_files = np.unique(pair_files)
    perfect = int(sizes[reachable_files].sum())
    original = int(ds.layer_fls[ds.layer_ref_counts > 0].sum())
    lc = ds.image_layer_counts

    # distinct (group, image) membership, CSR by group
    pair_group = group_of_file[pair_files]
    keys = np.unique(pair_group * np.int64(ds.n_images) + pair_images)
    member_group = (keys // ds.n_images).astype(np.int64)
    member_image = (keys % ds.n_images).astype(np.int64)
    group_member_offsets = np.searchsorted(
        member_group, np.arange(n_groups + 1, dtype=np.int64)
    )

    # greedy acceptance: biggest registry savings first, within layer budgets
    candidates = np.flatnonzero(
        (group_images >= config.min_shared_images)
        & (group_bytes >= config.min_group_bytes)
    )
    savings = group_bytes[candidates] * (group_images[candidates] - 1)
    order = candidates[np.argsort(savings)[::-1]]
    budget = np.full(ds.n_images, config.max_layers_per_image - 1, dtype=np.int64)
    shared_mask = np.zeros(n_groups, dtype=bool)
    for g in order:
        members = member_image[group_member_offsets[g] : group_member_offsets[g + 1]]
        if (budget[members] > 0).all():
            shared_mask[g] = True
            budget[members] -= 1

    # layers per image: one private layer + its accepted shared groups
    shared_layers_per_image = (
        config.max_layers_per_image - 1 - budget
    ) + 1  # accepted groups + the private layer
    layers_per_image = shared_layers_per_image

    shared_bytes = int(group_bytes[shared_mask].sum())
    # private files are stored once per image that needs them
    pair_is_shared = shared_mask[pair_group]
    private_bytes = int(sizes[pair_files[~pair_is_shared]].sum())

    return RestructureResult(
        original_layer_bytes=original,
        original_layers_per_image_p50=float(np.median(lc)),
        original_layers_per_image_max=int(lc.max()),
        n_shared_layers=int(shared_mask.sum()),
        shared_bytes=shared_bytes,
        private_bytes=private_bytes,
        layers_per_image_p50=float(np.median(layers_per_image)),
        layers_per_image_max=int(layers_per_image.max()),
        perfect_dedup_bytes=perfect,
        final_min_group_bytes=int(config.min_group_bytes),
    )
