"""The ``repro`` command-line tool.

Subcommands::

    repro generate    --scale small --out hub.npz       # synthesize a dataset
    repro info        hub.npz                           # headline totals
    repro figures     hub.npz [--figure fig24] [--markdown]
    repro dedup       hub.npz                           # the §V study
    repro ablate      hub.npz [--experiment a1|a2]
    repro pipeline    --scale tiny [--dataset out.npz] [--profiles out.jsonl]
    repro experiments --out EXPERIMENTS.md              # full paper-vs-measured
    repro bench       [--tiny] [--columnar] [--out BENCH_pipeline.json]  # perf bench
    repro loadtest    --seed 3 [--proxy] [--http]       # serving load test
    repro chaos       --seed 7 --plan smoke             # fault-injected pipeline
    repro cluster     --replicas 3 --seed 7 [--overload]  # HA serving exercise
    repro churn       --epochs 6 [--sharded] [--kill-after 3]  # GC-under-churn
    repro scan        --scale tiny [--cache DIR] [--selfcheck]  # dedup CVE scan
    repro tiers       [--smoke] [--out tiers.json]             # tiered cache sweep
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.util.units import format_size


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2017, help="generation seed")


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=["tiny", "small", "bench"],
        default="small",
        help="population preset (see SyntheticHubConfig)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Large-Scale Analysis of the Docker Hub "
        "Dataset' (CLUSTER 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesize a calibrated dataset")
    _add_scale(p)
    _add_seed(p)
    p.add_argument("--out", type=Path, required=True, help="output .npz path")

    p = sub.add_parser("info", help="print a dataset's headline totals")
    p.add_argument("dataset", type=Path)

    p = sub.add_parser("figures", help="compute paper figures on a dataset")
    p.add_argument("dataset", type=Path)
    p.add_argument("--figure", action="append", help="figure id (repeatable)")
    p.add_argument("--markdown", action="store_true", help="emit markdown tables")
    p.add_argument(
        "--charts", action="store_true", help="render ASCII charts of the series"
    )

    p = sub.add_parser("dedup", help="run the §V deduplication study")
    p.add_argument("dataset", type=Path)

    p = sub.add_parser("ablate", help="run the A1/A2 ablation experiments")
    p.add_argument("dataset", type=Path)
    p.add_argument("--experiment", choices=["a1", "a2", "all"], default="all")

    p = sub.add_parser(
        "pipeline", help="run crawl->download->analyze on a materialized registry"
    )
    _add_seed(p)
    p.add_argument("--scale", choices=["tiny", "small"], default="tiny")
    p.add_argument("--dataset", type=Path, help="write the measured dataset (.npz)")
    p.add_argument("--profiles", type=Path, help="write layer/image profiles (.jsonl)")
    p.add_argument(
        "--cache", type=Path,
        help="profile-cache directory: reruns over an unchanged corpus skip "
        "layer extraction entirely",
    )

    p = sub.add_parser("experiments", help="regenerate the EXPERIMENTS.md record")
    _add_seed(p)
    p.add_argument("--out", type=Path, default=Path("EXPERIMENTS.md"))
    p.add_argument("--scale", choices=["tiny", "small", "bench"], default="bench")

    p = sub.add_parser("cache", help="simulate cache policies on a pull trace")
    p.add_argument("dataset", type=Path)
    p.add_argument("--requests", type=int, default=20_000)
    p.add_argument("--granularity", choices=["image", "layer"], default="image")
    _add_seed(p)

    p = sub.add_parser("restructure", help="carve shared layers from co-occurrence")
    p.add_argument("dataset", type=Path)
    p.add_argument("--min-group-kb", type=int, default=16)
    p.add_argument("--max-layers", type=int, default=100)

    p = sub.add_parser("project", help="project registry growth (§I, 1,241 repos/day)")
    p.add_argument("dataset", type=Path)
    p.add_argument("--days", type=int, default=365)
    _add_seed(p)

    p = sub.add_parser(
        "serve", help="serve a materialized hub over the Docker Registry v2 HTTP API"
    )
    _add_seed(p)
    p.add_argument("--scale", choices=["tiny", "small"], default="tiny")
    p.add_argument("--port", type=int, default=5000)
    p.add_argument(
        "--print-and-exit",
        action="store_true",
        help="start, print the endpoint summary, and shut down (for scripts/tests)",
    )

    p = sub.add_parser(
        "bench",
        help="benchmark the pipeline's analysis phase: "
        "serial/thread/process x cold/warm profile cache; writes "
        "BENCH_pipeline.json",
    )
    _add_seed(p)
    p.add_argument(
        "--scales", default="tiny,mid",
        help="comma-separated hub scales to measure (tiny,mid,small)",
    )
    p.add_argument(
        "--modes", default="serial,thread,process",
        help="comma-separated parallel modes to measure",
    )
    p.add_argument(
        "--workers", type=int, help="pool workers (default: cpu count)"
    )
    p.add_argument(
        "--repeats", type=int, default=1,
        help="timings per matrix cell; the fastest is kept",
    )
    p.add_argument(
        "--tiny", action="store_true",
        help="tiny scale only — the CI smoke configuration",
    )
    p.add_argument(
        "--columnar", action="store_true",
        help="benchmark the streaming columnar engine instead of the "
        "materialized analyzer (mode x cold/warm over a spilled chunk store)",
    )
    p.add_argument(
        "--columnar-scales", default=None,
        help="comma-separated columnar scales (tiny,mid,small,10m,full); "
        "default mid,10m — with --tiny, just tiny",
    )
    p.add_argument(
        "--chunk-occurrences", type=int, default=None,
        help="occurrence budget per spilled chunk (columnar only)",
    )
    p.add_argument(
        "--no-in-memory-check", action="store_true",
        help="skip the streaming-vs-in-memory equivalence pass (columnar "
        "only; for scales that only fit chunked)",
    )
    p.add_argument(
        "--out", type=Path, default=Path("BENCH_pipeline.json"),
        help="where to write the JSON record",
    )
    p.add_argument("--json", action="store_true", help="print the record as JSON")

    p = sub.add_parser(
        "loadtest",
        help="drive a synthetic pull workload against a materialized registry",
    )
    _add_seed(p)
    p.add_argument("--scale", choices=["tiny", "small"], default="tiny")
    p.add_argument("--requests", type=int, default=2_000, help="trace length")
    p.add_argument("--granularity", choices=["image", "layer"], default="image")
    p.add_argument("--mode", choices=["closed", "open"], default="closed")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument(
        "--arrival-rate", type=float, default=200.0,
        help="open-loop mean arrival rate (requests/s)",
    )
    p.add_argument(
        "--proxy", action="store_true",
        help="interpose a GDSF pull-through proxy in front of the registry",
    )
    p.add_argument(
        "--proxy-capacity", type=float, default=0.2,
        help="proxy cache capacity as a fraction of total registry bytes",
    )
    p.add_argument(
        "--http", action="store_true",
        help="serve over a real localhost HTTP server (wall-clock timing)",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.add_argument(
        "--metrics", action="store_true",
        help="also dump server metrics in Prometheus text format",
    )

    p = sub.add_parser(
        "chaos",
        help="run crawl->pull->loadgen under a fault plan and check the "
        "resilience invariants (exit 1 on violation)",
    )
    p.add_argument("--seed", type=int, default=7, help="chaos seed")
    p.add_argument(
        "--plan", default="smoke",
        help="fault plan name (none, smoke, storm)",
    )
    p.add_argument("--scale", choices=["tiny", "small"], default="tiny")
    p.add_argument(
        "--requests", type=int, default=400, help="loadgen trace length"
    )
    p.add_argument(
        "--journal", type=Path,
        help="checkpoint directory: the crawl and pull journal here, and a "
        "rerun resumes instead of restarting",
    )
    p.add_argument(
        "--kill-after", type=int,
        help="simulate a crash after N pulls (requires --journal to resume)",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")

    p = sub.add_parser(
        "cluster",
        help="replicated serving exercise: kill a replica, rot blobs at "
        "rest, heal, and check the HA invariants (exit 1 on violation)",
    )
    p.add_argument("--seed", type=int, default=7, help="exercise seed")
    p.add_argument(
        "--replicas", type=int, default=None,
        help="replica count (default 3; 6 with --sharded)",
    )
    p.add_argument("--scale", choices=["tiny", "small"], default="tiny")
    p.add_argument(
        "--requests", type=int, default=120, help="pull-trace length (image pulls)"
    )
    p.add_argument(
        "--kill-index", type=int, default=1, help="which replica dies mid-run"
    )
    p.add_argument(
        "--corrupt-count", type=int, default=2,
        help="blobs to bit-flip at rest on a surviving replica",
    )
    p.add_argument(
        "--sharded", action="store_true",
        help="shard the digest space instead of full replication: "
        "consistent-hash k-of-N placement, hinted handoff, live "
        "join/leave rebalancing, and the two extra shard invariants",
    )
    p.add_argument(
        "--k", type=int, default=2,
        help="replication factor per blob (with --sharded; k < replicas)",
    )
    p.add_argument(
        "--vnodes", type=int, default=32,
        help="virtual nodes per replica on the hash ring (with --sharded)",
    )
    p.add_argument(
        "--overload", action="store_true",
        help="also run the open-loop overload exercise against a "
        "limits-protected server",
    )
    p.add_argument("--json", action="store_true", help="emit the report(s) as JSON")

    p = sub.add_parser(
        "churn",
        help="evolve a replicated hub under seeded churn with journaled "
        "crash-resumable garbage collection; check the GC invariants "
        "(exit 1 on violation)",
    )
    p.add_argument("--seed", type=int, default=7, help="churn seed")
    p.add_argument("--epochs", type=int, default=6, help="churn epochs to run")
    p.add_argument(
        "--replicas", type=int, default=None,
        help="replica count (default 3; 4 with --sharded)",
    )
    p.add_argument("--scale", choices=["tiny", "small"], default="tiny")
    p.add_argument(
        "--sharded", action="store_true",
        help="run over the consistent-hash sharded cluster instead of "
        "full replication (adds the placement-conformance invariant)",
    )
    p.add_argument(
        "--k", type=int, default=2,
        help="replication factor per blob (with --sharded; k < replicas)",
    )
    p.add_argument(
        "--vnodes", type=int, default=32,
        help="virtual nodes per replica on the hash ring (with --sharded)",
    )
    p.add_argument(
        "--kill-after", type=int,
        help="kill the GC sweep after N deletions at the crash epoch (a "
        "replica crashes with it) and demand the resumed report be "
        "byte-identical to the uninterrupted reference",
    )
    p.add_argument(
        "--kill-index", type=int, default=1,
        help="which replica crashes with the interrupted sweep",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")

    p = sub.add_parser(
        "scan",
        help="dedup-aware vulnerability scan: extract each unique layer "
        "once, aggregate exposure up the lineage DAG",
    )
    _add_seed(p)
    p.add_argument("--scale", choices=["tiny", "small"], default="tiny")
    p.add_argument(
        "--mode", choices=["serial", "thread", "process"], default="thread",
        help="parallel mode for layer extraction",
    )
    p.add_argument("--workers", type=int, help="pool workers (default: cpu count)")
    p.add_argument(
        "--cache", type=Path,
        help="scan-cache directory: reruns under the same CVE feed version "
        "perform zero extractions",
    )
    p.add_argument(
        "--db-revision", type=int, default=1,
        help="synthetic CVE feed revision; bumping it invalidates the cache",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.add_argument("--out", type=Path, help="also write the JSON report here")
    p.add_argument(
        "--selfcheck", action="store_true",
        help="run the invariant exercise (all modes, cold+warm) and exit 1 "
        "on any violation — the CI scan-smoke job",
    )

    p = sub.add_parser(
        "tiers",
        help="sweep the tiered cache hierarchy (per-client caches -> edge "
        "proxy fleet -> sharded origin) in virtual time",
    )
    _add_seed(p)
    p.add_argument("--scale", choices=["tiny", "small", "bench"], default="small")
    p.add_argument(
        "--clients", type=int, default=1_000_000,
        help="distinct clients (each appears at least once)",
    )
    p.add_argument(
        "--requests", type=int, default=1_200_000, help="total image pulls"
    )
    p.add_argument("--edges", type=int, default=32, help="edge proxy count")
    p.add_argument("--shards", type=int, default=4, help="origin shard count")
    p.add_argument(
        "--client-gb", type=float, default=2.0,
        help="per-client cache capacity in GiB (no-eviction local store)",
    )
    p.add_argument(
        "--fracs", default="0.01,0.05,0.20",
        help="edge cache sizes as comma-separated fractions of the working set",
    )
    p.add_argument(
        "--policies", default="lru,lfu,gdsf,static-top",
        help="comma-separated edge replacement policies",
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="run the reduced sweep + invariant exercise (determinism, "
        "offload monotonicity, live HTTP 304/206) and exit 1 on any "
        "violation — the CI tiers-smoke job",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.add_argument("--out", type=Path, help="also write the JSON report here")
    p.add_argument(
        "--bench-out", type=Path,
        help="merge the sweep into this BENCH_pipeline.json as its "
        "'tiers' section",
    )

    return parser


# -- subcommand implementations -------------------------------------------------


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.model.io import save_dataset
    from repro.synth import SyntheticHubConfig, generate_dataset

    config = getattr(SyntheticHubConfig, args.scale)(seed=args.seed)
    dataset = generate_dataset(config)
    save_dataset(dataset, args.out)
    totals = dataset.totals()
    print(
        f"wrote {args.out}: {totals.n_images:,} images, "
        f"{totals.n_layers:,} layers, {totals.n_file_occurrences:,} file occurrences"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.model.io import load_dataset

    totals = load_dataset(args.dataset).totals()
    print(f"images            {totals.n_images:,}")
    print(f"unique layers     {totals.n_layers:,}")
    print(f"file occurrences  {totals.n_file_occurrences:,}")
    print(f"unique files      {totals.n_unique_files:,}")
    print(f"uncompressed      {format_size(totals.uncompressed_bytes)}")
    print(f"compressed        {format_size(totals.compressed_bytes)}")
    print(f"deduplicated      {format_size(totals.unique_file_bytes)}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.core.figures import FIGURES, compute_figure
    from repro.core.report import render_experiments_markdown, render_report
    from repro.model.io import load_dataset

    dataset = load_dataset(args.dataset)
    figure_ids = args.figure or list(FIGURES)
    unknown = [f for f in figure_ids if f not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(FIGURES)}", file=sys.stderr)
        return 2
    results = [compute_figure(dataset, fid) for fid in figure_ids]
    if args.markdown:
        print(render_experiments_markdown(results))
    else:
        print(render_report(results))
    if args.charts:
        from repro.core.characterization import Breakdown
        from repro.core.plots import render_cdf, render_histogram, render_share_bars
        from repro.stats.cdf import EmpiricalCDF
        from repro.stats.histogram import Histogram

        for result in results:
            for name, series in result.series.items():
                as_bytes = any(tok in name for tok in ("cls", "fls", "cis", "fis"))
                if isinstance(series, EmpiricalCDF):
                    print()
                    print(
                        render_cdf(
                            series,
                            title=f"{result.figure_id} {name}",
                            as_bytes=as_bytes,
                        )
                    )
                elif isinstance(series, Histogram):
                    print()
                    print(
                        render_histogram(
                            series, title=f"{result.figure_id} {name}", as_bytes=as_bytes
                        )
                    )
                elif isinstance(series, Breakdown):
                    print()
                    print(
                        render_share_bars(
                            series, title=f"{result.figure_id} {name} (count share)"
                        )
                    )
    return 0


def _cmd_dedup(args: argparse.Namespace) -> int:
    from repro.dedup import (
        cross_duplicate_report,
        dedup_by_group,
        dedup_growth,
        file_dedup_report,
        layer_sharing_report,
    )
    from repro.model.io import load_dataset

    dataset = load_dataset(args.dataset)
    sharing = layer_sharing_report(dataset)
    print(
        f"layer sharing: {sharing.single_ref_fraction:.1%} single-ref, "
        f"saves {sharing.sharing_ratio:.2f}x (paper 1.8x)"
    )
    dedup = file_dedup_report(dataset)
    print(
        f"file dedup: {dedup.unique_fraction:.1%} unique, "
        f"{dedup.count_ratio:.1f}x count / {dedup.capacity_ratio:.1f}x capacity "
        f"(paper 3.2% / 31.5x / 6.9x)"
    )
    print("growth:")
    for point in dedup_growth(dataset):
        print(
            f"  {point.n_layers:>8,} layers -> count {point.count_ratio:5.1f}x, "
            f"capacity {point.capacity_ratio:4.1f}x"
        )
    cross = cross_duplicate_report(dataset)
    print(
        f"cross duplicates: layer p10 {cross.layer_p10:.1%} (paper 97.6%), "
        f"image p10 {cross.image_p10:.1%} (paper 99.4%)"
    )
    print("by group (capacity eliminated):")
    for row in dedup_by_group(dataset):
        print(f"  {row.label:<6} {row.eliminated_capacity_fraction:6.1%}")
    return 0


def _cmd_ablate(args: argparse.Namespace) -> int:
    from repro.core.ablation import popularity_cache, uncompressed_small_layers
    from repro.model.io import load_dataset

    dataset = load_dataset(args.dataset)
    if args.experiment in ("a1", "all"):
        print("A1: store small layers uncompressed")
        for p in uncompressed_small_layers(dataset):
            label = "none" if p.threshold_bytes == 0 else format_size(p.threshold_bytes)
            print(
                f"  T={label:>9}: mean pull {p.mean_pull_latency_s:7.3f}s, "
                f"storage {p.registry_blowup:.2f}x"
            )
    if args.experiment in ("a2", "all"):
        print("A2: popularity cache")
        for p in popularity_cache(dataset):
            print(
                f"  cache {p.cached_fraction:6.1%}: hit ratio {p.hit_ratio:6.1%}, "
                f"pinned {format_size(p.cache_bytes)}"
            )
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.core.pipeline import run_materialized_pipeline
    from repro.model.io import save_dataset, save_profiles_jsonl
    from repro.synth import SyntheticHubConfig

    config = getattr(SyntheticHubConfig, args.scale)(seed=args.seed)
    result = run_materialized_pipeline(
        config, compute_figures=False, cache_dir=args.cache
    )
    crawl = result.crawl.summary()
    stats = result.download_stats
    print(
        f"crawl: {crawl['distinct_repositories']:,} repos "
        f"({crawl['duplicates_removed']:,} duplicate rows removed)"
    )
    print(
        f"download: {stats.succeeded:,}/{stats.attempted:,} ok, "
        f"{stats.failed_auth} auth / {stats.failed_no_latest} no-latest failures, "
        f"{stats.unique_layers_fetched:,} unique layers "
        f"({format_size(stats.layer_bytes_fetched)})"
    )
    totals = result.totals()
    print(
        f"analyze: {totals.n_images:,} images, {totals.n_layers:,} layers, "
        f"{totals.n_file_occurrences:,} files, "
        f"{format_size(totals.uncompressed_bytes)} uncompressed"
    )
    if args.cache:
        stats = result.analysis.cache_stats
        print(
            f"cache: {stats['hits']:,} hits / {stats['misses']:,} misses "
            f"({stats['discarded']} discarded) at {args.cache}"
        )
    if args.dataset:
        save_dataset(result.dataset, args.dataset)
        print(f"wrote dataset: {args.dataset}")
    if args.profiles:
        save_profiles_jsonl(
            args.profiles,
            result.analysis.store.layers(),
            result.analysis.store.images(),
        )
        print(f"wrote profiles: {args.profiles}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.core.experiments import write_experiments

    out = write_experiments(args.out, seed=args.seed, scale=args.scale)
    print(f"wrote {out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import generate_trace, sweep
    from repro.model.io import load_dataset

    dataset = load_dataset(args.dataset)
    trace = generate_trace(
        dataset, args.requests, granularity=args.granularity,
        locality=0.2, seed=args.seed,
    )
    ws = trace.working_set_bytes()
    capacities = [int(0.01 * ws), int(0.05 * ws), int(0.20 * ws)]
    print(
        f"{trace.n_requests:,} {args.granularity} requests, "
        f"working set {format_size(ws)}"
    )
    for result in sweep(trace, ["fifo", "lru", "lfu", "gdsf"], capacities):
        print(
            f"  {result.policy:>10} @ {format_size(result.capacity_bytes):>9}: "
            f"hit {result.hit_ratio:6.1%}  byte-hit {result.byte_hit_ratio:6.1%}"
        )
    return 0


def _cmd_restructure(args: argparse.Namespace) -> int:
    from repro.model.io import load_dataset
    from repro.restructure import CarveConfig, restructure

    dataset = load_dataset(args.dataset)
    result = restructure(
        dataset,
        CarveConfig(
            min_group_bytes=args.min_group_kb * 1024,
            max_layers_per_image=args.max_layers,
        ),
    )
    print(f"today's layout     {format_size(result.original_layer_bytes)}")
    print(
        f"carved layout      {format_size(result.restructured_bytes)} "
        f"({result.savings_vs_original:.1%} saved, "
        f"{result.n_shared_layers:,} shared layers, "
        f"max {result.layers_per_image_max} layers/image)"
    )
    print(f"file-dedup floor   {format_size(result.perfect_dedup_bytes)}")
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    from repro.core.growth_projection import project_growth
    from repro.model.io import load_dataset

    dataset = load_dataset(args.dataset)
    projection = project_growth(dataset, days=args.days, n_points=9, seed=args.seed)
    print(f"{'day':>6} {'repos':>12} {'no sharing':>12} {'shared':>12} {'+dedup':>12}")
    for p in projection.points:
        print(
            f"{p.day:>6.0f} {p.repositories:>12,.0f} "
            f"{format_size(p.no_sharing_bytes):>12} "
            f"{format_size(p.shared_layers_bytes):>12} "
            f"{format_size(p.file_dedup_bytes):>12}"
        )
    print(f"final dedup saving: {projection.final_savings():.1%}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.registry.http import RegistryHTTPServer
    from repro.registry.search import HubSearchEngine
    from repro.synth import SyntheticHubConfig, generate_dataset, materialize_registry

    config = getattr(SyntheticHubConfig, args.scale)(seed=args.seed)
    dataset = generate_dataset(config)
    registry, truth = materialize_registry(
        dataset,
        fail_share=config.fail_share,
        fail_auth_share=config.fail_auth_share,
        seed=config.seed,
    )
    search = HubSearchEngine(registry, seed=config.seed)
    server = RegistryHTTPServer(registry, search, port=args.port).start()
    try:
        print(f"registry:   {server.base_url}/v2/")
        print(f"catalog:    {server.base_url}/v2/_catalog")
        print(f"search:     {server.base_url}/search?q=/&page=1")
        example = next(iter(truth.images))
        print(f"manifest:   {server.base_url}/v2/{example}/manifests/latest")
        print(
            f"{truth.n_images} images, {truth.n_unique_layers} unique layers, "
            f"{len(truth.auth_repos)} auth-gated repos"
        )
        if args.print_and_exit:
            return 0
        print("Ctrl+C to stop")
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        return 0
    finally:
        server.stop()


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.core.bench import (
        BENCH_SCALES,
        COLUMNAR_SCALES,
        DEFAULT_COLUMNAR_SCALES,
        render_bench,
        run_columnar_bench,
        run_pipeline_bench,
    )

    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    if args.columnar:
        if args.columnar_scales:
            scales = tuple(
                s.strip() for s in args.columnar_scales.split(",") if s.strip()
            )
        else:
            scales = ("tiny",) if args.tiny else DEFAULT_COLUMNAR_SCALES
        for scale in scales:
            if scale not in COLUMNAR_SCALES:
                print(
                    f"unknown columnar scale {scale!r}; known: "
                    f"{', '.join(COLUMNAR_SCALES)}",
                    file=sys.stderr,
                )
                return 2
        doc = run_columnar_bench(
            scales=scales,
            modes=modes,
            seed=args.seed,
            workers=args.workers,
            repeats=args.repeats,
            chunk_occurrences=args.chunk_occurrences,
            check_in_memory=not args.no_in_memory_check,
            out=args.out,
        )
        print(json_module.dumps(doc, indent=2, sort_keys=True) if args.json
              else render_bench(doc))
        print(f"wrote {args.out}")
        ok = (
            doc["summary"]["all_identical_to_serial"]
            and doc["summary"]["all_in_memory_identical"]
        )
        return 0 if ok else 1

    scales = ("tiny",) if args.tiny else tuple(
        s.strip() for s in args.scales.split(",") if s.strip()
    )
    for scale in scales:
        if scale not in BENCH_SCALES:
            print(
                f"unknown scale {scale!r}; known: {', '.join(BENCH_SCALES)}",
                file=sys.stderr,
            )
            return 2
    doc = run_pipeline_bench(
        scales=scales,
        modes=modes,
        seed=args.seed,
        workers=args.workers,
        repeats=args.repeats,
        out=args.out,
    )
    print(json_module.dumps(doc, indent=2, sort_keys=True) if args.json
          else render_bench(doc))
    print(f"wrote {args.out}")
    return 0 if doc["summary"]["all_identical_to_serial"] else 1


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.cache import generate_trace
    from repro.cache.policies import GDSFCache
    from repro.downloader import CachingProxySession, SimulatedSession
    from repro.loadgen import LoadConfig, LoadGenerator, requests_from_trace
    from repro.synth import SyntheticHubConfig, generate_dataset, materialize_registry

    config = getattr(SyntheticHubConfig, args.scale)(seed=args.seed)
    dataset = generate_dataset(config)
    registry, truth = materialize_registry(dataset, fail_share=0.0, seed=args.seed)
    trace = generate_trace(
        dataset, args.requests, granularity=args.granularity,
        locality=0.2, seed=args.seed,
    )
    ops = requests_from_trace(trace, dataset, truth)

    session = SimulatedSession(registry, seed=args.seed)
    if args.proxy:
        capacity = max(1, int(registry.blobs.total_bytes() * args.proxy_capacity))
        session = CachingProxySession(session, GDSFCache(capacity))

    server = None
    if args.http:
        from repro.registry.http import HTTPSession, RegistryHTTPServer

        server = RegistryHTTPServer(registry).start()
        session = HTTPSession(server.base_url)
    try:
        report = LoadGenerator(session).run(
            ops,
            LoadConfig(
                workers=args.workers,
                mode=args.mode,
                arrival_rate_rps=args.arrival_rate,
                seed=args.seed,
            ),
        )
        print(
            f"workload: {trace.n_requests:,} {args.granularity} pulls -> "
            f"{len(ops):,} registry requests "
            f"({format_size(trace.total_bytes_requested())} requested)"
        )
        if args.json:
            print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        if args.metrics and server is not None:
            print(server.metrics.render_prometheus(), end="")
    finally:
        if server is not None:
            server.stop()
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import plan_names, run_chaos

    if args.plan not in plan_names():
        print(
            f"unknown plan {args.plan!r}; known: {', '.join(plan_names())}",
            file=sys.stderr,
        )
        return 2
    report = run_chaos(
        seed=args.seed,
        plan=args.plan,
        scale=args.scale,
        requests=args.requests,
        journal_dir=args.journal,
        kill_after=args.kill_after,
    )
    print(report.to_json() if args.json else report.render())
    if args.kill_after is not None and report.partial:
        return 0  # a simulated crash is not a violation; rerun to resume
    return 0 if report.ok else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.ha import run_cluster, run_overload, run_sharded_cluster

    replicas = args.replicas if args.replicas is not None else (
        6 if args.sharded else 3
    )
    if args.sharded:
        report = run_sharded_cluster(
            seed=args.seed,
            replicas=replicas,
            k=args.k,
            vnodes=args.vnodes,
            scale=args.scale,
            requests=args.requests,
            corrupt_count=args.corrupt_count,
        )
    else:
        report = run_cluster(
            seed=args.seed,
            replicas=replicas,
            scale=args.scale,
            requests=args.requests,
            kill_index=args.kill_index,
            corrupt_count=args.corrupt_count,
        )
    print(report.to_json() if args.json else report.render())
    ok = report.ok
    if args.overload:
        overload = run_overload(seed=args.seed)
        print(overload.to_json() if args.json else overload.render())
        ok = ok and overload.ok
    return 0 if ok else 1


def _cmd_churn(args: argparse.Namespace) -> int:
    from repro.ha import run_churn

    report = run_churn(
        seed=args.seed,
        epochs=args.epochs,
        replicas=args.replicas,
        sharded=args.sharded,
        k=args.k,
        vnodes=args.vnodes,
        scale=args.scale,
        kill_after=args.kill_after,
        kill_index=args.kill_index,
    )
    print(report.to_json() if args.json else report.render())
    return 0 if report.ok else 1


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.parallel.pool import ParallelConfig
    from repro.scan import DedupScanner, ScanCache, run_scan_exercise, targets_from_truth
    from repro.synth import (
        LineageConfig,
        PackageModel,
        SyntheticCveDatabase,
        SyntheticHubConfig,
        generate_dataset,
        generate_lineage,
        materialize_registry,
    )

    if args.selfcheck:
        report = run_scan_exercise(seed=args.seed, scale=args.scale,
                                   workers=args.workers)
        print(report.to_json() if args.json else report.render())
        return 0 if report.ok else 1

    config = getattr(SyntheticHubConfig, args.scale)(seed=args.seed)
    dataset = generate_dataset(config)
    registry, truth = materialize_registry(
        dataset,
        fail_share=config.fail_share,
        fail_auth_share=config.fail_auth_share,
        seed=config.seed,
    )
    targets = targets_from_truth(registry, truth)
    lineage = generate_lineage(
        [t.name for t in targets],
        [t.pull_count for t in targets],
        LineageConfig(seed=args.seed),
    )
    db = SyntheticCveDatabase(seed=args.seed, revision=args.db_revision)
    cache = ScanCache(args.cache, db_version=db.version()) if args.cache else None
    scanner = DedupScanner(
        registry.blobs,
        db,
        PackageModel(seed=args.seed),
        parallel=ParallelConfig(
            mode=args.mode, workers=args.workers, chunk_size=8, min_parallel_items=0
        ),
        cache=cache,
        metrics=None,
    )
    report = scanner.scan(targets, lineage)
    print(report.to_json() if args.json else report.render())
    if args.out:
        args.out.write_text(report.to_json() + "\n")
        print(f"wrote {args.out}")
    if cache is not None:
        stats = cache.stats
        print(
            f"cache: {stats.hits:,} hits / {stats.misses:,} misses "
            f"({stats.discarded} discarded) at {args.cache}"
        )
    return 0


def _cmd_tiers(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.synth import SyntheticHubConfig, generate_dataset
    from repro.tiers import TiersConfig, run_tiers_exercise, simulate_tiers
    from repro.tiers.exercise import smoke_config
    from repro.tiers.sim import render_report

    dataset = generate_dataset(getattr(SyntheticHubConfig, args.scale)(seed=args.seed))
    if args.smoke:
        exercise = run_tiers_exercise(dataset, smoke_config(seed=args.seed))
        report = exercise.report
    else:
        exercise = None
        config = TiersConfig(
            n_clients=args.clients,
            n_requests=args.requests,
            n_edges=args.edges,
            n_shards=args.shards,
            client_capacity_bytes=int(args.client_gb * (1 << 30)),
            edge_capacity_fracs=tuple(float(x) for x in args.fracs.split(",")),
            policies=tuple(p for p in args.policies.split(",") if p),
            seed=args.seed,
        )
        report = simulate_tiers(dataset, config)
    if args.json:
        doc = exercise.to_dict() if exercise is not None else report.to_dict()
        print(json_module.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_report(report))
        if exercise is not None:
            print(f"invariants: {'ok' if exercise.ok else 'FAILED'}")
            for violation in exercise.violations:
                print(f"  violation: {violation}")
    if args.out:
        args.out.write_text(report.to_json() + "\n")
        print(f"wrote {args.out}")
    if args.bench_out:
        from repro.core.bench import attach_tiers_section

        attach_tiers_section(args.bench_out, report.to_dict())
        print(f"merged tiers section into {args.bench_out}")
    return 0 if exercise is None or exercise.ok else 1


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "figures": _cmd_figures,
    "dedup": _cmd_dedup,
    "ablate": _cmd_ablate,
    "pipeline": _cmd_pipeline,
    "experiments": _cmd_experiments,
    "cache": _cmd_cache,
    "restructure": _cmd_restructure,
    "project": _cmd_project,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "loadtest": _cmd_loadtest,
    "chaos": _cmd_chaos,
    "cluster": _cmd_cluster,
    "churn": _cmd_churn,
    "scan": _cmd_scan,
    "tiers": _cmd_tiers,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
