"""Command-line interface: ``repro <subcommand>``.

Wraps the library's main entry points so the whole reproduction is drivable
without writing Python: generate datasets, run the materialized pipeline,
compute figures, study dedup, run ablations, regenerate EXPERIMENTS.md.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
