"""A tiny wall-clock timer used by the pipeline and the benchmark harness."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     work()
    >>> t.elapsed  # seconds, float
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None, "Timer exited without being entered"
        self.elapsed = time.perf_counter() - self._start
        self._start = None

    def running(self) -> bool:
        """True while inside the ``with`` block."""
        return self._start is not None
