"""Deterministic random-number management.

Synthetic-hub generation must be reproducible (same seed → byte-identical
dataset) *and* decomposable (each subsystem gets an independent stream so
adding a draw in one generator never perturbs another). ``RngTree`` hands out
named child generators derived with SHA-256-based seed folding, the same
scheme NumPy's ``SeedSequence.spawn`` uses under the hood but addressable by
stable string keys instead of call order.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *path: str | int) -> int:
    """Fold a root seed and a path of names into a stable 64-bit child seed."""
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode())
    for part in path:
        hasher.update(b"\x00")
        hasher.update(str(part).encode())
    return int.from_bytes(hasher.digest()[:8], "little")


def seeded_uniform(root_seed: int, *path: str | int) -> float:
    """A uniform draw in ``[0, 1)`` that is a pure function of its arguments.

    Unlike a shared-state generator, the draw for one ``(seed, path)`` does
    not depend on how many draws other threads made first — which makes
    failure injection reproducible under any interleaving.
    """
    return derive_seed(root_seed, *path) / 2**64


class RngTree:
    """A tree of named, independent NumPy generators rooted at one seed.

    >>> tree = RngTree(1234)
    >>> a = tree.child("layers").generator()
    >>> b = tree.child("files").generator()

    ``a`` and ``b`` are statistically independent, and neither depends on the
    order in which they were requested.
    """

    def __init__(self, seed: int, *, _path: tuple[str | int, ...] = ()):
        self.seed = int(seed)
        self._path = _path

    @property
    def path(self) -> tuple[str | int, ...]:
        """The names leading from the root to this node."""
        return self._path

    def child(self, *names: str | int) -> "RngTree":
        """Return the subtree addressed by *names* (any mix of str/int keys)."""
        if not names:
            raise ValueError("child() requires at least one name")
        return RngTree(self.seed, _path=self._path + tuple(names))

    def derived_seed(self) -> int:
        """The 64-bit seed for this node."""
        return derive_seed(self.seed, *self._path)

    def generator(self) -> np.random.Generator:
        """A fresh PCG64 generator for this node (each call restarts the stream)."""
        return np.random.default_rng(self.derived_seed())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngTree(seed={self.seed}, path={'/'.join(map(str, self._path))!r})"
