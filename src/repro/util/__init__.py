"""Shared low-level utilities: digests, size units, seeded RNG trees, timers.

These helpers are deliberately dependency-light; every other subsystem builds
on them.
"""

from repro.util.digest import (
    DigestError,
    format_digest,
    is_digest,
    parse_digest,
    sha256_bytes,
    sha256_stream,
    short_digest,
)
from repro.util.journal import JournalFile
from repro.util.rng import RngTree, derive_seed, seeded_uniform
from repro.util.timer import Timer
from repro.util.units import (
    GiB,
    KiB,
    MiB,
    TiB,
    format_size,
    parse_size,
)

__all__ = [
    "DigestError",
    "GiB",
    "JournalFile",
    "KiB",
    "MiB",
    "RngTree",
    "TiB",
    "Timer",
    "derive_seed",
    "format_digest",
    "format_size",
    "is_digest",
    "parse_digest",
    "parse_size",
    "seeded_uniform",
    "sha256_bytes",
    "sha256_stream",
    "short_digest",
]
