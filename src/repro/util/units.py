"""Byte-size constants, parsing and human-readable formatting.

The paper reports sizes in decimal-flavoured units ("4 MB", "47 TB"); Docker
tooling uses binary units. We standardize internally on *bytes* and on binary
multiples for constants, and accept both unit families when parsing.
"""

from __future__ import annotations

import re

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40

_UNITS: dict[str, int] = {
    "": 1,
    "b": 1,
    "k": 1000,
    "kb": 1000,
    "kib": KiB,
    "m": 1000**2,
    "mb": 1000**2,
    "mib": MiB,
    "g": 1000**3,
    "gb": 1000**3,
    "gib": GiB,
    "t": 1000**4,
    "tb": 1000**4,
    "tib": TiB,
    "pb": 1000**5,
    "pib": 1 << 50,
}

_SIZE_RE = re.compile(r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[a-zA-Z]*)\s*$")


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size ("63 MB", "4MiB", "1.5 GB") into bytes.

    Integers and floats pass through (floats are rounded). Decimal units
    (kB/MB/GB/TB) are powers of 1000; binary units (KiB/MiB/...) powers of
    1024, matching common convention.
    """
    if isinstance(text, (int, float)):
        return int(round(text))
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable size: {text!r}")
    unit = match.group("unit").lower()
    if unit not in _UNITS:
        raise ValueError(f"unknown size unit {match.group('unit')!r} in {text!r}")
    return int(round(float(match.group("num")) * _UNITS[unit]))


def format_size(nbytes: int | float, *, binary: bool = False, precision: int = 1) -> str:
    """Format a byte count for humans, e.g. ``format_size(63_000_000) == '63.0 MB'``.

    With ``binary=True`` uses KiB/MiB/... steps of 1024 instead.
    """
    if nbytes < 0:
        return "-" + format_size(-nbytes, binary=binary, precision=precision)
    step = 1024 if binary else 1000
    suffixes = (
        ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]
        if binary
        else ["B", "kB", "MB", "GB", "TB", "PB"]
    )
    value = float(nbytes)
    for suffix in suffixes:
        if value < step or suffix == suffixes[-1]:
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.{precision}f} {suffix}"
        value /= step
    raise AssertionError("unreachable")
