"""Content-addressing helpers.

Docker registries identify every blob (layer tarball, manifest, config) by a
digest string ``<algorithm>:<hex>``, in practice always ``sha256:<64 hex>``.
This module implements that format plus streaming hashing so large tarballs
never have to be held in memory at once.
"""

from __future__ import annotations

import hashlib
import re
from typing import BinaryIO

_DIGEST_RE = re.compile(r"^(?P<algo>[a-z0-9+._-]+):(?P<hex>[0-9a-f]+)$")

#: Chunk size used when hashing streams; 1 MiB balances syscall overhead
#: against peak memory.
_STREAM_CHUNK = 1 << 20


class DigestError(ValueError):
    """Raised when a digest string is malformed or uses an unknown algorithm."""


def sha256_bytes(data: bytes) -> str:
    """Return the canonical ``sha256:<hex>`` digest of *data*."""
    return "sha256:" + hashlib.sha256(data).hexdigest()


def sha256_stream(stream: BinaryIO) -> str:
    """Hash a binary stream chunk-wise and return its ``sha256:`` digest.

    The stream is consumed from its current position to EOF.
    """
    hasher = hashlib.sha256()
    while True:
        chunk = stream.read(_STREAM_CHUNK)
        if not chunk:
            break
        hasher.update(chunk)
    return "sha256:" + hasher.hexdigest()


def parse_digest(digest: str) -> tuple[str, str]:
    """Split a digest into ``(algorithm, hex)``.

    Raises:
        DigestError: if the string is not ``<algo>:<hex>`` or the hex part has
            the wrong length for a known algorithm.
    """
    match = _DIGEST_RE.match(digest)
    if match is None:
        raise DigestError(f"malformed digest: {digest!r}")
    algo, hexpart = match.group("algo"), match.group("hex")
    if algo == "sha256" and len(hexpart) != 64:
        raise DigestError(
            f"sha256 digest must have 64 hex chars, got {len(hexpart)}: {digest!r}"
        )
    return algo, hexpart


def is_digest(value: str) -> bool:
    """Return True if *value* parses as a well-formed digest string."""
    try:
        parse_digest(value)
    except DigestError:
        return False
    return True


def format_digest(hex_or_int: str | int, *, algo: str = "sha256") -> str:
    """Build a digest string from a hex string or an integer id.

    Integer ids are used by the synthetic (columnar) dataset, where computing
    real SHA-256 hashes for billions of virtual files would be pointless: the
    analysis only needs *distinctness*. The id is zero-padded into a valid
    64-hex-character payload so the result round-trips through
    :func:`parse_digest`.
    """
    if isinstance(hex_or_int, int):
        if hex_or_int < 0:
            raise DigestError(f"digest id must be non-negative, got {hex_or_int}")
        hexpart = format(hex_or_int, "064x")
    else:
        hexpart = hex_or_int
    digest = f"{algo}:{hexpart}"
    parse_digest(digest)
    return digest


def short_digest(digest: str, length: int = 12) -> str:
    """Return the abbreviated hex prefix Docker tooling prints (default 12)."""
    _, hexpart = parse_digest(digest)
    return hexpart[:length]
