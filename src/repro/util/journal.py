"""Crash-safe JSON state files for resumable long-running jobs.

The paper's crawl ran for ~30 days; anything that long *will* be
interrupted. A :class:`JournalFile` holds one JSON document on disk and
updates it atomically (write to a temp file, then ``os.replace``), so a
process killed mid-write never leaves a half-written checkpoint behind —
the reader sees either the previous state or the new one, never garbage.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


class JournalCorruptError(ValueError):
    """The journal file exists but does not parse as a JSON object."""

    def __init__(self, path: Path, reason: str):
        super().__init__(f"corrupt journal {path}: {reason}")
        self.path = path


class JournalFile:
    """One atomically-updated JSON document on disk.

    >>> journal = JournalFile(tmp_path / "crawl.json")   # doctest: +SKIP
    >>> journal.save({"next_page": 3})                   # doctest: +SKIP
    >>> journal.load()                                   # doctest: +SKIP
    {'next_page': 3}
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    @property
    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict | None:
        """The stored state, or None when no journal has been written yet."""
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return None
        try:
            state = json.loads(text)
        except json.JSONDecodeError as exc:
            raise JournalCorruptError(self.path, str(exc)) from None
        if not isinstance(state, dict):
            raise JournalCorruptError(self.path, f"expected object, got {type(state).__name__}")
        return state

    def save(self, state: dict) -> None:
        """Atomically replace the stored state with *state*."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(state, sort_keys=True))
        os.replace(tmp, self.path)

    def delete(self) -> None:
        """Remove the journal (no-op when absent)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
