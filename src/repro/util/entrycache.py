"""Self-verifying cache-entry framing shared by disk-backed caches.

Factored out of :mod:`repro.analyzer.cache` so every content-addressed
cache in the system — the layer :class:`~repro.analyzer.cache.ProfileCache`
and the vulnerability :class:`~repro.scan.cache.ScanCache` — speaks the same
at-rest dialect instead of re-inventing it:

* the backing-store **key** is itself a content address:
  ``sha256(f"{magic}:{version}:{digest}")``, so any
  :class:`~repro.registry.blobstore.BlobStore` works as the backing store
  and bumping the version string silently invalidates every old entry;
* the **entry** is framed ``magic + b"\\n" + checksum + b"\\n" + body``,
  where the checksum covers the body, and the decoded value must embed the
  digest it was looked up under;
* a corrupt entry (bad frame, bad checksum, bad body, wrong digest inside)
  is **discarded, counted, and deleted** — never returned — so the caller
  simply recomputes and the rewrite starts from a clean slot. Inject the
  fault this guards against with :func:`repro.faults.corrupt_at_rest` on
  the cache's ``store``.

The framing helpers (:func:`encode_entry` / :func:`decode_entry` /
:func:`entry_key`) are byte-for-byte what ``ProfileCache`` always wrote, so
existing on-disk profile caches keep working across this refactor.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs import MetricsRegistry
from repro.registry.blobstore import BlobStore, DiskBlobStore
from repro.util.digest import sha256_bytes


def entry_key(magic: bytes, version: str, digest: str) -> str:
    """The backing-store address for one digest's entry."""
    composite = f"{magic.decode()}:{version}:{digest}"
    return sha256_bytes(composite.encode())


def encode_entry(magic: bytes, body: bytes) -> bytes:
    """Frame *body* as a self-verifying entry: magic, checksum, payload."""
    checksum = sha256_bytes(body).encode()
    return magic + b"\n" + checksum + b"\n" + body


def decode_entry(magic: bytes, payload: bytes) -> bytes:
    """Unframe an entry, verifying magic and checksum; raises ValueError."""
    head, checksum, body = payload.split(b"\n", 2)
    if head != magic:
        raise ValueError(f"bad cache frame: {head[:32]!r}")
    if sha256_bytes(body).encode() != checksum:
        raise ValueError("cache entry checksum mismatch")
    return body


@dataclass
class EntryCacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    discarded: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "discarded": self.discarded,
        }


class SelfVerifyingCache:
    """Base class for persistent ``(digest, version) -> value`` caches.

    Subclasses set :attr:`MAGIC` (the frame tag, which also namespaces the
    keys) and :attr:`METRIC_PREFIX` (for the obs counters), and implement
    the three codec hooks: :meth:`_encode_body`, :meth:`_decode_body`, and
    :meth:`_digest_of`. ``root_or_store`` is either a directory (a
    :class:`DiskBlobStore` is created under it) or any ready-made
    :class:`BlobStore`.
    """

    MAGIC: bytes = b"repro-entry-cache/v1"
    METRIC_PREFIX: str = "entry_cache"

    def __init__(
        self,
        root_or_store: str | Path | BlobStore,
        *,
        version: str,
        metrics: MetricsRegistry | None = None,
    ):
        if isinstance(root_or_store, BlobStore):
            self.store: BlobStore = root_or_store
        else:
            self.store = DiskBlobStore(root_or_store)
        self.version = version
        self.metrics = metrics
        self.stats = EntryCacheStats()
        self._lock = threading.Lock()

    # -- codec hooks ----------------------------------------------------------

    def _encode_body(self, value: Any) -> bytes:
        """Serialize one value to the entry body."""
        raise NotImplementedError

    def _decode_body(self, body: bytes) -> Any:
        """Rebuild a value from an entry body (raise on malformed bodies)."""
        raise NotImplementedError

    def _digest_of(self, value: Any) -> str:
        """The digest a value claims to describe (the embedded-digest check)."""
        raise NotImplementedError

    # -- keying / framing -----------------------------------------------------

    def key(self, digest: str) -> str:
        """The backing-store address for one digest's entry."""
        return entry_key(self.MAGIC, self.version, digest)

    def _encode(self, value: Any) -> bytes:
        return encode_entry(self.MAGIC, self._encode_body(value))

    def _decode(self, payload: bytes, digest: str) -> Any:
        value = self._decode_body(decode_entry(self.MAGIC, payload))
        if self._digest_of(value) != digest:
            raise ValueError(
                f"cache entry holds {self._digest_of(value)}, wanted {digest}"
            )
        return value

    # -- cache protocol -------------------------------------------------------

    def get(self, digest: str) -> Any | None:
        """The cached value, or None on miss.

        A corrupt entry counts as a miss *and* is deleted so the rewrite
        after recomputation starts from a clean slot.
        """
        key = self.key(digest)
        try:
            payload = self.store.get(key)
        except Exception:  # noqa: BLE001 — absent entry, unreadable shard, ...
            self._count("misses")
            return None
        try:
            value = self._decode(payload, digest)
        except Exception:  # noqa: BLE001 — any rot means the entry is dead
            self._count("discarded")
            self._count("misses")
            try:
                self.store.delete(key)
            except Exception:  # noqa: BLE001 — best-effort cleanup
                pass
            return None
        self._count("hits")
        return value

    def put(self, value: Any) -> None:
        """Write one value's entry (idempotent; last writer wins)."""
        self.store.put_at(self.key(self._digest_of(value)), self._encode(value))
        self._count("stores")

    def _count(self, field_name: str) -> None:
        with self._lock:
            setattr(self.stats, field_name, getattr(self.stats, field_name) + 1)
        if self.metrics is not None:
            self.metrics.counter(
                f"{self.METRIC_PREFIX}_{field_name}_total",
                f"{self.METRIC_PREFIX} accounting",
            ).inc()
